"""Fig. 3 reproduction: the FSM of the NN and its growth under noise.

Prints the translated SMV model and the exact state/transition counts:
3 states / 6 transitions without noise, 65 / 4160 with noise [0,1] % on
the six input nodes (five genes plus the bias node).

Run:  python examples/state_space_growth.py
"""

from __future__ import annotations

import numpy as np

from repro.config import NoiseConfig
from repro.core import dataset_fsm_module, network_noise_module
from repro.core.translate import noise_model_state_counts
from repro.data import load_leukemia_case_study
from repro.fsm import TransitionSystem, count_states_and_transitions
from repro.nn import quantize_network, train_paper_network
from repro.smv import print_module


def main() -> None:
    case_study = load_leukemia_case_study()
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    network = quantize_network(result.network)
    x = np.asarray(case_study.test.features[0])
    label = int(case_study.test.labels[0])

    # Fig. 3(b): no noise, non-deterministic sample choice.
    module = dataset_fsm_module(network, case_study.test.features)
    print("--- no-noise FSM (Fig. 3b) ---")
    print(print_module(module))
    counts = count_states_and_transitions(TransitionSystem(module))
    print(f"states={counts[0]}, transitions={counts[1]}   (paper: 3, 6)")

    # Fig. 3(c): noise [0,1]% on 6 input nodes.
    print("\n--- noise FSM [0,1]% (Fig. 3c) ---")
    counts = noise_model_state_counts(
        network,
        x,
        label,
        NoiseConfig(min_percent=0, max_percent=1),
        noisy_bias_node=True,
    )
    print(f"states={counts[0]}, transitions={counts[1]}   (paper: 65, 4160)")

    # The blowup trend the paper warns about.
    print("\n--- growth with the noise range ---")
    for high in (1, 2, 3):
        counts = noise_model_state_counts(
            network,
            x,
            label,
            NoiseConfig(min_percent=0, max_percent=high),
            noisy_bias_node=True,
            max_states=10_000_000,
        )
        print(f"noise [0,{high}]%: states={counts[0]:>7}, transitions={counts[1]:>12}")

    # The SMV text of the verification model itself (±1%, 5 gene inputs).
    print("\n--- translated verification model (excerpt) ---")
    module, _ = network_noise_module(network, x, label, NoiseConfig(max_percent=1))
    text = print_module(module)
    head = "\n".join(text.splitlines()[:25])
    print(head)
    print(f"… ({len(text.splitlines())} lines total)")


if __name__ == "__main__":
    main()
