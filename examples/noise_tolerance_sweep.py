"""Noise-tolerance sweep: misclassified inputs per noise range.

Regenerates the Fig.-4 left-column panels as an ASCII chart, and shows
the per-input minimal flipping noise (the boundary proxy).

Run:  python examples/noise_tolerance_sweep.py
"""

from __future__ import annotations

from repro.analysis import horizontal_bar_chart
from repro.core import NoiseToleranceAnalysis
from repro.data import load_leukemia_case_study
from repro.nn import quantize_network, train_paper_network


def main() -> None:
    case_study = load_leukemia_case_study()
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    network = quantize_network(result.network)

    analysis = NoiseToleranceAnalysis(network, search_ceiling=60)
    report = analysis.analyze(case_study.test)

    percents = [5, 10, 15, 20, 25, 30, 35, 40, 50, 60]
    counts = report.misclassification_counts(percents)
    print(
        horizontal_bar_chart(
            {f"±{p}%": counts[p] for p in percents},
            title="misclassified inputs per noise range "
            "(paper: 0 at ±11%, growing above)",
        )
    )
    print(f"\nnetwork noise tolerance: ±{report.tolerance}%")

    print("\nper-input minimal flipping noise:")
    print(
        horizontal_bar_chart(
            {
                f"test[{e.index}] L{e.true_label}": (
                    e.min_flip_percent
                    if e.min_flip_percent is not None
                    else report.search_ceiling
                )
                for e in report.per_input
            },
            width=30,
        )
    )
    robust = [e.index for e in report.per_input if e.robust_at_ceiling]
    print(f"\ninputs robust through ±{report.search_ceiling}%: {robust}")


if __name__ == "__main__":
    main()
