"""Using the model-checking stack standalone (no neural network).

The SMV language, FSM semantics and all three engines are a general
model checker: this example verifies mutual exclusion of a two-process
arbiter and finds a counterexample to an intentionally wrong property —
with explicit, BDD and k-induction engines agreeing throughout.

Run:  python examples/custom_smv_model.py
"""

from __future__ import annotations

from repro.mc import BddChecker, BmcChecker, ExplicitChecker, KInduction
from repro.smv import parse_expression, parse_module

ARBITER = """
MODULE main
VAR
  a : {idle, trying, critical};
  b : {idle, trying, critical};
  turn : 0..1;
ASSIGN
  init(a) := idle;
  init(b) := idle;
  next(a) := case
      a = idle : {idle, trying};
      a = trying & (b != critical) & turn = 0 : critical;
      a = critical : idle;
      TRUE : a;
    esac;
  next(b) := case
      b = idle : {idle, trying};
      b = trying & (a != critical) & turn = 1 : critical;
      b = critical : idle;
      TRUE : b;
    esac;
  next(turn) := case
      a = critical : 1;
      b = critical : 0;
      TRUE : turn;
    esac;
INVARSPEC !(a = critical & b = critical);
"""


def main() -> None:
    module = parse_module(ARBITER)
    mutex = module.invarspecs[0]

    print("property: mutual exclusion")
    for engine in (ExplicitChecker(), BddChecker(), KInduction(max_k=10)):
        result = engine.check_invariant(module, mutex)
        print(
            f"  {engine.name:<12} -> {result.verdict.value}"
            + (f" ({result.states_explored} states)" if result.states_explored else "")
        )

    # A property that is false: process a never reaches the critical section.
    wrong = parse_expression("a != critical")
    print("\nproperty: 'a never enters critical' (expected: violated)")
    for engine in (ExplicitChecker(), BddChecker(), BmcChecker(max_bound=10)):
        result = engine.check_invariant(module, wrong)
        print(f"  {engine.name:<12} -> {result.verdict.value}")
        if result.counterexample is not None and engine.name == "explicit":
            print("\nshortest counterexample trace:")
            print(result.counterexample.format())


if __name__ == "__main__":
    main()
