"""Quickstart: train the case-study network and formally analyse it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import NoiseConfig
from repro.core import Fannet
from repro.data import load_leukemia_case_study
from repro.nn import train_paper_network
from repro.verify import PortfolioVerifier, build_query


def main() -> None:
    # 1. Data: synthetic Golub-style leukemia microarrays, mRMR-reduced to
    #    the 5 most informative genes, integer-scaled (see repro.data).
    case_study = load_leukemia_case_study()
    print(
        f"dataset: {case_study.train.num_samples} train / "
        f"{case_study.test.num_samples} test samples, "
        f"{case_study.train.num_features} selected genes"
    )

    # 2. Train with the paper's recipe (lr 0.5 x40 epochs, then 0.2 x40).
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    print(f"training accuracy: {result.train_accuracy:.2%}")

    # 3. Wrap in the FANNet methodology: quantise + validate (property P1).
    fannet = Fannet(result.network, case_study.train, case_study.test)
    fannet.validate()
    print("P1 validation passed: float net == exact net == SMV model")

    # 4. One formal robustness query: can ±5% noise on every gene flip the
    #    first test sample's diagnosis?
    x = np.asarray(case_study.test.features[0])
    label = int(case_study.test.labels[0])
    query = build_query(fannet.quantized, x, label, NoiseConfig(max_percent=5))
    verdict = PortfolioVerifier().verify(query)
    print(f"test[0] under ±5% noise: {verdict.status.value}")

    # 5. The headline number: the network's noise tolerance.
    report = fannet.noise_tolerance(search_ceiling=60)
    print(f"network noise tolerance: ±{report.tolerance}%  (paper: ±11%)")

    # 6. Every verdict above went through the runtime's monotone query
    #    cache: a ROBUST verdict at ±P covers all smaller ranges and a
    #    VULNERABLE one all larger ranges, so re-asking along the percent
    #    axis is free.  Point RuntimeConfig(cache_dir=...) — or the CLI's
    #    --cache-dir — at a directory and the cache also persists across
    #    runs: a repeat of this script would issue zero solver calls.
    print(fannet.runner.stats.describe())
    print(fannet.runner.cache.stats.describe())
    fannet.close()  # flush the disk cache store (when one is configured)


if __name__ == "__main__":
    main()
