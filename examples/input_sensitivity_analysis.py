"""Input-node sensitivity: which genes need precise acquisition?

The paper's motivating application (§V-C.4): nodes whose noise triggers
misclassification need precise (expensive) measurement; one-sided or
insensitive nodes can tolerate cheaper acquisition.

Run:  python examples/input_sensitivity_analysis.py
"""

from __future__ import annotations

from repro.core import InputSensitivityAnalysis, NoiseToleranceAnalysis, NoiseVectorExtraction
from repro.data import load_leukemia_case_study
from repro.nn import quantize_network, train_paper_network


def main() -> None:
    case_study = load_leukemia_case_study()
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    network = quantize_network(result.network)

    # Work one point above the network's tolerance: the smallest range
    # with a non-empty counterexample census.
    tolerance = NoiseToleranceAnalysis(network, search_ceiling=60).analyze(
        case_study.test
    )
    percent = (tolerance.tolerance or 6) + 1
    print(f"extracting adversarial noise vectors at ±{percent}% …")
    extraction = NoiseVectorExtraction(network).extract(case_study.test, percent)
    print(f"{extraction.total_vectors} unique noise vectors extracted (P3 loop)")

    analysis = InputSensitivityAnalysis(network)
    report = analysis.analyze(
        extraction, dataset=case_study.test, probe=True, search_ceiling=60
    )
    print()
    print(report.describe())

    print("\nacquisition-precision ranking (most → least sensitive):")
    for node in report.most_sensitive_nodes(top=network.num_inputs):
        gene = case_study.selected_genes[node]
        print(f"  input i{node + 1}  (gene #{gene})")


if __name__ == "__main__":
    main()
