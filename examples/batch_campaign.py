"""Multi-network batch campaign: shard, execute, merge, compare.

Runs the manifest next to this file (two training seeds over the same
test-set slice) the way a two-machine deployment would — two independent
shard invocations — then merges the shard outputs into one aggregate
report and prints the cross-network comparison tables.

Run:  python examples/batch_campaign.py

The same campaign from the CLI:

    fannet batch run examples/batch_manifest.json --out .batch --shard 1/2
    fannet batch run examples/batch_manifest.json --out .batch --shard 2/2
    fannet batch merge examples/batch_manifest.json .batch
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import comparison_tables, save_record
from repro.service import BatchService

MANIFEST = Path(__file__).with_name("batch_manifest.json")


def main() -> None:
    service = BatchService.from_manifest(MANIFEST)
    jobs = service.plan()
    total = sum(len(job.tasks) for job in jobs)
    print(f"batch '{service.spec.name}': {len(jobs)} jobs, {total} tasks")
    for job in jobs:
        counts = [len(job.shard_tasks(index, 2)) for index in range(2)]
        print(f"  {job.name}: {len(job.tasks)} tasks -> shards {counts}")

    with tempfile.TemporaryDirectory() as scratch:
        out = Path(scratch)
        # Each shard is an independent process in real deployments; the
        # partition is a pure function of task identity, so the two
        # invocations coordinate through nothing but the manifest.
        for index in range(2):
            report = service.run_shard(index, 2, out)
            print(
                f"shard {index + 1}/2 executed {report.executed} task(s), "
                f"wrote {len(report.written)} job file(s)"
            )

        # The directory is triage-able at any point: a killed shard
        # would show its exact missing identities here, and
        # run_shard(..., resume=True) would re-execute only that gap.
        status = service.status(out)
        print(f"status: {'complete' if status.complete else status.rerun}")

        record = service.merge(out)
        save_record(record, out / "merged.json")
        print(f"\nmerged: {record.experiment_id}")
        print()
        print(comparison_tables(record.measured["comparison"]))


if __name__ == "__main__":
    main()
