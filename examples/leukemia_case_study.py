"""Full reproduction of the paper's §V case study.

Regenerates every §V-C observation — noise tolerance, boundary
estimation, training bias, input-node sensitivity — from scratch
(synthetic data, mRMR, training, quantisation, formal analysis).

Run:  python examples/leukemia_case_study.py          (~2 minutes)
"""

from __future__ import annotations

from repro.analysis import (
    fig4_bias_series,
    fig4_boundary_series,
    fig4_sensitivity_series,
    fig4_tolerance_series,
    format_table,
)
from repro.core import run_case_study


def main() -> None:
    fannet, report = run_case_study()
    print(report.summary())

    print("\n--- Fig. 4 regenerated series ---")
    tolerance = fig4_tolerance_series(report.tolerance)
    print(
        format_table(
            ["noise ±%", "misclassified inputs"],
            list(zip(tolerance["noise_percents"], tolerance["misclassified_inputs"])),
            title="\nNoise sweep (paper: zero at ±11% and below)",
        )
    )

    bias = fig4_bias_series(report.bias)
    print("\nBias:", bias["flip_matrix"], "— majority share:",
          f"{bias['majority_flip_share']:.0%}")

    sensitivity = fig4_sensitivity_series(report.sensitivity)
    print(
        format_table(
            ["node", "positive", "negative", "skew"],
            [
                [n["node"], n["positive"], n["negative"], n["skew"]]
                for n in sensitivity["nodes"]
            ],
            title="\nPer-node counterexample census (paper: i5 one-sided)",
        )
    )

    boundary = fig4_boundary_series(
        report.boundary.profile, report.tolerance.search_ceiling
    )
    print(
        f"\nBoundary: {boundary['susceptible_inputs']} susceptible inputs, "
        f"{boundary['robust_inputs']} robust beyond ±{boundary['search_ceiling']}%"
    )


if __name__ == "__main__":
    main()
