"""Small shared I/O helpers.

One home for the atomic-write pattern the persistence planes (cache
store, shard result files, campaign ledgers) all rely on: their
durability arguments are only as good as the write discipline, so the
discipline lives exactly once.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: str | os.PathLike, blob: bytes) -> Path:
    """Write ``blob`` to ``path`` via a same-directory temp file + rename.

    A reader racing the writer sees either the old file or the new one,
    never a torn mix, and a crash mid-write leaves the target untouched
    (the orphaned temp file is unlinked on every failure path that still
    runs).  Concurrent writers degrade to last-writer-wins.
    """
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path
