"""Exception hierarchy for the FANNet reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value or inconsistent option combination."""


class ShapeError(ReproError):
    """Tensor/layer shape mismatch in the neural-network stack."""


class DataError(ReproError):
    """Malformed or inconsistent dataset."""


class IncompleteCampaignError(DataError):
    """A batch merge found task results missing from the output directory.

    ``missing`` maps each affected job name to the sorted list of task
    identities with no recorded result — exactly what ``fannet batch
    status`` reports and what ``fannet batch run --resume`` re-executes.
    """

    def __init__(self, message: str, missing: dict[str, list[str]] | None = None):
        super().__init__(message)
        self.missing = missing or {}


class SmvSyntaxError(ReproError):
    """Lexical or grammatical error in an SMV source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SmvTypeError(ReproError):
    """Type error found while checking an SMV module."""


class ModelCheckingError(ReproError):
    """Failure inside a model-checking engine."""


class StateSpaceLimitError(ModelCheckingError):
    """Explicit-state exploration exceeded its configured state budget."""


class SatError(ReproError):
    """Malformed CNF or misuse of the SAT solver API."""


class SmtError(ReproError):
    """Malformed constraint system or misuse of the SMT layer."""


class InfeasibleError(SmtError):
    """Raised when an LP/feasibility subproblem has no solution."""


class UnboundedError(SmtError):
    """Raised when an LP objective is unbounded."""


class VerificationError(ReproError):
    """Failure inside a neural-network verification engine."""


class BudgetExceededError(ReproError):
    """A solver or analysis exceeded its node/time budget."""

    def __init__(self, message: str, budget: int | float | None = None):
        super().__init__(message)
        self.budget = budget
