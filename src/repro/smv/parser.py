"""Recursive-descent parser for the SMV subset.

Operator precedence follows the nuXmv manual (low to high):
``<->``, ``->`` (right-assoc), ``|``, ``&``, comparisons, ``union``,
``+ -``, ``* / mod``, unary ``- !``.
"""

from __future__ import annotations

from ..errors import SmvSyntaxError
from .ast import (
    Assignments,
    BinOp,
    BoolLit,
    BoolType,
    Call,
    CaseExpr,
    EnumType,
    Expr,
    Ident,
    IntLit,
    LtlBin,
    LtlExpr,
    LtlProp,
    LtlUnary,
    RangeType,
    SetExpr,
    SmvModule,
    TypeSpec,
    UnaryOp,
)
from .lexer import Token, TokenType, tokenize

_BUILTIN_FUNCTIONS = {"max", "min", "abs"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def expect(self, value: str) -> Token:
        token = self.peek()
        if token.value != value:
            raise SmvSyntaxError(
                f"expected {value!r}, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    def accept(self, value: str) -> bool:
        if self.peek().value == value:
            self.advance()
            return True
        return False

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise SmvSyntaxError(
                f"expected identifier, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    # -- module structure ------------------------------------------------------

    def parse_module(self) -> SmvModule:
        self.expect("MODULE")
        name = self.expect_ident().value
        module = SmvModule(name=name)
        while self.peek().type is not TokenType.EOF:
            token = self.peek()
            if token.value == "VAR":
                self.advance()
                self._parse_var_section(module)
            elif token.value == "DEFINE":
                self.advance()
                self._parse_define_section(module)
            elif token.value == "ASSIGN":
                self.advance()
                self._parse_assign_section(module)
            elif token.value == "INVARSPEC":
                self.advance()
                module.invarspecs.append(self.parse_expression())
                self.accept(";")
            elif token.value == "LTLSPEC":
                self.advance()
                module.ltlspecs.append(self.parse_ltl())
                self.accept(";")
            else:
                raise SmvSyntaxError(
                    f"unexpected token {token.value!r} at module level",
                    token.line,
                    token.column,
                )
        return module

    def _parse_var_section(self, module: SmvModule) -> None:
        while self.peek().type is TokenType.IDENT:
            name = self.expect_ident().value
            self.expect(":")
            spec = self._parse_type()
            self.expect(";")
            if name in module.variables or name in module.defines:
                raise SmvSyntaxError(f"duplicate symbol {name!r}")
            module.variables[name] = spec

    def _parse_type(self) -> TypeSpec:
        token = self.peek()
        if token.value == "boolean":
            self.advance()
            return BoolType()
        if token.value == "{":
            self.advance()
            symbols = [self.expect_ident().value]
            while self.accept(","):
                symbols.append(self.expect_ident().value)
            self.expect("}")
            return EnumType(tuple(symbols))
        low = self._parse_signed_int()
        self.expect("..")
        high = self._parse_signed_int()
        try:
            return RangeType(low, high)
        except ValueError as err:
            raise SmvSyntaxError(str(err), token.line, token.column) from None

    def _parse_signed_int(self) -> int:
        negative = self.accept("-")
        token = self.peek()
        if token.type is not TokenType.NUMBER:
            raise SmvSyntaxError(
                f"expected integer, found {token.value!r}", token.line, token.column
            )
        self.advance()
        value = int(token.value)
        return -value if negative else value

    def _parse_define_section(self, module: SmvModule) -> None:
        while self.peek().type is TokenType.IDENT:
            name = self.expect_ident().value
            self.expect(":=")
            expr = self.parse_expression()
            self.expect(";")
            if name in module.variables or name in module.defines:
                raise SmvSyntaxError(f"duplicate symbol {name!r}")
            module.defines[name] = expr

    def _parse_assign_section(self, module: SmvModule) -> None:
        while self.peek().value in ("init", "next"):
            kind = self.advance().value
            self.expect("(")
            name = self.expect_ident().value
            self.expect(")")
            self.expect(":=")
            expr = self.parse_expression()
            self.expect(";")
            table = module.assigns.init if kind == "init" else module.assigns.next
            if name in table:
                raise SmvSyntaxError(f"duplicate {kind}() assignment for {name!r}")
            table[name] = expr

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_iff()

    def _parse_iff(self) -> Expr:
        left = self._parse_implies()
        while self.peek().value == "<->":
            self.advance()
            left = BinOp("<->", left, self._parse_implies())
        return left

    def _parse_implies(self) -> Expr:
        left = self._parse_or()
        if self.peek().value == "->":
            self.advance()
            return BinOp("->", left, self._parse_implies())  # right-assoc
        return left

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.peek().value == "|":
            self.advance()
            left = BinOp("|", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self.peek().value == "&":
            self.advance()
            left = BinOp("&", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        if self.peek().value in ("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            return BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.peek().value in ("+", "-"):
            op = self.advance().value
            left = BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.peek().value in ("*", "/", "mod"):
            op = self.advance().value
            left = BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token.value == "-":
            self.advance()
            operand = self._parse_unary()
            if isinstance(operand, IntLit):
                return IntLit(-operand.value)  # fold negative literals
            return UnaryOp("-", operand)
        if token.value == "!":
            self.advance()
            return UnaryOp("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return IntLit(int(token.value))
        if token.value == "TRUE":
            self.advance()
            return BoolLit(True)
        if token.value == "FALSE":
            self.advance()
            return BoolLit(False)
        if token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.value == "case":
            return self._parse_case()
        if token.value == "{":
            self.advance()
            items = [self.parse_expression()]
            while self.accept(","):
                items.append(self.parse_expression())
            self.expect("}")
            return SetExpr(tuple(items))
        if token.type is TokenType.IDENT:
            self.advance()
            if token.value in _BUILTIN_FUNCTIONS and self.peek().value == "(":
                self.advance()
                args = [self.parse_expression()]
                while self.accept(","):
                    args.append(self.parse_expression())
                self.expect(")")
                return Call(token.value, tuple(args))
            return Ident(token.value)
        raise SmvSyntaxError(
            f"unexpected token {token.value!r} in expression", token.line, token.column
        )

    def _parse_case(self) -> Expr:
        self.expect("case")
        branches = []
        while self.peek().value != "esac":
            guard = self.parse_expression()
            self.expect(":")
            result = self.parse_expression()
            self.expect(";")
            branches.append((guard, result))
        self.expect("esac")
        if not branches:
            token = self.peek()
            raise SmvSyntaxError("empty case expression", token.line, token.column)
        return CaseExpr(tuple(branches))

    # -- LTL -------------------------------------------------------------------------

    def parse_ltl(self) -> LtlExpr:
        return self._parse_ltl_implies()

    def _parse_ltl_implies(self) -> LtlExpr:
        left = self._parse_ltl_or()
        if self.peek().value == "->":
            self.advance()
            return LtlBin("->", left, self._parse_ltl_implies())
        return left

    def _parse_ltl_or(self) -> LtlExpr:
        left = self._parse_ltl_and()
        while self.peek().value == "|":
            self.advance()
            left = LtlBin("|", left, self._parse_ltl_and())
        return left

    def _parse_ltl_and(self) -> LtlExpr:
        left = self._parse_ltl_until()
        while self.peek().value == "&":
            self.advance()
            left = LtlBin("&", left, self._parse_ltl_until())
        return left

    def _parse_ltl_until(self) -> LtlExpr:
        left = self._parse_ltl_unary()
        while self.peek().value == "U":
            self.advance()
            left = LtlBin("U", left, self._parse_ltl_unary())
        return left

    def _parse_ltl_unary(self) -> LtlExpr:
        token = self.peek()
        if token.value in ("G", "F", "X"):
            self.advance()
            return LtlUnary(token.value, self._parse_ltl_unary())
        if token.value == "!":
            # Try propositional first (e.g. "!done"); fall back to LTL negation.
            saved = self.position
            try:
                return LtlProp(self._parse_comparison_entry())
            except SmvSyntaxError:
                self.position = saved
            self.advance()
            return LtlUnary("!", self._parse_ltl_unary())
        return self._parse_ltl_atom()

    def _parse_ltl_atom(self) -> LtlExpr:
        # Ordered choice: a propositional expression wins when it parses;
        # otherwise the parenthesis opens a temporal subformula.
        saved = self.position
        try:
            return LtlProp(self._parse_comparison_entry())
        except SmvSyntaxError:
            self.position = saved
        self.expect("(")
        inner = self.parse_ltl()
        self.expect(")")
        return inner

    def _parse_comparison_entry(self) -> Expr:
        """Propositional atom for LTL: comparison level and below."""
        return self._parse_comparison()


def parse_module(source: str) -> SmvModule:
    """Parse SMV source text into a module AST."""
    parser = _Parser(tokenize(source))
    module = parser.parse_module()
    return module


def parse_expression(source: str) -> Expr:
    """Parse a standalone SMV expression (used in tests and the CLI)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    trailing = parser.peek()
    if trailing.type is not TokenType.EOF:
        raise SmvSyntaxError(
            f"trailing input {trailing.value!r}", trailing.line, trailing.column
        )
    return expr
