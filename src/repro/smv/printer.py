"""Pretty-printer: module AST back to SMV source.

``parse_module(print_module(m))`` reproduces ``m`` (round-trip property
covered by the test suite) — this is also the path used to emit the
translated NN models to ``.smv`` files for inspection.
"""

from __future__ import annotations

from ..errors import ReproError
from .ast import (
    BinOp,
    BoolLit,
    BoolType,
    Call,
    CaseExpr,
    EnumType,
    Expr,
    Ident,
    IntLit,
    LtlBin,
    LtlExpr,
    LtlProp,
    LtlUnary,
    RangeType,
    SetExpr,
    SmvModule,
    UnaryOp,
)

# Binding strength per operator, mirroring the parser levels.
_PRECEDENCE = {
    "<->": 1,
    "->": 2,
    "|": 3,
    "&": 4,
    "=": 5,
    "!=": 5,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "mod": 7,
}
_UNARY_PRECEDENCE = 8


def print_expression(expr: Expr) -> str:
    """Render an expression with minimal parentheses."""
    return _print(expr, 0)


def _print(expr: Expr, min_precedence: int) -> str:
    """Render ``expr``, parenthesising when its operator binds more loosely
    than ``min_precedence`` requires."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, Ident):
        return expr.name
    if isinstance(expr, UnaryOp):
        inner = _print(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        return f"({text})" if _UNARY_PRECEDENCE < min_precedence else text
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE[expr.op]
        if expr.op == "->":  # right-assoc
            left = _print(expr.left, precedence + 1)
            right = _print(expr.right, precedence)
        else:  # left-assoc (comparisons are non-assoc: both sides tighter)
            left = _print(expr.left, precedence if precedence != 5 else precedence + 1)
            right = _print(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if precedence < min_precedence else text
    if isinstance(expr, Call):
        args = ", ".join(_print(a, 0) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, CaseExpr):
        lines = ["case"]
        for guard, result in expr.branches:
            lines.append(f"    {_print(guard, 0)} : {_print(result, 0)};")
        lines.append("  esac")
        return "\n  ".join(lines)
    if isinstance(expr, SetExpr):
        return "{" + ", ".join(_print(item, 0) for item in expr.items) + "}"
    raise ReproError(f"cannot print expression node {type(expr).__name__}")


def print_ltl(formula: LtlExpr) -> str:
    if isinstance(formula, LtlProp):
        return f"({print_expression(formula.expr)})"
    if isinstance(formula, LtlUnary):
        return f"{formula.op} {print_ltl(formula.operand)}"
    if isinstance(formula, LtlBin):
        return f"({print_ltl(formula.left)} {formula.op} {print_ltl(formula.right)})"
    raise ReproError(f"cannot print LTL node {type(formula).__name__}")


def print_module(module: SmvModule) -> str:
    """Render a full module as SMV source."""
    lines = [f"MODULE {module.name}"]
    if module.variables:
        lines.append("VAR")
        for name, spec in module.variables.items():
            lines.append(f"  {name} : {spec!r};")
    if module.defines:
        lines.append("DEFINE")
        for name, expr in module.defines.items():
            lines.append(f"  {name} := {print_expression(expr)};")
    if module.assigns.init or module.assigns.next:
        lines.append("ASSIGN")
        for name, expr in module.assigns.init.items():
            lines.append(f"  init({name}) := {print_expression(expr)};")
        for name, expr in module.assigns.next.items():
            lines.append(f"  next({name}) := {print_expression(expr)};")
    for spec in module.invarspecs:
        lines.append(f"INVARSPEC {print_expression(spec)};")
    for spec in module.ltlspecs:
        lines.append(f"LTLSPEC {print_ltl(spec)};")
    return "\n".join(lines) + "\n"
