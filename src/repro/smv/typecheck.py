"""Static checks for SMV modules.

Catches the errors nuXmv would reject at load time: undeclared symbols,
assignments to defines, boolean/integer confusion, enum misuse, circular
DEFINE chains, and out-of-domain initial values.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import SmvTypeError
from .ast import (
    BinOp,
    BoolLit,
    BoolType,
    Call,
    CaseExpr,
    EnumType,
    Expr,
    Ident,
    IntLit,
    LtlBin,
    LtlExpr,
    LtlProp,
    LtlUnary,
    RangeType,
    SetExpr,
    SmvModule,
    UnaryOp,
)


class SmvType(Enum):
    BOOL = "boolean"
    INT = "integer"
    ENUM = "enum"


_ARITHMETIC_OPS = {"+", "-", "*", "/", "mod"}
_COMPARISON_OPS = {"<", "<=", ">", ">="}
_EQUALITY_OPS = {"=", "!="}
_BOOLEAN_OPS = {"&", "|", "->", "<->"}


@dataclass
class TypeChecker:
    """Infers expression types against a module's symbol table."""

    module: SmvModule

    def __post_init__(self):
        self._enum_symbols: dict[str, str] = {}
        for var, spec in self.module.variables.items():
            if isinstance(spec, EnumType):
                for symbol in spec.symbols:
                    if symbol in self.module.variables:
                        raise SmvTypeError(
                            f"enum symbol {symbol!r} collides with variable name"
                        )
                    self._enum_symbols[symbol] = var
        self._define_types: dict[str, SmvType] = {}
        self._checking: set[str] = set()

    # -- public API ----------------------------------------------------------

    def check(self) -> None:
        """Check the entire module; raises :class:`SmvTypeError`."""
        for name in self.module.defines:
            self._define_type(name)
        for name, expr in self.module.assigns.init.items():
            self._check_assignment(name, expr, "init")
        for name, expr in self.module.assigns.next.items():
            self._check_assignment(name, expr, "next")
        for spec in self.module.invarspecs:
            if self.type_of(spec) is not SmvType.BOOL:
                raise SmvTypeError("INVARSPEC must be boolean")
        for spec in self.module.ltlspecs:
            self._check_ltl(spec)

    def type_of(self, expr: Expr) -> SmvType:
        """Infer the type of ``expr`` (set expressions not allowed here)."""
        if isinstance(expr, SetExpr):
            raise SmvTypeError("set expression only allowed in assignments")
        return self._infer(expr)

    # -- internals ---------------------------------------------------------------

    def _check_assignment(self, name: str, expr: Expr, kind: str) -> None:
        if name in self.module.defines:
            raise SmvTypeError(f"cannot assign to DEFINE symbol {name!r}")
        if name not in self.module.variables:
            raise SmvTypeError(f"{kind}() assignment to undeclared variable {name!r}")
        self._check_rhs(expr, self._var_type(name), f"{kind}({name})")

    def _check_rhs(self, expr: Expr, target: SmvType, where: str) -> None:
        """Assignment right-hand sides may nest set choices inside case
        results — mirror the evaluator's structure."""
        if isinstance(expr, SetExpr):
            for item in expr.items:
                self._check_rhs(item, target, where)
            return
        if isinstance(expr, CaseExpr):
            has_set = any(
                isinstance(result, (SetExpr, CaseExpr)) for _, result in expr.branches
            )
            if has_set:
                for guard, result in expr.branches:
                    if self._infer(guard) is not SmvType.BOOL:
                        raise SmvTypeError("case guard must be boolean")
                    self._check_rhs(result, target, where)
                return
        inferred = self._infer(expr)
        if inferred is not target:
            raise SmvTypeError(
                f"{where} expects {target.value}, got {inferred.value}"
            )

    def _var_type(self, name: str) -> SmvType:
        spec = self.module.variables[name]
        if isinstance(spec, BoolType):
            return SmvType.BOOL
        if isinstance(spec, RangeType):
            return SmvType.INT
        return SmvType.ENUM

    def _define_type(self, name: str) -> SmvType:
        if name in self._define_types:
            return self._define_types[name]
        if name in self._checking:
            raise SmvTypeError(f"circular DEFINE involving {name!r}")
        self._checking.add(name)
        inferred = self._infer(self.module.defines[name])
        self._checking.discard(name)
        self._define_types[name] = inferred
        return inferred

    def _infer(self, expr: Expr) -> SmvType:
        if isinstance(expr, IntLit):
            return SmvType.INT
        if isinstance(expr, BoolLit):
            return SmvType.BOOL
        if isinstance(expr, Ident):
            name = expr.name
            if name in self.module.variables:
                return self._var_type(name)
            if name in self.module.defines:
                return self._define_type(name)
            if name in self._enum_symbols:
                return SmvType.ENUM
            raise SmvTypeError(f"undeclared symbol {name!r}")
        if isinstance(expr, UnaryOp):
            operand = self._infer(expr.operand)
            if expr.op == "-":
                if operand is not SmvType.INT:
                    raise SmvTypeError("unary '-' needs an integer operand")
                return SmvType.INT
            if operand is not SmvType.BOOL:
                raise SmvTypeError("'!' needs a boolean operand")
            return SmvType.BOOL
        if isinstance(expr, BinOp):
            left = self._infer(expr.left)
            right = self._infer(expr.right)
            if expr.op in _ARITHMETIC_OPS:
                if left is not SmvType.INT or right is not SmvType.INT:
                    raise SmvTypeError(f"'{expr.op}' needs integer operands")
                return SmvType.INT
            if expr.op in _COMPARISON_OPS:
                if left is not SmvType.INT or right is not SmvType.INT:
                    raise SmvTypeError(f"'{expr.op}' needs integer operands")
                return SmvType.BOOL
            if expr.op in _EQUALITY_OPS:
                if left is not right:
                    raise SmvTypeError(
                        f"'{expr.op}' operands have different types "
                        f"({left.value} vs {right.value})"
                    )
                return SmvType.BOOL
            if expr.op in _BOOLEAN_OPS:
                if left is not SmvType.BOOL or right is not SmvType.BOOL:
                    raise SmvTypeError(f"'{expr.op}' needs boolean operands")
                return SmvType.BOOL
            raise SmvTypeError(f"unknown operator {expr.op!r}")
        if isinstance(expr, Call):
            if expr.func in ("max", "min"):
                if len(expr.args) < 2:
                    raise SmvTypeError(f"{expr.func}() needs at least two arguments")
            elif expr.func == "abs":
                if len(expr.args) != 1:
                    raise SmvTypeError("abs() needs exactly one argument")
            else:
                raise SmvTypeError(f"unknown function {expr.func!r}")
            for arg in expr.args:
                if self._infer(arg) is not SmvType.INT:
                    raise SmvTypeError(f"{expr.func}() needs integer arguments")
            return SmvType.INT
        if isinstance(expr, CaseExpr):
            result_type: SmvType | None = None
            for guard, result in expr.branches:
                if self._infer(guard) is not SmvType.BOOL:
                    raise SmvTypeError("case guard must be boolean")
                branch_type = self._infer(result)
                if result_type is None:
                    result_type = branch_type
                elif branch_type is not result_type:
                    raise SmvTypeError("case branches disagree on type")
            assert result_type is not None  # parser rejects empty case
            return result_type
        if isinstance(expr, SetExpr):
            raise SmvTypeError("set expression only allowed in assignments")
        raise SmvTypeError(f"unknown expression node {type(expr).__name__}")

    def _check_ltl(self, formula: LtlExpr) -> None:
        if isinstance(formula, LtlProp):
            if self.type_of(formula.expr) is not SmvType.BOOL:
                raise SmvTypeError("LTL atom must be boolean")
        elif isinstance(formula, LtlUnary):
            self._check_ltl(formula.operand)
        elif isinstance(formula, LtlBin):
            self._check_ltl(formula.left)
            self._check_ltl(formula.right)
        else:
            raise SmvTypeError(f"unknown LTL node {type(formula).__name__}")


def check_module(module: SmvModule) -> None:
    """Type-check ``module``; raises :class:`SmvTypeError` on problems."""
    TypeChecker(module).check()
