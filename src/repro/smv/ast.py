"""AST node definitions for the SMV subset.

Expression nodes are immutable dataclasses, hashable so engines can use
them as cache keys.  LTL formulas wrap propositional expressions in a
separate node family — temporal operators never appear inside arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- types -------------------------------------------------------------------


class TypeSpec:
    """Base class of variable type specifications."""

    def values(self) -> list:
        """All values of the (finite) domain."""
        raise NotImplementedError


@dataclass(frozen=True)
class BoolType(TypeSpec):
    def values(self) -> list:
        return [False, True]

    def __repr__(self):
        return "boolean"


@dataclass(frozen=True)
class RangeType(TypeSpec):
    low: int
    high: int

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"empty range {self.low}..{self.high}")

    def values(self) -> list:
        return list(range(self.low, self.high + 1))

    def __repr__(self):
        return f"{self.low}..{self.high}"


@dataclass(frozen=True)
class EnumType(TypeSpec):
    symbols: tuple[str, ...]

    def values(self) -> list:
        return list(self.symbols)

    def __repr__(self):
        return "{" + ", ".join(self.symbols) + "}"


# -- expressions -----------------------------------------------------------------


class Expr:
    """Base class of SMV expressions."""


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" | "!"
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / mod = != < <= > >= & | -> <->
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Builtin function application: max, min, abs."""

    func: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``case c1 : e1; …; cn : en; esac`` — first true guard wins."""

    branches: tuple[tuple[Expr, Expr], ...]


@dataclass(frozen=True)
class SetExpr(Expr):
    """``{e1, …, en}`` — non-deterministic choice in assignments."""

    items: tuple[Expr, ...]


# -- LTL ---------------------------------------------------------------------------


class LtlExpr:
    """Base class of LTL formulas."""


@dataclass(frozen=True)
class LtlProp(LtlExpr):
    """A propositional (state) formula used atomically inside LTL."""

    expr: Expr


@dataclass(frozen=True)
class LtlUnary(LtlExpr):
    op: str  # "G" | "F" | "X" | "!"
    operand: LtlExpr


@dataclass(frozen=True)
class LtlBin(LtlExpr):
    op: str  # "U" | "&" | "|" | "->"
    left: LtlExpr
    right: LtlExpr


# -- module ------------------------------------------------------------------------


@dataclass
class Assignments:
    """``ASSIGN`` section: ``init(v) :=`` and ``next(v) :=`` maps."""

    init: dict[str, Expr] = field(default_factory=dict)
    next: dict[str, Expr] = field(default_factory=dict)


@dataclass
class SmvModule:
    """One ``MODULE`` (the subset supports a single flat module)."""

    name: str
    variables: dict[str, TypeSpec] = field(default_factory=dict)
    defines: dict[str, Expr] = field(default_factory=dict)
    assigns: Assignments = field(default_factory=Assignments)
    invarspecs: list[Expr] = field(default_factory=list)
    ltlspecs: list[LtlExpr] = field(default_factory=list)

    def symbol_names(self) -> set[str]:
        return set(self.variables) | set(self.defines)
