"""Lexer for the SMV subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import SmvSyntaxError


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "MODULE",
    "VAR",
    "DEFINE",
    "ASSIGN",
    "INVARSPEC",
    "LTLSPEC",
    "init",
    "next",
    "case",
    "esac",
    "boolean",
    "TRUE",
    "FALSE",
    "mod",
    "union",
    "in",
    "G",
    "F",
    "X",
    "U",
}

# Longest-match-first operator table.
OPERATORS = [
    "<->",
    "->",
    ":=",
    "<=",
    ">=",
    "!=",
    "..",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "+",
    "-",
    "*",
    "/",
]

PUNCTUATION = {"(", ")", "{", "}", ";", ":", ",", "[", "]"}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenise SMV source text; comments run from ``--`` to end of line."""
    tokens: list[Token] = []
    line = 1
    column = 1
    position = 0
    length = len(source)

    while position < length:
        char = source[position]

        if char == "\n":
            line += 1
            column = 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if source.startswith("--", position):
            while position < length and source[position] != "\n":
                position += 1
            continue

        if char.isdigit():
            start = position
            while position < length and source[position].isdigit():
                position += 1
            # Guard: "12..15" must not swallow the dots.
            text = source[start:position]
            tokens.append(Token(TokenType.NUMBER, text, line, column))
            column += position - start
            continue

        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] in "_$#."):
                # Dots inside identifiers are allowed in SMV (hierarchies);
                # ".." never matches because ranges follow numbers.
                if source.startswith("..", position):
                    break
                position += 1
            text = source[start:position]
            token_type = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENT
            tokens.append(Token(token_type, text, line, column))
            column += position - start
            continue

        matched_operator = None
        for operator in OPERATORS:
            if source.startswith(operator, position):
                matched_operator = operator
                break
        if matched_operator:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, line, column))
            position += len(matched_operator)
            column += len(matched_operator)
            continue

        if char in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, char, line, column))
            position += 1
            column += 1
            continue

        raise SmvSyntaxError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
