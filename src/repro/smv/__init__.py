"""SMV modelling language substrate (system S4 in DESIGN.md).

A faithful subset of the nuXmv input language — the formal language the
paper translates trained networks into (§IV-A):

- ``MODULE`` with ``VAR`` (boolean, bounded-integer range, symbolic enum),
  ``DEFINE`` macros, ``ASSIGN`` with ``init()``/``next()`` and
  non-deterministic set expressions;
- expressions with nuXmv operator precedence, ``case … esac``, ``max`` /
  ``min`` / ``abs`` builtins;
- ``INVARSPEC`` and the LTL safety fragment (``G``, ``F``, ``X``, ``U``
  parse; the checker engines handle the safety subset).

The module AST round-trips through the pretty-printer, and the type
checker rejects ill-typed models before any engine sees them.
"""

from .ast import (
    Assignments,
    BinOp,
    BoolLit,
    BoolType,
    CaseExpr,
    Call,
    EnumType,
    Expr,
    Ident,
    IntLit,
    LtlBin,
    LtlExpr,
    LtlProp,
    LtlUnary,
    RangeType,
    SetExpr,
    SmvModule,
    TypeSpec,
    UnaryOp,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse_expression, parse_module
from .printer import print_expression, print_module
from .typecheck import TypeChecker, check_module

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse_module",
    "parse_expression",
    "print_module",
    "print_expression",
    "check_module",
    "TypeChecker",
    "SmvModule",
    "Assignments",
    "Expr",
    "IntLit",
    "BoolLit",
    "Ident",
    "UnaryOp",
    "BinOp",
    "CaseExpr",
    "Call",
    "SetExpr",
    "TypeSpec",
    "BoolType",
    "RangeType",
    "EnumType",
    "LtlExpr",
    "LtlProp",
    "LtlUnary",
    "LtlBin",
]
