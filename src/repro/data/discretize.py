"""Discretisation for mutual-information estimation.

mRMR (Peng et al. 2005) is defined over discrete variables; the standard
recipe for microarray data bins each gene into three levels around its
mean: below ``mean - k·sd``, within, and above ``mean + k·sd``.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError


def discretize_three_level(features: np.ndarray, k: float = 0.5) -> np.ndarray:
    """Per-column 3-level discretisation: returns int8 matrix of {0, 1, 2}.

    Level 0: value < mean - k·sd;  level 1: within band;  level 2: above.
    Columns with zero variance map to all-1 (uninformative, MI = 0).
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise DataError("features must be 2-D")
    if k < 0:
        raise DataError("k must be non-negative")
    mean = features.mean(axis=0)
    sd = features.std(axis=0)
    lower = mean - k * sd
    upper = mean + k * sd
    levels = np.ones(features.shape, dtype=np.int8)
    levels[features < lower] = 0
    levels[features > upper] = 2
    return levels
