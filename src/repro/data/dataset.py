"""Dataset containers.

Label convention (fixed across the whole library, matching the paper's
bias finding): class **L1 = ALL** (Acute Lymphoblastic Leukemia, the
majority class, ~70 % of training samples) and **L0 = AML** (Acute
Myeloid Leukemia, the minority).  The paper observes that all noise-driven
misclassifications flip L0 → L1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError

LABEL_AML = 0  # L0, minority
LABEL_ALL = 1  # L1, majority

CLASS_NAMES = {LABEL_AML: "AML (L0)", LABEL_ALL: "ALL (L1)"}


@dataclass
class Dataset:
    """Feature matrix plus integer labels."""

    features: np.ndarray  # shape (n_samples, n_features)
    labels: np.ndarray  # shape (n_samples,)

    def __post_init__(self):
        self.features = np.asarray(self.features)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.features.ndim != 2:
            raise DataError("features must be 2-D")
        if self.labels.ndim != 1:
            raise DataError("labels must be 1-D")
        if self.features.shape[0] != self.labels.shape[0]:
            raise DataError(
                f"{self.features.shape[0]} feature rows vs {self.labels.shape[0]} labels"
            )

    @property
    def num_samples(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    def class_counts(self) -> dict[int, int]:
        """Samples per label."""
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def class_share(self, label: int) -> float:
        """Fraction of samples carrying ``label``."""
        if self.num_samples == 0:
            raise DataError("empty dataset has no class shares")
        return float((self.labels == label).mean())

    def subset(self, indices) -> "Dataset":
        """New dataset restricted to ``indices`` (row order preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.features[indices], self.labels[indices])


@dataclass
class LabelledSplit:
    """A train/test split of one underlying dataset."""

    train: Dataset
    test: Dataset

    def __post_init__(self):
        if self.train.num_features != self.test.num_features:
            raise DataError("train and test must agree on feature count")

    @property
    def num_features(self) -> int:
        return self.train.num_features
