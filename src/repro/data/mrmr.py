"""Minimum-Redundancy Maximum-Relevance feature selection (system S3).

Implements Peng et al.'s incremental mRMR over discretised variables,
supporting both classic criteria:

- **MID** (difference):  ``argmax_f  I(f; y) − mean_{s ∈ S} I(f; s)``
- **MIQ** (quotient):    ``argmax_f  I(f; y) / mean_{s ∈ S} I(f; s)``

The paper cites mRMR as the method that picked the five genes feeding the
network's input nodes.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError


def mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """Mutual information I(a; b) in bits between two discrete vectors."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise DataError("mutual_information expects two equal-length 1-D vectors")
    n = a.shape[0]
    if n == 0:
        raise DataError("mutual_information of empty vectors is undefined")

    a_values, a_codes = np.unique(a, return_inverse=True)
    b_values, b_codes = np.unique(b, return_inverse=True)
    joint = np.zeros((a_values.size, b_values.size))
    np.add.at(joint, (a_codes, b_codes), 1.0)
    joint /= n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.where(mask, joint / (pa @ pb), 1.0)
    return float((joint[mask] * np.log2(ratio[mask])).sum())


def _relevance(levels: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """I(feature; label) for every column of ``levels``."""
    return np.array(
        [mutual_information(levels[:, j], labels) for j in range(levels.shape[1])]
    )


def mrmr_select(
    levels: np.ndarray,
    labels: np.ndarray,
    k: int,
    scheme: str = "mid",
) -> list[int]:
    """Select ``k`` column indices by incremental mRMR.

    ``levels`` must already be discretised (see
    :func:`repro.data.discretize.discretize_three_level`).  Selection is
    deterministic; numeric ties break toward the lower column index.
    """
    levels = np.asarray(levels)
    labels = np.asarray(labels)
    if levels.ndim != 2:
        raise DataError("levels must be 2-D")
    if labels.shape[0] != levels.shape[0]:
        raise DataError("labels/levels row mismatch")
    if not 0 < k <= levels.shape[1]:
        raise DataError(f"k must be in (0, {levels.shape[1]}]")
    if scheme not in ("mid", "miq"):
        raise DataError("scheme must be 'mid' or 'miq'")

    relevance = _relevance(levels, labels)
    selected: list[int] = [int(np.argmax(relevance))]
    # Cache of I(candidate; already-selected) values, one row per selected.
    redundancy_rows: list[np.ndarray] = []

    while len(selected) < k:
        last = selected[-1]
        redundancy_rows.append(
            np.array(
                [
                    mutual_information(levels[:, j], levels[:, last])
                    for j in range(levels.shape[1])
                ]
            )
        )
        mean_redundancy = np.mean(redundancy_rows, axis=0)
        if scheme == "mid":
            score = relevance - mean_redundancy
        else:
            score = relevance / (mean_redundancy + 1e-12)
        score[selected] = -np.inf
        selected.append(int(np.argmax(score)))
    return selected
