"""Pluggable dataset sources: feature files beyond the case-study splits.

The batch service's manifests name *where a job's data comes from*.  The
built-in case-study splits cover the paper's Figs. 3–4; fleet campaigns
(the Duddu et al. / Jonasson et al. workload shape) sweep external
model/dataset grids, so this module defines the extension point:

- :class:`DatasetSource` — loads a :class:`~repro.data.dataset.Dataset`
  and exposes a **content digest** (SHA-256 over the file bytes *and*
  the parse parameters).  The digest is folded into every task identity
  and into the runtime cache context, so editing a feature file — or
  re-parsing the same file with a different label column — changes the
  identities and invalidates the persisted cache, while re-running over
  unchanged bytes hits both;
- :class:`CsvSource` / :class:`NpzSource` — the two built-in formats,
  with declared dtype, shape and label-column handling;
- a registry (:func:`register_source` / :func:`build_source`) keyed by
  the manifest's ``kind`` string, which is what
  :mod:`repro.service.spec` validates against.

Validation is strict and typed: malformed files (ragged CSV rows,
non-integral values under an integer dtype, missing labels or archive
keys) raise :class:`~repro.errors.DataError` with the offending
row/column/key named — numpy/csv internals never propagate to callers.
The analyses run on the paper's integer-scaled feature model, so every
source declares an integer ``dtype`` and loading verifies the file
honours it.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import csv
import hashlib
import io
import json
import zipfile
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from ..errors import ConfigError, DataError
from .dataset import Dataset

#: Integer dtypes a source may declare (the formal model is integral).
SOURCE_DTYPES = ("int64", "int32", "int16")


def _check_dtype(dtype: str) -> str:
    if dtype not in SOURCE_DTYPES:
        raise ConfigError(
            f"dataset source dtype {dtype!r} is not one of {SOURCE_DTYPES} "
            "(the formal analyses run on integer-scaled features)"
        )
    return dtype


def _file_bytes(path: Path, what: str) -> bytes:
    try:
        return path.read_bytes()
    except OSError as err:
        raise DataError(f"cannot read {what} dataset {path}: {err}") from None


class DatasetSource(ABC):
    """One loadable dataset plus its content-addressed identity."""

    #: Registry key; manifests select a source with ``{"kind": ...}``.
    kind: str = ""

    @abstractmethod
    def load(self) -> Dataset:
        """Parse the file into a validated :class:`Dataset` (loud on junk)."""

    @abstractmethod
    def params(self) -> dict:
        """The parse parameters that shape the dataset (digest input)."""

    @abstractmethod
    def content_bytes(self) -> bytes:
        """The raw file bytes (digest input)."""

    def digest(self) -> str:
        """SHA-256 hex over parse parameters + file content.

        Content-addressed: the same bytes parsed the same way give the
        same digest wherever the file lives, and *any* change to either
        — file edits, a different label column, a different dtype —
        gives a new one.  Task identities and the persisted cache
        context both embed it.
        """
        spec = dict(self.params(), kind=self.kind)
        spec.pop("path", None)  # content-addressed, not location-addressed
        canon = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canon.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha256(self.content_bytes()).digest())
        return digest.hexdigest()

    def describe(self) -> dict:
        """JSON-ready summary for shard-file headers and status output."""
        return dict(self.params(), kind=self.kind, digest=self.digest())


def _validated(features, labels, dtype: str, what: str) -> Dataset:
    """Common shape/dtype gate, numpy errors translated to DataError."""
    target = np.dtype(dtype)
    features = np.asarray(features)
    labels = np.asarray(labels)
    if features.ndim != 2 or 0 in features.shape:
        raise DataError(
            f"{what}: features must be a non-empty 2-D matrix, "
            f"got shape {features.shape}"
        )
    if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
        raise DataError(
            f"{what}: {features.shape[0]} feature row(s) need "
            f"{features.shape[0]} label(s), got {labels.shape}"
        )
    for name, array in (("features", features), ("labels", labels)):
        if not np.issubdtype(array.dtype, np.integer):
            raise DataError(
                f"{what}: {name} have dtype {array.dtype}, but the declared "
                f"source dtype is {dtype} (scale them to integers first)"
            )
    info = np.iinfo(target)
    if features.size and (features.min() < info.min or features.max() > info.max):
        raise DataError(
            f"{what}: feature values exceed the declared dtype {dtype}"
        )
    if labels.size and labels.min() < 0:
        raise DataError(f"{what}: labels must be non-negative class indices")
    return Dataset(features.astype(target), labels.astype(np.int64))


class CsvSource(DatasetSource):
    """CSV feature file: one row per sample, one column per feature + label.

    ``label_column`` selects the label: a column *name* (requires a
    header row), a 0-based column *index*, or ``None`` for the last
    column.  A header row is auto-detected (any non-integer cell in the
    first row).  Rows must be rectangular and every cell must parse as
    an integer of the declared ``dtype`` — anything else raises
    :class:`DataError` naming the row and column.
    """

    kind = "csv"

    def __init__(
        self,
        path: str,
        label_column: str | int | None = None,
        dtype: str = "int64",
        delimiter: str = ",",
    ):
        if not path:
            raise ConfigError("csv dataset source requires a 'path'")
        if not isinstance(delimiter, str) or len(delimiter) != 1:
            raise ConfigError("csv delimiter must be a single character")
        self.path = Path(path)
        self.label_column = label_column
        self.dtype = _check_dtype(dtype)
        self.delimiter = delimiter

    def params(self) -> dict:
        label = self.label_column
        return {
            "path": str(self.path),
            "label_column": label,
            "dtype": self.dtype,
            "delimiter": self.delimiter,
        }

    def content_bytes(self) -> bytes:
        return _file_bytes(self.path, "csv")

    def _rows(self) -> list[list[str]]:
        try:
            text = self.content_bytes().decode("utf-8", errors="strict")
        except UnicodeDecodeError as err:
            raise DataError(
                f"csv dataset {self.path} is not valid UTF-8: {err}"
            ) from None
        try:
            rows = [row for row in csv.reader(io.StringIO(text), delimiter=self.delimiter) if row]
        except csv.Error as err:
            raise DataError(f"csv dataset {self.path} is malformed: {err}") from None
        if not rows:
            raise DataError(f"csv dataset {self.path} is empty")
        return rows

    @staticmethod
    def _is_int(cell: str) -> bool:
        try:
            int(cell.strip())
        except ValueError:
            return False
        return True

    def load(self) -> Dataset:
        rows = self._rows()
        header: list[str] | None = None
        if not all(self._is_int(cell) for cell in rows[0]):
            header = [cell.strip() for cell in rows[0]]
            rows = rows[1:]
            if not rows:
                raise DataError(f"csv dataset {self.path} has a header but no rows")
        width = len(rows[0])
        if width < 2:
            raise DataError(
                f"csv dataset {self.path} needs at least one feature column "
                "plus a label column"
            )
        label_at = self._label_index(header, width)
        features = []
        labels = []
        for number, row in enumerate(rows, start=2 if header else 1):
            if len(row) != width:
                raise DataError(
                    f"csv dataset {self.path} row {number} has {len(row)} "
                    f"column(s), expected {width} (ragged rows)"
                )
            parsed = []
            for column, cell in enumerate(row):
                cell = cell.strip()
                if not self._is_int(cell):
                    raise DataError(
                        f"csv dataset {self.path} row {number}, column "
                        f"{column}: {cell!r} is not an integer (declared "
                        f"dtype {self.dtype})"
                    )
                parsed.append(int(cell))
            labels.append(parsed.pop(label_at))
            features.append(parsed)
        return _validated(features, labels, self.dtype, f"csv dataset {self.path}")

    def _label_index(self, header: list[str] | None, width: int) -> int:
        label = self.label_column
        if label is None:
            return width - 1
        if isinstance(label, str):
            if header is None:
                raise DataError(
                    f"csv dataset {self.path} has no header row, so the label "
                    f"column cannot be named {label!r}; use a column index"
                )
            if label not in header:
                raise DataError(
                    f"csv dataset {self.path} has no column {label!r} "
                    f"(columns: {', '.join(header)})"
                )
            return header.index(label)
        index = int(label)
        if not 0 <= index < width:
            raise DataError(
                f"csv dataset {self.path}: label column {index} out of range "
                f"for {width} column(s)"
            )
        return index


class NpzSource(DatasetSource):
    """NumPy ``.npz`` archive holding a feature matrix and a label vector.

    ``features_key``/``labels_key`` name the archive members (defaults
    ``features``/``labels``).  Arrays must already be integral — the
    declared ``dtype`` is verified, never silently coerced from floats.
    ``allow_pickle`` stays off: a crafted archive cannot execute code.
    """

    kind = "npz"

    def __init__(
        self,
        path: str,
        features_key: str = "features",
        labels_key: str = "labels",
        dtype: str = "int64",
    ):
        if not path:
            raise ConfigError("npz dataset source requires a 'path'")
        for what, key in (("features_key", features_key), ("labels_key", labels_key)):
            if not isinstance(key, str) or not key:
                raise ConfigError(f"npz {what} must be a non-empty string")
        self.path = Path(path)
        self.features_key = features_key
        self.labels_key = labels_key
        self.dtype = _check_dtype(dtype)

    def params(self) -> dict:
        return {
            "path": str(self.path),
            "features_key": self.features_key,
            "labels_key": self.labels_key,
            "dtype": self.dtype,
        }

    def content_bytes(self) -> bytes:
        return _file_bytes(self.path, "npz")

    def load(self) -> Dataset:
        raw = self.content_bytes()
        try:
            with np.load(io.BytesIO(raw), allow_pickle=False) as archive:
                members = set(archive.files)
                for key in (self.features_key, self.labels_key):
                    if key not in members:
                        raise DataError(
                            f"npz dataset {self.path} has no array {key!r} "
                            f"(members: {', '.join(sorted(members)) or 'none'})"
                        )
                features = archive[self.features_key]
                labels = archive[self.labels_key]
        except DataError:
            raise
        except (OSError, ValueError, zipfile.BadZipFile, EOFError) as err:
            raise DataError(
                f"npz dataset {self.path} is not a readable .npz archive: {err}"
            ) from None
        return _validated(features, labels, self.dtype, f"npz dataset {self.path}")


#: kind -> source class.  Extend with :func:`register_source`.
_REGISTRY: dict[str, type[DatasetSource]] = {}


def register_source(cls: type[DatasetSource]) -> type[DatasetSource]:
    """Register a :class:`DatasetSource` subclass under its ``kind``."""
    if not cls.kind:
        raise ConfigError(f"{cls.__name__} declares no source kind")
    if _REGISTRY.get(cls.kind, cls) is not cls:
        raise ConfigError(f"dataset source kind {cls.kind!r} is already registered")
    _REGISTRY[cls.kind] = cls
    return cls


register_source(CsvSource)
register_source(NpzSource)


def source_kinds() -> tuple[str, ...]:
    """The registered manifest ``kind`` strings, sorted."""
    return tuple(sorted(_REGISTRY))


def build_source(kind: str, **params) -> DatasetSource:
    """Instantiate the registered source for ``kind`` with ``params``.

    Raises :class:`ConfigError` on unknown kinds or parameters the
    source does not take — manifest typos fail loudly at build time,
    before any file is read.
    """
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise ConfigError(
            f"dataset source kind {kind!r} is not one of {source_kinds()}"
        )
    try:
        return cls(**params)
    except TypeError as err:
        raise ConfigError(f"bad {kind} dataset source parameters: {err}") from None
