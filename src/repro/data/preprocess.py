"""Preprocessing: column selection and integer scaling.

The formal model works over integer inputs (Fig. 3 declares ``i ∈ Z``),
so after mRMR selection each gene is affinely mapped from its *training*
range onto ``[1, input_scale] ∩ Z``.  The lower end is 1, not 0: the
paper's noise channel is relative (``x(100+p)/100``), and a zero input
would be a node noise cannot touch, silently excluding it from the
sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError


def select_columns(features: np.ndarray, indices: list[int]) -> np.ndarray:
    """Restrict ``features`` to the given column indices, in order."""
    features = np.asarray(features)
    if features.ndim != 2:
        raise DataError("features must be 2-D")
    for index in indices:
        if not 0 <= index < features.shape[1]:
            raise DataError(f"column index {index} out of range")
    return features[:, indices]


@dataclass(frozen=True)
class IntegerScaler:
    """Per-column affine map onto ``[1, scale]`` fitted on training data."""

    minimum: np.ndarray
    maximum: np.ndarray
    scale: int

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map to integers; values outside the fitted range are clipped."""
        features = np.asarray(features, dtype=np.float64)
        span = np.maximum(self.maximum - self.minimum, 1e-12)
        unit = (features - self.minimum) / span
        scaled = 1 + unit * (self.scale - 1)
        return np.clip(np.round(scaled), 1, self.scale).astype(np.int64)


def scale_to_integers(train: np.ndarray, scale: int = 50) -> tuple[IntegerScaler, np.ndarray]:
    """Fit an :class:`IntegerScaler` on ``train`` and return it with the
    transformed training matrix."""
    train = np.asarray(train, dtype=np.float64)
    if train.ndim != 2 or train.shape[0] == 0:
        raise DataError("train must be a non-empty 2-D matrix")
    if scale < 2:
        raise DataError("scale must be at least 2")
    scaler = IntegerScaler(train.min(axis=0), train.max(axis=0), scale)
    return scaler, scaler.transform(train)
