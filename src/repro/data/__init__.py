"""Data substrate (systems S2 + S3 in DESIGN.md).

The paper's case study uses the Golub leukemia microarray dataset
(7129 genes, 38 training / 34 testing samples, two classes ALL/AML) with
mRMR feature selection picking the five most significant genes.  The real
CSV needs a network fetch, so :mod:`repro.data.golub` generates a
synthetic stand-in with the same published shape; mRMR and preprocessing
are implemented faithfully.
"""

from .dataset import Dataset, LabelledSplit, CLASS_NAMES, LABEL_AML, LABEL_ALL
from .discretize import discretize_three_level
from .golub import GolubConfig, generate_golub_like
from .mrmr import mutual_information, mrmr_select
from .preprocess import scale_to_integers, select_columns
from .loaders import LeukemiaCaseStudy, load_leukemia_case_study
from .sources import (
    SOURCE_DTYPES,
    CsvSource,
    DatasetSource,
    NpzSource,
    build_source,
    register_source,
    source_kinds,
)

__all__ = [
    "SOURCE_DTYPES",
    "CsvSource",
    "DatasetSource",
    "NpzSource",
    "build_source",
    "register_source",
    "source_kinds",
    "Dataset",
    "LabelledSplit",
    "CLASS_NAMES",
    "LABEL_AML",
    "LABEL_ALL",
    "discretize_three_level",
    "GolubConfig",
    "generate_golub_like",
    "mutual_information",
    "mrmr_select",
    "scale_to_integers",
    "select_columns",
    "LeukemiaCaseStudy",
    "load_leukemia_case_study",
]
