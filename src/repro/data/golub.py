"""Synthetic Golub-style leukemia microarray generator.

**Substitution note (DESIGN.md §6).**  The paper trains on the Golub 1999
leukemia dataset fetched from ``web.stanford.edu`` — unavailable offline.
This module generates a synthetic dataset that preserves every property the
paper's analysis depends on:

- dimensionality: 7129 genes per sample;
- split sizes and class mix: 38 training samples (27 ALL + 11 AML, i.e.
  ~71 % majority class — the source of the training bias the paper
  detects) and 34 testing samples (20 ALL + 14 AML);
- marginal structure: log-normal expression intensities with per-gene
  baselines and per-gene measurement noise, clipped at a detection floor,
  like Affymetrix average-difference values;
- signal structure: a planted subset of differentially-expressed genes
  whose class-conditional shift varies in strength, so that (a) mRMR has
  genuine signal to find and (b) some test samples land near the decision
  boundary (the paper's "boundary analysis" panel needs them).

Nothing downstream reads the planted ground truth: feature selection,
training and the formal analyses all operate on the generated matrix only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .dataset import Dataset, LABEL_ALL, LABEL_AML, LabelledSplit


@dataclass(frozen=True)
class GolubConfig:
    """Generator parameters (defaults reproduce the published shape)."""

    num_genes: int = 7129
    train_all: int = 27  # ALL = L1 majority
    train_aml: int = 11
    test_all: int = 20
    test_aml: int = 14
    num_informative: int = 120
    effect_low: float = 0.6
    effect_high: float = 2.2
    baseline_mean: float = 6.5
    baseline_sd: float = 1.2
    noise_low: float = 0.45
    noise_high: float = 1.0
    detection_floor: float = 20.0
    # Seed 32 reproduces the paper's headline accuracies with the default
    # training recipe: 100 % train, 32/34 = 94.12 % test (EXPERIMENTS.md E6).
    seed: int = 32

    def __post_init__(self):
        if self.num_genes <= 0:
            raise ConfigError("num_genes must be positive")
        if min(self.train_all, self.train_aml, self.test_all, self.test_aml) <= 0:
            raise ConfigError("every class split must be non-empty")
        if not 0 < self.num_informative <= self.num_genes:
            raise ConfigError("num_informative must be in (0, num_genes]")
        if self.effect_low <= 0 or self.effect_high < self.effect_low:
            raise ConfigError("effect sizes must satisfy 0 < low <= high")

    @property
    def train_size(self) -> int:
        return self.train_all + self.train_aml

    @property
    def test_size(self) -> int:
        return self.test_all + self.test_aml


def generate_golub_like(config: GolubConfig | None = None) -> LabelledSplit:
    """Generate the synthetic leukemia dataset as a train/test split.

    Expression values are integers (rounded intensities), matching the
    paper's declaration of integer-valued network inputs.
    """
    config = config or GolubConfig()
    rng = np.random.default_rng(config.seed)

    # Per-gene baseline log2-intensity and measurement noise scale.
    baseline = rng.normal(config.baseline_mean, config.baseline_sd, size=config.num_genes)
    noise_scale = rng.uniform(config.noise_low, config.noise_high, size=config.num_genes)

    # Planted differential expression: a signed per-gene shift applied to
    # ALL samples only (so AML sits at baseline).  Effect sizes span a
    # range: strong genes make the problem learnable, weak ones keep some
    # samples near the boundary.
    informative = rng.choice(config.num_genes, size=config.num_informative, replace=False)
    signs = rng.choice([-1.0, 1.0], size=config.num_informative)
    strength = rng.uniform(config.effect_low, config.effect_high, size=config.num_informative)
    shift = np.zeros(config.num_genes)
    shift[informative] = signs * strength

    def sample_block(n: int, label: int) -> np.ndarray:
        log_mean = baseline + (shift if label == LABEL_ALL else 0.0)
        log_values = rng.normal(log_mean, noise_scale, size=(n, config.num_genes))
        intensities = np.exp2(log_values)
        return np.maximum(intensities, config.detection_floor)

    train_features = np.vstack(
        [sample_block(config.train_all, LABEL_ALL), sample_block(config.train_aml, LABEL_AML)]
    )
    train_labels = np.concatenate(
        [np.full(config.train_all, LABEL_ALL), np.full(config.train_aml, LABEL_AML)]
    )
    test_features = np.vstack(
        [sample_block(config.test_all, LABEL_ALL), sample_block(config.test_aml, LABEL_AML)]
    )
    test_labels = np.concatenate(
        [np.full(config.test_all, LABEL_ALL), np.full(config.test_aml, LABEL_AML)]
    )

    # Shuffle each split so class blocks are not contiguous.
    train_order = rng.permutation(config.train_size)
    test_order = rng.permutation(config.test_size)

    train = Dataset(
        np.round(train_features[train_order]).astype(np.int64), train_labels[train_order]
    )
    test = Dataset(
        np.round(test_features[test_order]).astype(np.int64), test_labels[test_order]
    )
    return LabelledSplit(train=train, test=test)
