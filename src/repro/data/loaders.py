"""End-to-end case-study loader: generate → select → scale.

Reproduces §V-A's pipeline: 7129-gene dataset, mRMR picks the five most
significant genes (on training data only — no test leakage), expressions
are scaled to integers for the formal model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import FannetConfig
from .dataset import Dataset, LabelledSplit
from .discretize import discretize_three_level
from .golub import GolubConfig, generate_golub_like
from .mrmr import mrmr_select
from .preprocess import IntegerScaler, scale_to_integers, select_columns


@dataclass
class LeukemiaCaseStudy:
    """Fully prepared case-study data.

    ``split`` holds the integer-scaled 5-feature train/test datasets the
    network trains on and the formal analyses check.
    """

    split: LabelledSplit
    selected_genes: list[int]
    scaler: IntegerScaler
    raw_split: LabelledSplit = field(repr=False)

    @property
    def train(self) -> Dataset:
        return self.split.train

    @property
    def test(self) -> Dataset:
        return self.split.test


def load_leukemia_case_study(
    config: FannetConfig | None = None,
    golub_config: GolubConfig | None = None,
    mrmr_scheme: str = "mid",
) -> LeukemiaCaseStudy:
    """Build the complete case-study data from scratch (deterministic)."""
    config = config or FannetConfig()
    raw = generate_golub_like(golub_config)

    # Feature selection on training data only.
    levels = discretize_three_level(raw.train.features)
    selected = mrmr_select(levels, raw.train.labels, k=config.num_features, scheme=mrmr_scheme)

    train_selected = select_columns(raw.train.features, selected)
    test_selected = select_columns(raw.test.features, selected)

    # Integer scaling fitted on train, applied to both.
    scaler, train_int = scale_to_integers(train_selected, scale=config.input_scale)
    test_int = scaler.transform(test_selected)

    split = LabelledSplit(
        train=Dataset(train_int, raw.train.labels),
        test=Dataset(test_int, raw.test.labels),
    )
    return LeukemiaCaseStudy(
        split=split, selected_genes=selected, scaler=scaler, raw_split=raw
    )
