"""Daemon lifecycle: the asyncio server, the worker pool, clean shutdown.

Concurrency model, in one paragraph: the event loop owns every socket
and all queue/registry state; ``workers`` coroutines pull jobs off the
admission queue and hand each to a thread pool of the same size, where
:meth:`~repro.serve.app.ServeApp.execute` does the blocking
verification work (the runtime's engines and process-pool fan-out are
synchronous by design).  HTTP stays responsive while every worker is
busy — status polls, event streams and 429 shedding are all event-loop
work.  Shutdown closes the listener, cancels the pullers, flags every
running job for cooperative cancellation, drains the thread pool, and
flushes/closes every pooled runner so cache warmth reaches disk.

:func:`running_server` runs the whole lifecycle on a background thread
— the harness tests and any embedding code use it; the CLI's blocking
entry point is :func:`run`.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..config import RuntimeConfig
from .app import ServeApp
from .http import HttpError, Response, StreamResponse, read_request
from .jobs import DONE_RETENTION
from .journal import JobJournal

#: Seconds a test harness waits for the background server to come up.
STARTUP_TIMEOUT_S = 30.0


@dataclass
class ServeConfig:
    """Everything ``fannet serve`` needs to boot."""

    host: str = "127.0.0.1"
    port: int = 8414  # 0 = ephemeral (tests)
    workers: int = 2
    max_pending: int = 16
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: Directory of the write-ahead job journal; ``None`` disables
    #: crash-safety (a restart then drops queued/running jobs).
    journal_dir: str | None = None
    #: Terminal jobs kept in the in-memory registry before FIFO
    #: eviction (journal-backed lookups extend well past this).
    done_retention: int = DONE_RETENTION

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.done_retention < 1:
            raise ValueError("done_retention must be >= 1")


class FannetServer:
    """One daemon instance; start/stop run on its event loop."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.app = ServeApp(
            workers=config.workers,
            max_pending=config.max_pending,
            runtime=config.runtime,
            done_retention=config.done_retention,
        )
        self.port: int | None = None  # actual bound port once started
        #: Boot report of the journal replay (``None`` without a journal).
        self.replayed: dict | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._pullers: list[asyncio.Task] = []

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        self.app.queue.bind_loop(asyncio.get_running_loop())
        if self.config.journal_dir is not None:
            # Replay before the listener opens: a client polling through
            # a restart must never observe a 404 window mid-replay.
            self.replayed = self.app.attach_journal(
                JobJournal(self.config.journal_dir)
            )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="fannet-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pullers = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.config.workers)
        ]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._pullers:
            task.cancel()
        await asyncio.gather(*self._pullers, return_exceptions=True)
        # Running jobs stop at their next cancellation checkpoint; the
        # executor drain below waits for them, bounded by that.  With a
        # journal these drain cancellations are *not* journaled as
        # terminal — the journal keeps believing the jobs are queued or
        # running, so the next boot re-admits them (a graceful restart
        # resumes work exactly like a crash recovery does).
        if self.app.journal is not None:
            self.app.journal.begin_shutdown()
        for job in list(self.app.queue.jobs.values()):
            if not job.done:
                self.app.queue.cancel(job.id)
        if self._executor is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self._executor.shutdown(wait=True)
            )
        self.app.shutdown()

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- workers -----------------------------------------------------------------

    async def _worker(self) -> None:
        """Pull jobs and run them on the thread pool, forever."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self.app.queue.next_job()
            # execute() never raises; pool size == puller count, so this
            # never queues behind another job inside the executor.
            await loop.run_in_executor(self._executor, self.app.execute, job)

    # -- connections -------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        response: Response | StreamResponse
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return  # clean EOF before a request
                response = await self.app.handle(request)
            except HttpError as err:
                response = Response.error(err.status, err.message, err.headers)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client hung up mid-request: nothing to answer
            except Exception as err:  # route bug: answer 500, keep serving
                response = Response.error(500, f"internal error: {err!r}")
            try:
                if isinstance(response, StreamResponse):
                    writer.write(response.encode_head())
                    await writer.drain()
                    async for chunk in response.chunks:
                        writer.write(chunk)
                        await writer.drain()
                else:
                    writer.write(response.encode())
                    await writer.drain()
            except (ConnectionError, TimeoutError):
                # A client vanishing mid-stream is its problem, not the
                # daemon's: drop the connection, keep every job running.
                if isinstance(response, StreamResponse):
                    with contextlib.suppress(Exception):
                        await response.chunks.aclose()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()


async def _run_async(config: ServeConfig) -> None:
    server = FannetServer(config)
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def run(config: ServeConfig, announce=None) -> None:
    """Blocking daemon entry point (the ``fannet serve`` command)."""

    async def main():
        server = FannetServer(config)
        await server.start()
        if announce is not None:
            announce(server)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass  # clean Ctrl-C: stop() already flushed the runners


@contextlib.contextmanager
def running_server(config: ServeConfig):
    """A live :class:`FannetServer` on a background thread (tests/embedding).

    Yields the started server (``server.url`` is the base URL); tears it
    down — cancelling in-flight jobs and flushing runner caches — on
    exit, re-raising any startup failure in the caller's thread.
    """
    loop = asyncio.new_event_loop()
    server = FannetServer(config)
    started = threading.Event()
    boot_error: list[BaseException] = []

    def drive():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as err:  # surface boot failures to the caller
            boot_error.append(err)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=drive, name="fannet-serve-loop", daemon=True)
    thread.start()
    if not started.wait(STARTUP_TIMEOUT_S):
        raise TimeoutError("fannet serve failed to start in time")
    if boot_error:
        raise boot_error[0]
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=120)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
