"""Client side of the daemon: small HTTP client + batch ``--server`` mode.

:class:`ServeClient` is a deliberately thin stdlib-only wrapper over
``http.client`` (one request per connection, matching the daemon's
framing; no proxy-environment surprises, which matters in CI).  It
knows the three verbs a campaign needs — submit (with 429/
``Retry-After`` backoff), poll-until-terminal, fetch result — and maps
server-reported errors onto :class:`ServeClientError`.

:func:`run_batch_shard_via_server` is the ``fannet batch run --server``
implementation: it ships the manifest to the daemon as one ``batch``
job, waits, then writes the *identical* artifacts a local
``BatchService.run_shard`` would have written — per-job shard files and
the campaign ledger, canonical JSON through the same atomic writer.
Outcome values survive the HTTP hop exactly (JSON round-trips ints,
floats — via ``repr`` — lists and nulls bit-for-bit), canonical dumps
erase ordering, and the runtime's determinism contract erases cache
warmth, so the files are byte-identical to the local path's: every
downstream consumer (``status``, ``merge``, resume) works unchanged,
and CI byte-compares the two paths to keep it that way.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from urllib.parse import urlsplit

from ..errors import ReproError
from ..ioutils import atomic_write_bytes
from ..service import (
    SHARD_FORMAT_VERSION,
    BatchSpec,
    CampaignLedger,
    ShardRunReport,
    shard_file_name,
)

#: Default per-request socket timeout (seconds).  Generous: one request
#: may be a result fetch for a large shard.
REQUEST_TIMEOUT_S = 300.0

#: Default status-poll interval (seconds).
POLL_INTERVAL_S = 0.25

#: How long :meth:`ServeClient.wait` tolerates an unreachable daemon
#: before giving up — the window in which a journal-backed daemon
#: restart (deploy, crash + supervisor respawn) looks like a blip, not
#: a failure.  The replayed journal re-admits the awaited job, so
#: polling simply resumes where it left off.
RECONNECT_WINDOW_S = 60.0


class ServeClientError(ReproError):
    """A daemon interaction failed (transport or server-reported)."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talk to one ``fannet serve`` daemon."""

    def __init__(self, base_url: str, timeout: float = REQUEST_TIMEOUT_S):
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise ServeClientError(
                f"unsupported server URL scheme {split.scheme!r} (http only)"
            )
        if not split.hostname:
            raise ServeClientError(f"server URL {base_url!r} has no host")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def request(self, method: str, path: str, payload=None):
        """One request; returns ``(status, parsed_body, headers)``."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            blob = response.read()
            status = response.status
            response_headers = dict(response.getheaders())
        except (OSError, HTTPException) as err:
            raise ServeClientError(
                f"could not reach fannet serve at {self.host}:{self.port}: {err}"
            ) from None
        finally:
            conn.close()
        parsed = None
        if blob:
            try:
                parsed = json.loads(blob.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as err:
                raise ServeClientError(
                    f"server sent undecodable JSON for {method} {path}: {err}",
                    status=status,
                )
        return status, parsed, response_headers

    @staticmethod
    def _error_of(body, status: int, what: str) -> ServeClientError:
        message = body.get("error") if isinstance(body, dict) else None
        return ServeClientError(
            f"{what} failed with HTTP {status}: {message or 'no detail'}",
            status=status,
        )

    # -- the three campaign verbs ------------------------------------------------

    def submit(self, payload: dict, max_wait_s: float = 600.0) -> dict:
        """Submit a job, backing off on 429 until ``max_wait_s`` elapses."""
        deadline = time.monotonic() + max_wait_s
        while True:
            status, body, headers = self.request("POST", "/v1/jobs", payload)
            if status == 202:
                return body
            if status == 429 and time.monotonic() < deadline:
                try:
                    pause = float(headers.get("Retry-After", "1"))
                except ValueError:
                    pause = 1.0
                time.sleep(min(max(pause, 0.1), 10.0))
                continue
            raise self._error_of(body, status, "job submission")

    def wait(
        self,
        job_id: str,
        poll_s: float = POLL_INTERVAL_S,
        timeout_s: float | None = None,
        reconnect_s: float = RECONNECT_WINDOW_S,
    ) -> dict:
        """Poll one job until it reaches a terminal state.

        A daemon that bounces mid-wait (restart, crash + respawn) shows
        up as transport errors; those are tolerated for up to
        ``reconnect_s`` consecutive seconds before the wait fails, so a
        journal-backed restart — which re-admits the job and keeps
        serving its result — is survived transparently.  Server-reported
        errors (a real HTTP status) still fail immediately.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        down_since: float | None = None
        while True:
            try:
                status, body, _ = self.request("GET", f"/v1/jobs/{job_id}")
            except ServeClientError as err:
                if err.status is not None:
                    raise  # the server answered; this is not an outage
                now = time.monotonic()
                if down_since is None:
                    down_since = now
                if now - down_since > reconnect_s:
                    raise ServeClientError(
                        f"daemon unreachable for {reconnect_s}s while waiting "
                        f"for job {job_id}: {err}"
                    ) from None
                time.sleep(max(poll_s, 0.05))
                continue
            down_since = None
            if status != 200:
                raise self._error_of(body, status, f"status poll for {job_id}")
            if body.get("state") in ("done", "error", "cancelled"):
                return body
            if deadline is not None and time.monotonic() > deadline:
                raise ServeClientError(
                    f"job {job_id} still {body.get('state')!r} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def result(self, job_id: str):
        """Fetch a done job's result (raises with the server's error otherwise)."""
        status, body, _ = self.request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            raise self._error_of(body, status, f"result fetch for {job_id}")
        return body["result"]

    # -- convenience -------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            status, _, _ = self.request("GET", "/healthz")
        except ServeClientError:
            return False
        return status == 200

    def stats(self) -> dict:
        status, body, _ = self.request("GET", "/v1/stats")
        if status != 200:
            raise self._error_of(body, status, "stats fetch")
        return body

    def run_and_fetch(
        self, payload: dict, poll_s: float = POLL_INTERVAL_S,
        timeout_s: float | None = None,
    ):
        """submit → wait → result, in one call."""
        job_id = self.submit(payload)["id"]
        final = self.wait(job_id, poll_s=poll_s, timeout_s=timeout_s)
        if final["state"] != "done":
            raise ServeClientError(
                f"job {job_id} ended {final['state']!r}: "
                f"{final.get('error', 'no detail')}"
            )
        return self.result(job_id)


def run_batch_shard_via_server(
    client: ServeClient,
    spec: BatchSpec,
    shard_index: int,
    shard_count: int,
    out_dir,
    poll_s: float = POLL_INTERVAL_S,
    timeout_s: float | None = None,
) -> ShardRunReport:
    """Execute one batch shard on the daemon; write the local artifacts.

    ``shard_index`` is 0-based, mirroring ``BatchService.run_shard``.
    The daemon executes every task of the shard (its per-context cache
    pool makes repeats cheap); this function then writes the same
    shard files and ledger a local run would have, so ``fannet batch
    status | merge`` and later resumed local runs see no difference.
    """
    result = client.run_and_fetch(
        {
            "kind": "batch",
            "manifest": spec.to_dict(),
            "shard": [shard_index + 1, shard_count],
        },
        poll_s=poll_s,
        timeout_s=timeout_s,
    )
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    report = ShardRunReport(shard=(shard_index + 1, shard_count))
    report.executed = int(result.get("executed", 0))
    ledger = CampaignLedger(batch=spec.name, shard=(shard_index + 1, shard_count))
    for entry in result["jobs"]:
        meta = entry["job"]
        name = meta["job"]
        outcomes = entry["results"]
        payload = {
            "format": SHARD_FORMAT_VERSION,
            "batch": spec.name,
            "shard": [shard_index + 1, shard_count],
            "job": meta,
            "results": outcomes,
        }
        path = out_dir / shard_file_name(name, shard_index, shard_count)
        atomic_write_bytes(
            path, json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        )
        report.written.append(path)
        for identity, outcome in outcomes.items():
            ledger.record(name, meta["context"], identity, outcome)
    report.ledger_path = ledger.save(out_dir)
    return report


__all__ = [
    "POLL_INTERVAL_S",
    "RECONNECT_WINDOW_S",
    "REQUEST_TIMEOUT_S",
    "ServeClient",
    "ServeClientError",
    "run_batch_shard_via_server",
]
