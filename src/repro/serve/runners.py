"""Per-context :class:`QueryRunner` pool shared by every daemon client.

The daemon's whole point is that many concurrent clients multiplex onto
*shared* warm caches: one :class:`~repro.runtime.QueryRunner` lives per
runtime-context fingerprint (network × verifier config × dataset
digest), created on first use and reused for every later job on the
same context — the second client's ladder is answered from the first
client's engine-proved verdicts (exact and monotone-derived hits), and
with a ``cache_dir`` the warmth survives daemon restarts through the
existing :class:`~repro.runtime.store.CacheStore`.

Safety model: :class:`QueryRunner` is not internally thread-safe for
query execution, so each pooled runner carries a lease lock — jobs on
the *same* context serialise (they share one cache and would race its
fact tables), jobs on *different* contexts run fully in parallel on the
worker pool.  Maintenance operations (flush, stats snapshots) are safe
from any thread via the runner's own I/O lock, which is what lets the
``/v1/stats`` endpoint sample runners mid-job.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from ..config import RuntimeConfig, VerifierConfig
from ..runtime import QueryRunner
from ..runtime.fingerprint import runtime_context


@dataclass
class _PooledRunner:
    runner: QueryRunner
    lock: threading.Lock
    jobs_served: int = 0


class RunnerPool:
    """Lazily built map of runtime-context fingerprint → shared runner."""

    def __init__(self, runtime: RuntimeConfig | None = None):
        self.runtime = runtime or RuntimeConfig()
        self._mutex = threading.Lock()
        self._entries: dict[str, _PooledRunner] = {}

    @contextmanager
    def lease(self, network, config: VerifierConfig, data_digest: str | None = None):
        """Exclusive use of the context's shared runner for one job.

        Creating the runner (which may warm-load a disk store) happens
        under the pool mutex; the query work happens under the runner's
        own lease lock only, so slow jobs never block unrelated contexts.
        """
        context = runtime_context(network, config, data_digest)
        with self._mutex:
            entry = self._entries.get(context)
            if entry is None:
                entry = _PooledRunner(
                    runner=QueryRunner(
                        network, config, self.runtime, data_digest=data_digest
                    ),
                    lock=threading.Lock(),
                )
                self._entries[context] = entry
        with entry.lock:
            entry.jobs_served += 1
            yield entry.runner

    # -- maintenance -------------------------------------------------------------

    def _snapshot(self) -> list[_PooledRunner]:
        with self._mutex:
            return list(self._entries.values())

    def flush_all(self) -> None:
        """Spill every runner's new cache entries to its disk store."""
        for entry in self._snapshot():
            entry.runner.flush()

    def close_all(self) -> None:
        """Flush and shut down every runner (daemon shutdown)."""
        with self._mutex:
            entries, self._entries = list(self._entries.values()), {}
        for entry in entries:
            entry.runner.close()

    def stats(self) -> list[dict]:
        """One consistent stats snapshot per pooled runner (any thread)."""
        out = []
        for entry in self._snapshot():
            payload = entry.runner.stats_payload()
            payload["jobs_served"] = entry.jobs_served
            out.append(payload)
        return out

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)
