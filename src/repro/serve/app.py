"""The daemon's HTTP/JSON application: routes, validation, job executors.

API surface (all JSON; one request per connection):

- ``GET  /healthz`` — liveness probe;
- ``GET  /v1/stats`` — queue depth, per-context runner/cache counters;
- ``POST /v1/jobs`` — submit a job; ``202`` with the job id, ``429`` +
  ``Retry-After`` when the pending queue is full, ``400`` on malformed
  bodies (bad JSON, unknown kind, invalid specs — validated eagerly at
  submit so clients fail fast, not minutes later in a worker);
- ``GET  /v1/jobs`` — every registered job's status;
- ``GET  /v1/jobs/<id>`` — one job's status (poll target);
- ``GET  /v1/jobs/<id>/events`` — NDJSON stream of status snapshots
  until the job reaches a terminal state (live progress);
- ``GET  /v1/jobs/<id>/result`` — the result once ``done`` (``409``
  while still queued/running, ``500`` carrying the error message when
  the job failed);
- ``DELETE /v1/jobs/<id>`` — cancel (queued jobs die immediately;
  running jobs stop at the next task boundary).

Job kinds:

- ``verify`` — one robustness query: network spec + input + percent;
- ``tolerance`` / ``extraction`` / ``sensitivity`` — one analysis over
  one :class:`~repro.service.spec.JobSpec` (the manifest ``job``
  section, with the matching ``analyses`` entry);
- ``batch`` — a whole batch manifest (optionally one shard of it);
  the payload mirrors ``fannet batch run``, which is exactly how the
  batch CLI's ``--server`` mode uses it;
- ``sleep`` — an operational no-op that holds a worker for N seconds;
  the smoke probe for queue/backpressure behaviour.

Execution runs on worker threads; every analysis-bearing kind resolves
to planned tasks executed through the shared per-context
:class:`~repro.serve.runners.RunnerPool`, with a cache flush after each
job (the ledger-style checkpoint discipline of the batch plane) and a
progress snapshot after every task.  Task outcomes are produced by the
same planner/runtime path as the CLI, so an HTTP-submitted ladder is
bit-identical to its ``fannet batch run`` equivalent.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import asyncio
import json
import threading
import time

from ..config import TrainConfig, VerifierConfig
from ..data import load_leukemia_case_study
from ..errors import ConfigError, DataError, ReproError
from ..nn import load_network, quantize_network, train_paper_network
from ..service import BatchService, BatchSpec, JobSpec, NetworkSpec
from ..service.service import _jsonable, _summarise_job
from .http import HttpError, Request, Response, StreamResponse
from .jobs import DONE_RETENTION, Job, JobCancelled, JobQueue, QueueFullError
from .runners import RunnerPool

#: Job kinds the daemon accepts.
JOB_KINDS = ("verify", "tolerance", "extraction", "sensitivity", "batch", "sleep")

#: Single-analysis kinds → the JobSpec analysis section they require.
_ANALYSIS_OF = {"tolerance": "tolerance", "extraction": "extraction",
                "sensitivity": "probe"}

#: Ceiling on the operational sleep kind.
MAX_SLEEP_S = 60.0

#: Poll interval of the events stream (seconds).
EVENTS_POLL_S = 0.05


class ServeApp:
    """Routes, the job queue, the runner pool and the executors."""

    def __init__(
        self,
        workers: int,
        max_pending: int,
        runtime=None,
        done_retention: int = DONE_RETENTION,
    ):
        self.workers = workers
        self.queue = JobQueue(max_pending, done_retention=done_retention)
        self.runners = RunnerPool(runtime)
        self.journal = None
        self.started_at = time.time()
        self._net_mutex = threading.Lock()
        self._networks: dict[tuple, object] = {}

    def attach_journal(self, journal) -> dict:
        """Wire a :class:`~repro.serve.journal.JobJournal` and replay it.

        Re-admits every journaled job without a terminal record in
        submission order (jobs caught *running* by the crash simply
        re-execute — warm per-context caches make the redo cheap), keeps
        finished jobs answerable through the journal's retained terminal
        records, and continues the job-id serial past everything
        replayed.  Returns a boot report: ``{"queued": n, "rerun": n,
        "finished": n, "warnings": [...]}``.
        """
        self.journal = journal
        self.queue.journal = journal
        replayed = journal.replay_jobs()
        for job in replayed:
            self.queue.restore(job)
        self.queue.resume_serials(journal.max_serial)
        return {
            "queued": sum(1 for job in replayed if job.state == "queued"),
            "rerun": sum(1 for job in replayed if job.state == "running"),
            "finished": journal.stats_payload()["terminal"],
            "warnings": list(journal.warnings),
        }

    # -- routing -----------------------------------------------------------------

    async def handle(self, request: Request) -> Response | StreamResponse:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            self._require(request, "GET")
            return Response.json({"ok": True, "uptime_s": self._uptime()})
        if path == "/v1/stats":
            self._require(request, "GET")
            return Response.json(self._stats_payload())
        if path == "/v1/jobs":
            if request.method == "POST":
                return self._submit(request)
            self._require(request, "GET")
            return Response.json({"jobs": self.queue.summaries()})
        parts = path.strip("/").split("/")
        if len(parts) in (3, 4) and parts[0] == "v1" and parts[1] == "jobs":
            job, live = self._lookup(parts[2])
            if job is None:
                raise HttpError(404, f"no such job: {parts[2]!r}")
            if len(parts) == 3:
                if request.method == "DELETE":
                    if live:
                        self.queue.cancel(job.id)
                    return Response.json(job.status_payload())
                self._require(request, "GET")
                return Response.json(job.status_payload())
            if parts[3] == "result":
                self._require(request, "GET")
                return self._result(job)
            if parts[3] == "events":
                self._require(request, "GET")
                return StreamResponse(chunks=self._events(job))
        raise HttpError(404, f"no route for {request.path!r}")

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(405, f"{request.path} only supports {method}")

    def _uptime(self) -> float:
        return round(time.time() - self.started_at, 3)

    def _lookup(self, job_id: str):
        """``(job, live)`` — the registry's live job, or a read-only view
        reconstructed from the journal's terminal records.

        The journal view is what keeps two classes of job answerable:
        jobs finished before a daemon restart, and jobs FIFO-evicted
        from the bounded registry while their (slow) submitter was
        still between polls — both would otherwise 404 on success.
        """
        job = self.queue.get(job_id)
        if job is not None:
            return job, True
        if self.journal is not None:
            record = self.journal.terminal_record(job_id)
            if record is not None:
                return (
                    Job(
                        id=record["id"],
                        kind=record.get("kind", "unknown"),
                        payload={},
                        state=record["state"],
                        result=record.get("result"),
                        error=record.get("error"),
                        version=int(record.get("version", 0)),
                    ),
                    False,
                )
        return None, False

    # -- submission --------------------------------------------------------------

    def _submit(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "job submission must be a JSON object")
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise HttpError(
                400, f"unknown job kind {kind!r} (one of: {', '.join(JOB_KINDS)})"
            )
        try:
            self._validate(kind, payload)
        except (ConfigError, DataError) as err:
            raise HttpError(400, f"invalid {kind} job: {err}") from None
        try:
            job = self.queue.submit(kind, payload)
        except QueueFullError as err:
            raise HttpError(
                429, str(err), headers={"Retry-After": str(err.retry_after_s)}
            ) from None
        body = job.status_payload()
        body["links"] = {
            "status": f"/v1/jobs/{job.id}",
            "events": f"/v1/jobs/{job.id}/events",
            "result": f"/v1/jobs/{job.id}/result",
        }
        return Response.json(body, status=202)

    def _validate(self, kind: str, payload: dict) -> None:
        """Cheap eager validation (specs parse; no training, no file I/O)."""
        if kind == "sleep":
            seconds = payload.get("seconds", 0)
            if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) or \
                    not 0 <= seconds <= MAX_SLEEP_S:
                raise ConfigError(
                    f"sleep 'seconds' must be a number in [0, {MAX_SLEEP_S}]"
                )
            return
        if kind == "verify":
            self._verify_parts(payload)
            return
        if kind == "batch":
            spec, shard = self._batch_parts(payload)
            del spec, shard
            return
        self._single_job_spec(kind, payload)

    @staticmethod
    def _verify_parts(payload: dict):
        network = NetworkSpec.from_dict(payload.get("network") or {})
        verifier = VerifierConfig.from_dict(payload.get("verifier") or {})
        x = payload.get("input")
        if not isinstance(x, list) or not x or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in x
        ):
            raise ConfigError("verify 'input' must be a non-empty list of integers")
        label = payload.get("true_label")
        if not isinstance(label, int) or isinstance(label, bool):
            raise ConfigError("verify 'true_label' must be an integer")
        percent = payload.get("percent")
        if not isinstance(percent, int) or isinstance(percent, bool) or percent < 1:
            raise ConfigError("verify 'percent' must be an integer >= 1")
        index = payload.get("index", -1)
        if not isinstance(index, int) or isinstance(index, bool):
            raise ConfigError("verify 'index' must be an integer")
        return network, verifier, tuple(x), label, percent, index

    @staticmethod
    def _batch_parts(payload: dict) -> tuple[BatchSpec, tuple[int, int]]:
        manifest = payload.get("manifest")
        if not isinstance(manifest, dict):
            raise ConfigError("batch job needs a 'manifest' mapping")
        spec = BatchSpec.from_dict(manifest)
        shard = payload.get("shard", [1, 1])
        if (
            not isinstance(shard, list)
            or len(shard) != 2
            or not all(
                isinstance(v, int) and not isinstance(v, bool) for v in shard
            )
            or shard[1] < 1
            or not 1 <= shard[0] <= shard[1]
        ):
            raise ConfigError("batch 'shard' must be [i, N] with 1 <= i <= N")
        return spec, (shard[0] - 1, shard[1])

    @staticmethod
    def _single_job_spec(kind: str, payload: dict) -> JobSpec:
        section = payload.get("job")
        if not isinstance(section, dict):
            raise ConfigError(f"{kind} job needs a 'job' mapping (manifest job shape)")
        if "name" not in section:
            section = dict(section, name="adhoc")
        spec = JobSpec.from_dict(section)
        required = _ANALYSIS_OF[kind]
        if getattr(spec, required) is None:
            raise ConfigError(
                f"{kind} job must define the 'analyses.{required}' section"
            )
        return spec

    # -- results / events --------------------------------------------------------

    def _result(self, job) -> Response:
        if job.state == "done":
            return Response.json(
                {"id": job.id, "kind": job.kind, "state": job.state,
                 "result": job.result}
            )
        if job.state == "error":
            return Response.json(
                {"id": job.id, "kind": job.kind, "state": job.state,
                 "error": job.error},
                status=500,
            )
        if job.state == "cancelled":
            raise HttpError(409, f"job {job.id} was cancelled")
        raise HttpError(
            409,
            f"job {job.id} is still {job.state}; poll /v1/jobs/{job.id} "
            "or stream /v1/jobs/{id}/events",
        )

    async def _events(self, job):
        """NDJSON status snapshots until the job terminates."""
        last = -1
        while True:
            if job.version != last:
                last = job.version
                snapshot = job.status_payload()
                yield (json.dumps(snapshot, sort_keys=True) + "\n").encode("utf-8")
                if snapshot["state"] in ("done", "error", "cancelled"):
                    return
            await asyncio.sleep(EVENTS_POLL_S)

    def _stats_payload(self) -> dict:
        payload = {
            "uptime_s": self._uptime(),
            "workers": self.workers,
            "queue": {
                "pending": self.queue.pending,
                "max_pending": self.queue.max_pending,
                "jobs": self.queue.counts(),
            },
            "runners": self.runners.stats(),
        }
        if self.journal is not None:
            payload["journal"] = self.journal.stats_payload()
        return payload

    # -- execution (worker threads) ----------------------------------------------

    def execute(self, job) -> None:
        """Run one job to a terminal state; never raises (worker thread)."""
        try:
            if job.cancel_requested:
                raise JobCancelled(f"job {job.id} cancelled before start")
            if job.kind == "sleep":
                result = self._run_sleep(job)
            elif job.kind == "verify":
                result = self._run_verify(job)
            else:
                result = self._run_campaign(job)
        except JobCancelled:
            job.finish("cancelled")
        except ReproError as err:
            job.finish("error", error=str(err))
        except Exception as err:  # a worker must never take the daemon down
            job.finish("error", error=f"internal error: {err!r}")
        else:
            job.finish("done", result=result)
        finally:
            self.queue.note_finished(job)

    def _run_sleep(self, job) -> dict:
        deadline = time.monotonic() + float(job.payload.get("seconds", 0))
        while time.monotonic() < deadline:
            if job.cancel_requested:
                raise JobCancelled(f"job {job.id} cancelled")
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
        return {"slept_s": float(job.payload.get("seconds", 0))}

    def _run_verify(self, job) -> dict:
        network_spec, verifier, x, label, percent, index = self._verify_parts(
            job.payload
        )
        network = self._network_for(network_spec)
        job.advance({"phase": "verify", "total": 1, "done": 0})
        with self.runners.lease(network, verifier) as runner:
            result = runner.verify_at(x, label, percent, index=index)
            runner.flush()
        job.advance({"phase": "verify", "total": 1, "done": 1})
        return _jsonable(
            {
                "status": result.status.value,
                "witness": list(result.witness) if result.witness is not None else None,
                "predicted_label": result.predicted_label,
                "engine": result.engine,
                "percent": percent,
            }
        )

    def _run_campaign(self, job) -> dict:
        """tolerance/extraction/sensitivity/batch — all via the batch planner."""
        if job.kind == "batch":
            spec, (shard_index, shard_count) = self._batch_parts(job.payload)
        else:
            job_spec = self._single_job_spec(job.kind, job.payload)
            spec = BatchSpec(name=f"serve-{job.kind}", jobs=(job_spec,))
            shard_index, shard_count = 0, 1
        service = BatchService(spec)
        job.advance({"phase": "planning"})
        plan = service.plan()
        owned = [
            (planned, planned.shard_tasks(shard_index, shard_count))
            for planned in plan
        ]
        total = sum(len(tasks) for _, tasks in owned)
        done = 0
        jobs_out = []
        for planned_job, tasks in owned:
            if not tasks:
                continue
            outcomes: dict[str, object] = {}
            with self.runners.lease(
                planned_job.network,
                planned_job.spec.verifier,
                planned_job.data_digest,
            ) as runner:
                for planned in tasks:
                    if job.cancel_requested:
                        raise JobCancelled(f"job {job.id} cancelled")
                    value = runner.run_tasks([planned.task])[0]
                    outcomes[planned.identity] = _jsonable(value)
                    done += 1
                    job.advance(
                        {"phase": planned_job.name, "total": total, "done": done}
                    )
                # Checkpoint discipline mirrors the batch plane's ledger
                # writes: every finished job's warmth survives a crash.
                runner.flush()
            entry = {"job": planned_job.meta, "results": outcomes}
            if len(tasks) == len(planned_job.tasks):
                # The shard covers the whole job: fold the same per-job
                # summary the merge plane would compute.
                entry["summary"] = _jsonable(
                    _summarise_job(planned_job, outcomes, planned_job.meta)
                )
            jobs_out.append(entry)
        return {
            "batch": spec.name,
            "shard": [shard_index + 1, shard_count],
            "executed": done,
            "jobs": jobs_out,
        }

    def _network_for(self, spec: NetworkSpec):
        """Quantised network for a spec (cached; mirrors the planner)."""
        key = (spec.kind, spec.train_seed, spec.path)
        with self._net_mutex:
            cached = self._networks.get(key)
        if cached is not None:
            return cached
        if spec.kind == "case-study":
            data = load_leukemia_case_study()
            trained = train_paper_network(
                data.train.features,
                data.train.labels,
                TrainConfig(seed=spec.train_seed),
            )
            quantized = quantize_network(trained.network)
        else:
            quantized = quantize_network(load_network(spec.path))
        with self._net_mutex:
            return self._networks.setdefault(key, quantized)

    # -- shutdown ----------------------------------------------------------------

    def shutdown(self) -> None:
        self.runners.close_all()
        if self.journal is not None:
            self.journal.close()
