"""A minimal HTTP/1.1 layer over asyncio streams — stdlib only.

The daemon needs exactly four HTTP behaviours: parse a request with an
optional JSON body, send a JSON response, send an NDJSON progress
stream, and reject malformed or oversized input loudly.  A framework
would buy nothing but a runtime dependency, so the protocol surface the
daemon actually uses lives here, small enough to audit:

- :func:`read_request` — request line + headers + ``Content-Length``
  body, with hard limits on line length, header count and body size
  (every violation is a 4xx, never an unbounded buffer);
- :class:`Response` — a JSON (or plain-text) response with
  ``Connection: close`` framing; one request per connection keeps the
  state machine trivial and is plenty for a job-queue API whose work
  units are verification campaigns, not microsecond echoes;
- :class:`StreamResponse` — a close-delimited streaming body (NDJSON
  progress events); chunk flushing and client-disconnect handling stay
  in the connection handler.

:class:`HttpError` carries a status code and a safe, human-readable
message; the connection handler turns it into a JSON error body.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard limits, enforced before any allocation proportional to input.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Reason phrases for the status codes the daemon emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level failure that maps to one HTTP error response."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # lower-cased names
    body: bytes = b""

    def json(self):
        """The body parsed as JSON; raises a 400 :class:`HttpError` otherwise."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON document")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            raise HttpError(400, f"request body is not valid JSON: {err}") from None


@dataclass
class Response:
    """A complete (non-streaming) response; :meth:`encode` frames it."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls, payload, status: int = 200, headers: dict | None = None
    ) -> "Response":
        blob = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8") + b"\n"
        return cls(status=status, body=blob, headers=dict(headers or {}))

    @classmethod
    def error(cls, status: int, message: str, headers: dict | None = None) -> "Response":
        return cls.json({"error": message, "status": status}, status, headers)

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in self.headers.items())
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + self.body


@dataclass
class StreamResponse:
    """A close-delimited streaming body (the progress-events endpoint).

    ``chunks`` yields ready-to-send byte chunks; the connection handler
    writes the head, then drains chunk by chunk so a slow client applies
    backpressure to the stream, not to the daemon's memory.
    """

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "application/x-ndjson"

    def encode_head(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            "Connection: close",
        ]
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")


async def _read_line(reader, limit: int, what: str) -> bytes:
    """One CRLF-terminated line within ``limit`` bytes, or a 400."""
    try:
        line = await reader.readline()
    except ValueError:  # StreamReader limit overrun
        raise HttpError(400, f"{what} exceeds {limit} bytes") from None
    if len(line) > limit:
        raise HttpError(400, f"{what} exceeds {limit} bytes")
    return line


async def read_request(reader) -> Request | None:
    """Parse one request from ``reader``; ``None`` on a clean EOF.

    Raises :class:`HttpError` for malformed or oversized input and
    :class:`asyncio.IncompleteReadError` when the client disconnects
    mid-request — mid-request-line, mid-headers or mid-body (the caller
    treats all three as a silent hang-up).
    """
    line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    if not line:
        return None  # connection closed before a request
    if not line.endswith(b"\n"):
        # EOF mid-request-line: a hang-up, not a parseable request.
        raise asyncio.IncompleteReadError(partial=line, expected=None)
    try:
        text = line.decode("latin-1").strip()
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise HttpError(400, "undecodable request line") from None
    parts = text.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {text[:80]!r}")
    method, target = parts[0].upper(), parts[1]

    headers: dict[str, str] = {}
    while True:
        raw = await _read_line(reader, MAX_HEADER_LINE, "header line")
        if raw in (b"\r\n", b"\n"):
            break
        if not raw.endswith(b"\n"):
            # EOF before the blank line that ends the header block
            # (``b""``, or a torn final header).  This is a client
            # hang-up, not a complete request with truncated headers —
            # routing it would act on whatever headers happened to
            # arrive before the disconnect.
            raise asyncio.IncompleteReadError(partial=raw, expected=None)
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, f"more than {MAX_HEADER_COUNT} headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
            if size < 0:
                raise ValueError
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length!r}") from None
        if size > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(size)
    elif headers.get("transfer-encoding"):
        raise HttpError(411, "chunked request bodies are not supported; "
                             "send a Content-Length")
    return Request(
        method=method,
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


#: Signature of a route handler: Request -> Response | StreamResponse.
Handler = Callable[[Request], "Response | StreamResponse"]
