"""Verification-as-a-service plane: ``fannet serve`` and its client.

The batch plane (:mod:`repro.service`) made campaigns shardable but
still process-per-invocation: every ``fannet batch run`` pays network
training and cache warm-up from scratch, and two concurrent invocations
on the same context cannot share engine-proved verdicts.  This package
turns the runtime into a long-lived daemon so concurrent clients
multiplex onto shared warm per-context caches:

- :mod:`repro.serve.http` — a minimal, auditable stdlib HTTP/1.1 layer
  (strict limits, JSON responses, NDJSON streaming);
- :mod:`repro.serve.jobs` — job lifecycle + the admission-controlled
  queue (bounded pending set; overload is shed with 429/``Retry-After``
  at the door, O(1));
- :mod:`repro.serve.journal` — the write-ahead job journal behind
  ``--journal-dir``: every transition appended as canonical NDJSON and
  replayed on boot, so restarts re-admit queued/running jobs and keep
  serving finished results instead of dropping work;
- :mod:`repro.serve.runners` — the per-runtime-context
  :class:`~repro.runtime.QueryRunner` pool (same-context jobs
  serialise on a lease lock; distinct contexts run in parallel);
- :mod:`repro.serve.app` — routes, eager submission validation, and
  the executors that run jobs through the batch planner (so HTTP
  results are bit-identical to the CLI path);
- :mod:`repro.serve.daemon` — server lifecycle (event loop owns
  sockets and queue state; a worker thread pool owns execution);
- :mod:`repro.serve.client` — :class:`ServeClient` and the
  ``fannet batch run --server`` mode, which writes shard files and
  ledgers byte-identical to a local run.

CLI: ``fannet serve --host --port --workers --max-pending
[--journal-dir DIR]`` to boot; ``fannet batch run --server URL`` to
execute a campaign through a running daemon.
"""

from .app import JOB_KINDS, ServeApp
from .client import ServeClient, ServeClientError, run_batch_shard_via_server
from .daemon import FannetServer, ServeConfig, run, running_server
from .jobs import DONE_RETENTION, Job, JobCancelled, JobQueue, QueueFullError
from .journal import JOURNAL_FILE_NAME, JobJournal, ReplayedJob
from .runners import RunnerPool

__all__ = [
    "DONE_RETENTION",
    "FannetServer",
    "JOB_KINDS",
    "JOURNAL_FILE_NAME",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JobQueue",
    "QueueFullError",
    "ReplayedJob",
    "RunnerPool",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "run",
    "run_batch_shard_via_server",
    "running_server",
]
