"""Write-ahead job journal: the serve plane's crash-safety layer.

``fannet serve`` without a journal forgets every queued and running job
on restart — a deploy, an OOM kill or a crash silently drops client
work.  With ``--journal-dir`` the daemon appends one canonical-JSON
NDJSON record per job transition to a single journal file::

    serve-jobs.journal.ndjson
    {"format":1,"type":"meta"}
    {"id":"j000001","kind":"sleep","payload":{...},"submitted_at":...,"type":"submitted"}
    {"id":"j000001","type":"running"}
    {"id":"j000001","progress":{"done":1,...},"type":"progress"}
    {"digest":"<sha-256>","id":"j000001","kind":"sleep","result":{...},
     "state":"done","type":"finished","version":4}

and replays it on boot: jobs with no terminal record are re-admitted in
submission order (jobs that were *running* are simply re-executed — the
per-context runner pool's warm :class:`~repro.runtime.store.CacheStore`
and the batch plane's ledger checkpoints make the redo cheap and
byte-identical), and jobs with a terminal record keep answering
``GET /v1/jobs/{id}`` and ``/result`` after the restart instead of
404ing.  Done results carry the SHA-256 of their canonical JSON
rendering (the ledger's :func:`~repro.service.ledger.outcome_digest`),
so a torn or bit-rotted result is detected and dropped at replay, never
served.

Durability discipline — fsync-batched, like the cache store's flush
cadence: records that change what a restart must do (``submitted``,
``finished``) are fsynced before the daemon acknowledges them (a 202
implies the job survives a crash); high-frequency ``running``/
``progress`` checkpoints are buffered-flushed only, because losing one
merely replays the job as queued — the redo the journal performs
anyway.

Corruption tolerance mirrors :meth:`CampaignLedger.load
<repro.service.ledger.CampaignLedger.load>`: any unreadable tail
(truncated record, garbage bytes, a digest mismatch) degrades to a
*warned partial replay* — everything before the damage is trusted, the
damaged remainder is dropped, the original file is preserved as
``*.bad`` for post-mortems, and the daemon boots.  A journal must never
convert a crash into a second crash.

Compaction: the journal rewrites itself (atomically) to a snapshot —
live jobs' ``submitted`` records plus the retained terminal records —
on every boot and every :data:`COMPACT_EVERY` appends, so the file and
the replay cost stay proportional to live + retained jobs, not to the
daemon's lifetime job count.  Progress history is deliberately dropped
by compaction; it only ever described executions that either finished
(superseded by the terminal record) or will re-run.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import json
import os
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..ioutils import atomic_write_bytes
from ..service.ledger import outcome_digest

#: Version stamp of the journal file format.
JOURNAL_FORMAT_VERSION = 1

#: The journal file's name under ``--journal-dir``.
JOURNAL_FILE_NAME = "serve-jobs.journal.ndjson"

#: Terminal records retained across compactions — the window in which a
#: restarted daemon (or a slow client whose job was FIFO-evicted from
#: the in-memory registry) can still fetch a result.  Deliberately much
#: wider than the registry's ``DONE_RETENTION``.
TERMINAL_RETENTION = 4096

#: Appended records between automatic compactions.
COMPACT_EVERY = 8192

#: Job ids are ``j<serial>``; replay continues the serial past the max.
_ID_RE = re.compile(r"^j(\d+)$")


def _canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


@dataclass
class ReplayedJob:
    """One non-terminal journal job a booting daemon must re-admit."""

    id: str
    kind: str
    payload: dict
    submitted_at: float
    #: ``queued`` or ``running`` at crash time; both re-execute, the
    #: distinction only feeds the boot report.
    state: str = "queued"


@dataclass
class _LiveEntry:
    record: dict
    state: str = "queued"


class JobJournal:
    """Append/replay/compact the NDJSON job journal (thread-safe).

    Construction replays any existing journal (collect ``warnings``
    rather than raising), then compacts and reopens for append.  All
    ``record_*`` methods are safe from the event-loop thread and worker
    threads alike.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        terminal_retention: int = TERMINAL_RETENTION,
        compact_every: int = COMPACT_EVERY,
    ):
        if terminal_retention < 1:
            raise ValueError("terminal_retention must be >= 1")
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILE_NAME
        self.terminal_retention = terminal_retention
        self.compact_every = compact_every
        self.warnings: list[str] = []
        self.max_serial = 0
        self.compactions = 0
        self._mutex = threading.Lock()
        self._live: OrderedDict[str, _LiveEntry] = OrderedDict()
        self._terminal: OrderedDict[str, dict] = OrderedDict()
        self._fh = None
        self._appended = 0
        #: During daemon drain, shutdown-initiated cancellations must
        #: *not* journal a terminal state: the whole point of the
        #: journal is that those jobs re-run after the restart.
        self._suppress_cancelled = False
        self._replay_file()
        self._compact_locked()

    # -- replay ------------------------------------------------------------------

    def _warn(self, message: str) -> None:
        self.warnings.append(message)

    def _note_serial(self, job_id: str) -> None:
        match = _ID_RE.match(job_id)
        if match:
            self.max_serial = max(self.max_serial, int(match.group(1)))

    def _replay_file(self) -> None:
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return
        except OSError as err:
            self._warn(f"journal {self.path} unreadable ({err}); starting empty")
            return
        lines = blob.split(b"\n")
        damaged_at: int | None = None
        for lineno, raw in enumerate(lines, start=1):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                damaged_at = lineno
                break
            if not isinstance(record, dict):
                damaged_at = lineno
                break
            if lineno == 1:
                if (
                    record.get("type") != "meta"
                    or record.get("format") != JOURNAL_FORMAT_VERSION
                ):
                    self._warn(
                        f"journal {self.path} has an unsupported header "
                        f"{record!r}; ignoring the file"
                    )
                    self._preserve_bad()
                    return
                continue
            self._apply(record, lineno)
        if damaged_at is not None:
            dropped = sum(1 for raw in lines[damaged_at:] if raw.strip())
            self._warn(
                f"journal {self.path} is damaged at line {damaged_at}; "
                f"replayed the {len(self._live)} live / {len(self._terminal)} "
                f"finished job(s) before it and dropped {dropped} later "
                "record(s) (original preserved as *.bad)"
            )
            self._preserve_bad()

    def _apply(self, record: dict, lineno: int) -> None:
        """Fold one parsed record into the live/terminal maps."""
        kind = record.get("type")
        job_id = record.get("id")
        if not isinstance(job_id, str) or not job_id:
            self._warn(f"journal line {lineno}: record without a job id; skipped")
            return
        if kind == "submitted":
            if not isinstance(record.get("payload"), dict) or not isinstance(
                record.get("kind"), str
            ):
                self._warn(
                    f"journal line {lineno}: malformed submitted record "
                    f"for {job_id}; skipped"
                )
                return
            self._note_serial(job_id)
            self._live[job_id] = _LiveEntry(record=record)
        elif kind == "running":
            entry = self._live.get(job_id)
            if entry is not None:
                entry.state = "running"
        elif kind == "progress":
            pass  # cosmetic between checkpoints; replay re-executes anyway
        elif kind == "finished":
            state = record.get("state")
            if state not in ("done", "error", "cancelled"):
                self._warn(
                    f"journal line {lineno}: finished record for {job_id} "
                    f"with bad state {state!r}; skipped"
                )
                return
            if state == "done" and record.get("digest") != outcome_digest(
                record.get("result")
            ):
                self._warn(
                    f"journal line {lineno}: result digest mismatch for "
                    f"{job_id}; dropping its record (torn write or bit rot)"
                )
                self._live.pop(job_id, None)
                return
            self._note_serial(job_id)
            self._live.pop(job_id, None)
            self._terminal[job_id] = record
            self._terminal.move_to_end(job_id)
        else:
            self._warn(
                f"journal line {lineno}: unknown record type {kind!r}; skipped"
            )
        while len(self._terminal) > self.terminal_retention:
            self._terminal.popitem(last=False)

    def _preserve_bad(self) -> None:
        """Keep the damaged original next to the journal for post-mortems."""
        try:
            os.replace(self.path, self.path.with_name(self.path.name + ".bad"))
        except OSError:
            pass  # evidence preservation is best-effort

    def replay_jobs(self) -> list[ReplayedJob]:
        """Non-terminal jobs to re-admit, in submission (serial) order."""
        out = [
            ReplayedJob(
                id=job_id,
                kind=entry.record["kind"],
                payload=entry.record["payload"],
                submitted_at=float(entry.record.get("submitted_at", 0.0)),
                state=entry.state,
            )
            for job_id, entry in self._live.items()
        ]
        out.sort(key=lambda job: (_ID_RE.match(job.id) is None, job.id))
        return out

    def terminal_record(self, job_id: str) -> dict | None:
        """The retained terminal record for ``job_id``, if any."""
        with self._mutex:
            return self._terminal.get(job_id)

    # -- recording ---------------------------------------------------------------

    def record_submitted(self, job) -> None:
        record = {
            "type": "submitted",
            "id": job.id,
            "kind": job.kind,
            "payload": job.payload,
            "submitted_at": job.submitted_at,
        }
        with self._mutex:
            self._live[job.id] = _LiveEntry(record=record)
            self._note_serial(job.id)
            self._append_locked(record, sync=True)

    def record_running(self, job_id: str) -> None:
        with self._mutex:
            entry = self._live.get(job_id)
            if entry is not None:
                entry.state = "running"
            self._append_locked({"type": "running", "id": job_id}, sync=False)

    def record_progress(self, job_id: str, progress: dict) -> None:
        with self._mutex:
            self._append_locked(
                {"type": "progress", "id": job_id, "progress": dict(progress)},
                sync=False,
            )

    def record_terminal(self, job) -> None:
        """Journal a job's terminal state (fsynced before returning).

        Shutdown-initiated cancellations are suppressed after
        :meth:`begin_shutdown` — the journal keeps believing those jobs
        are queued/running, which is exactly what makes the next boot
        re-admit them.
        """
        if self._suppress_cancelled and job.state == "cancelled":
            return
        record = {
            "type": "finished",
            "id": job.id,
            "kind": job.kind,
            "state": job.state,
            "version": job.version,
        }
        if job.state == "done":
            record["result"] = job.result
            record["digest"] = outcome_digest(job.result)
        if job.error is not None:
            record["error"] = job.error
        with self._mutex:
            self._live.pop(job.id, None)
            self._terminal[job.id] = record
            self._terminal.move_to_end(job.id)
            while len(self._terminal) > self.terminal_retention:
                self._terminal.popitem(last=False)
            self._append_locked(record, sync=True)

    def begin_shutdown(self) -> None:
        """Stop journaling cancellations: the daemon is draining, not clients."""
        self._suppress_cancelled = True

    def _append_locked(self, record: dict, sync: bool) -> None:
        if self._fh is None:
            return  # closed: a straggler worker finishing during teardown
        try:
            self._fh.write(_canonical(record))
            self._fh.flush()
            if sync:
                os.fsync(self._fh.fileno())
        except OSError as err:
            self._warn(f"journal append failed ({err}); record dropped")
            return
        self._appended += 1
        if self._appended >= self.compact_every:
            self._compact_locked()

    # -- compaction / lifecycle --------------------------------------------------

    def _snapshot_blob(self) -> bytes:
        parts = [_canonical({"type": "meta", "format": JOURNAL_FORMAT_VERSION})]
        for entry in self._live.values():
            parts.append(_canonical(entry.record))
            if entry.state == "running":
                parts.append(
                    _canonical({"type": "running", "id": entry.record["id"]})
                )
        parts.extend(_canonical(record) for record in self._terminal.values())
        return b"".join(parts)

    def _compact_locked(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        atomic_write_bytes(self.path, self._snapshot_blob())
        self._fh = open(self.path, "ab")
        self._appended = 0
        self.compactions += 1

    def compact(self) -> None:
        """Rewrite the journal to its minimal snapshot (atomic)."""
        with self._mutex:
            self._compact_locked()

    def flush(self) -> None:
        with self._mutex:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Final compaction + close (daemon shutdown)."""
        with self._mutex:
            self._compact_locked()
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None

    # -- introspection -----------------------------------------------------------

    def stats_payload(self) -> dict:
        with self._mutex:
            return {
                "path": str(self.path),
                "live": len(self._live),
                "terminal": len(self._terminal),
                "appended_since_compact": self._appended,
                "compactions": self.compactions,
                "warnings": len(self.warnings),
            }


__all__ = [
    "COMPACT_EVERY",
    "JOURNAL_FILE_NAME",
    "JOURNAL_FORMAT_VERSION",
    "TERMINAL_RETENTION",
    "JobJournal",
    "ReplayedJob",
]
