"""Job lifecycle and the admission-controlled queue of the daemon.

A *job* is one client-submitted unit of verification work (a single
query, a tolerance ladder, a whole batch shard) moving through::

    queued -> running -> done | error | cancelled

:class:`JobQueue` is the daemon's admission-control point.  The pending
(queued, not yet running) set is bounded by ``max_pending``: a submit
past the bound raises :class:`QueueFullError`, which the HTTP layer
turns into ``429 Too Many Requests`` with a ``Retry-After`` hint — load
is shed at the door with O(1) state, instead of accepted into an
unbounded queue that converts overload into memory growth and
unbounded latency.  Cancelling a queued job frees its admission slot
immediately (the stale queue entry is skipped when a worker reaches
it).  Completed jobs — including cancelled-while-queued ones — are
retained (bounded, FIFO-evicted) so clients can fetch results after the
fact; with a :class:`~repro.serve.journal.JobJournal` attached, every
transition is also journaled so a daemon restart resumes queued/running
jobs and keeps serving finished ones.

Threading model: submissions, cancellations and lookups happen on the
event-loop thread; a running job's ``progress``/``state``/``result``
fields are written by exactly one worker thread.  Field writes are
single reference assignments (atomic under the GIL) and every visible
change bumps ``version`` *last*, so a poller that sees a new version
sees the fields that version describes.  Registry *structure* (the
``jobs`` dict) is only ever mutated on the event-loop thread:
worker-side completions route their retention eviction through
``loop.call_soon_threadsafe``, so the endpoints that iterate the
registry (``summaries``/``counts``) can never see it change size
mid-iteration.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from ..errors import ReproError

#: States a job can be in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "error", "cancelled")
TERMINAL_STATES = frozenset({"done", "error", "cancelled"})

#: Completed jobs kept for late result fetches before FIFO eviction.
DONE_RETENTION = 256


class QueueFullError(ReproError):
    """Admission refused: the pending queue is at capacity.

    ``retry_after_s`` is the client hint for the ``Retry-After`` header —
    a coarse estimate, not a promise.
    """

    def __init__(self, pending: int, retry_after_s: int = 1):
        super().__init__(
            f"job queue is full ({pending} pending); retry after "
            f"{retry_after_s}s or lower the submission rate"
        )
        self.pending = pending
        self.retry_after_s = retry_after_s


class JobCancelled(ReproError):
    """Raised inside a worker when a job observes its cancellation flag."""


@dataclass
class Job:
    """One unit of client-submitted work and its observable lifecycle."""

    id: str
    kind: str
    payload: dict
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    progress: dict = field(default_factory=dict)
    result: object = None
    error: str | None = None
    #: Monotonic change counter; bumped after every visible mutation.
    version: int = 0
    #: Cooperative cancellation; checked by the worker between tasks.
    cancel_requested: bool = False
    #: Optional :class:`~repro.serve.journal.JobJournal` receiving
    #: progress checkpoints (set by the queue, never serialised).
    journal: object = field(default=None, repr=False, compare=False)

    def touch(self) -> None:
        self.version += 1

    def advance(self, progress: dict) -> None:
        """Publish a progress snapshot (worker thread)."""
        self.progress = dict(progress)
        self.touch()
        if self.journal is not None:
            self.journal.record_progress(self.id, self.progress)

    def finish(self, state: str, result=None, error: str | None = None) -> None:
        """Enter a terminal state (worker thread); result/error first."""
        self.result = result
        self.error = error
        self.state = state
        self.touch()

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_payload(self) -> dict:
        """The JSON the status/list/events endpoints expose."""
        payload = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "progress": dict(self.progress),
            "version": self.version,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobQueue:
    """Bounded pending queue plus the all-jobs registry."""

    def __init__(
        self,
        max_pending: int,
        done_retention: int = DONE_RETENTION,
        journal=None,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if done_retention < 1:
            raise ValueError("done_retention must be >= 1")
        self.max_pending = max_pending
        self.done_retention = done_retention
        self.journal = journal
        self.jobs: dict[str, Job] = {}  # lint: loop-owned
        self._pending: asyncio.Queue[str] = asyncio.Queue()
        #: Queued-and-live count; unlike ``_pending.qsize()`` it drops
        #: the moment a queued job is cancelled, so cancellation
        #: restores admission capacity instead of holding a slot until
        #: a worker drains the stale entry.
        self._pending_live = 0  # lint: loop-owned
        self._ids = itertools.count(1)
        self._finished_order: list[str] = []  # lint: loop-owned
        self._loop: asyncio.AbstractEventLoop | None = None

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Name the event loop that owns registry structure (daemon boot)."""
        self._loop = loop

    # -- admission ---------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._pending_live

    def submit(self, kind: str, payload: dict) -> Job:  # lint: loop-owned
        """Admit one job or shed it with :class:`QueueFullError`."""
        if self._pending_live >= self.max_pending:
            raise QueueFullError(pending=self._pending_live)
        job = Job(
            id=f"j{next(self._ids):06d}",
            kind=kind,
            payload=payload,
            journal=self.journal,
        )
        if self.journal is not None:
            # Fsynced before the 202 leaves the daemon: an acknowledged
            # submission survives a crash.
            self.journal.record_submitted(job)
        self.jobs[job.id] = job
        self._pending_live += 1
        self._pending.put_nowait(job.id)
        return job

    def restore(self, replayed) -> Job:  # lint: loop-owned
        """Re-admit one journal-replayed job (daemon boot, loop thread).

        Bypasses the ``max_pending`` check — these jobs were admitted
        (and acknowledged) by a previous daemon life; shedding them now
        would drop acknowledged work, the exact failure the journal
        exists to prevent.  The journal already holds their ``submitted``
        records, so nothing is re-journaled here.
        """
        job = Job(
            id=replayed.id,
            kind=replayed.kind,
            payload=replayed.payload,
            submitted_at=replayed.submitted_at,
            journal=self.journal,
        )
        self.jobs[job.id] = job
        self._pending_live += 1
        self._pending.put_nowait(job.id)
        return job

    def resume_serials(self, max_serial: int) -> None:
        """Continue job ids past a replayed journal's highest serial."""
        self._ids = itertools.count(max_serial + 1)

    async def next_job(self) -> Job:
        """Block until a runnable job is available; marks it running."""
        while True:
            job_id = await self._pending.get()
            job = self.jobs.get(job_id)
            if job is None or job.state != "queued":
                # Cancelled (or evicted) while waiting; its admission
                # slot was already released at cancellation time.
                continue
            self._pending_live -= 1
            job.state = "running"
            job.touch()
            if self.journal is not None:
                self.journal.record_running(job.id)
            return job

    # -- bookkeeping -------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def cancel(self, job_id: str) -> Job | None:  # lint: loop-owned
        """Request cancellation; queued jobs terminate immediately."""
        job = self.jobs.get(job_id)
        if job is None:
            return None
        job.cancel_requested = True
        if job.state == "queued":
            # Terminal straight from the queue: release the admission
            # slot now (the stale ``_pending`` entry is skipped later)
            # and run the same retention path worker completions take,
            # so cancelled-queued jobs are FIFO-evicted too.
            self._pending_live -= 1
            job.finish("cancelled")
            self.note_finished(job)
        else:
            job.touch()
        return job

    def note_finished(self, job: Job) -> None:
        """Retention bookkeeping after ``job`` reached a terminal state.

        Called from worker threads (normal completions) and the loop
        thread (cancelled-while-queued).  The journal append is
        thread-safe and happens inline; the registry eviction always
        runs on the event-loop thread so ``summaries``/``counts`` never
        race a ``dict`` resize.  Keeps at most ``done_retention``
        terminal jobs — a long-lived daemon must not grow its registry
        without bound as millions of jobs pass through.
        """
        if self.journal is not None:
            self.journal.record_terminal(job)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._evict_finished, job.id)
                return
            except RuntimeError:
                pass  # loop tearing down: evict inline, nothing races it
        self._evict_finished(job.id)  # lint: ok FAN004 (loop closed or absent: nothing left to race)

    def _evict_finished(self, job_id: str) -> None:  # lint: loop-owned
        self._finished_order.append(job_id)
        while len(self._finished_order) > self.done_retention:
            evicted = self._finished_order.pop(0)
            self.jobs.pop(evicted, None)

    def summaries(self) -> list[dict]:
        """Status payloads of every registered job, oldest first."""
        return [job.status_payload() for job in self.jobs.values()]

    def counts(self) -> dict:
        out = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            out[job.state] += 1
        return out
