"""Command-line interface: ``fannet <subcommand>`` (or ``python -m repro``).

Subcommands mirror the paper's workflow:

- ``run``        — full case study (train → P1 → P2 → P3 → analyses)
- ``train``      — train the case-study network and save it as JSON
- ``translate``  — emit the SMV model for one test input
- ``check``      — model-check an ``.smv`` file's INVARSPECs
- ``statespace`` — Fig.-3 state/transition counts
- ``tolerance``  — noise-tolerance search only
- ``batch``      — multi-network campaigns: ``plan`` / ``run`` / ``merge``
  a sharded batch manifest (see :mod:`repro.service`)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .analysis import fig4_bias_series, fig4_sensitivity_series, fig4_tolerance_series
from .config import FannetConfig, NoiseConfig, RuntimeConfig, TrainConfig
from .data import load_leukemia_case_study
from .errors import ReproError
from .nn import save_network, train_paper_network


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan per-input analysis tasks over this many worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the query cache (every query reaches a solver)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist the query cache under DIR (one file per network/config "
        "fingerprint), so repeated runs warm-start and issue zero solver "
        "calls for already-proved verdicts",
    )
    parser.add_argument(
        "--no-persist",
        action="store_true",
        help="with --cache-dir: neither read nor write the disk cache this run",
    )
    parser.add_argument(
        "--frontier",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="resolve whole probe ladders/grids through the frontier-batched "
        "bulk prepass before any complete engine runs (--no-frontier falls "
        "back to one query at a time; reports are bit-identical either way)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=4096,
        metavar="ROWS",
        help="rows per concatenated bulk network evaluation in the frontier "
        "prepass (a memory knob; results do not depend on it)",
    )


def _runtime_config(args) -> RuntimeConfig:
    return RuntimeConfig(
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
        persist=not args.no_persist,
        frontier=args.frontier,
        batch_size=args.batch_size,
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fannet",
        description="FANNet: formal analysis of NN noise tolerance, "
        "training bias and input sensitivity (DATE 2020 reproduction)",
    )
    sub = parser.add_subparsers()

    run = sub.add_parser("run", help="full case-study pipeline")
    run.add_argument("--ceiling", type=int, default=60, help="tolerance search ceiling")
    run.add_argument("--extract-at", type=int, default=None, help="P3 extraction range")
    run.add_argument("--probe", action="store_true", help="single-node sensitivity probes")
    run.add_argument("--json", type=Path, default=None, help="write the report as JSON")
    _add_runtime_flags(run)
    run.set_defaults(handler=_cmd_run)

    train = sub.add_parser("train", help="train the case-study network")
    train.add_argument("output", type=Path, help="where to save the network JSON")
    train.add_argument("--seed", type=int, default=7)
    train.set_defaults(handler=_cmd_train)

    translate = sub.add_parser("translate", help="emit the SMV model for a test input")
    translate.add_argument("--input-index", type=int, default=0)
    translate.add_argument("--noise", type=int, default=1, help="noise range ±P")
    translate.add_argument("--output", type=Path, default=None)
    translate.set_defaults(handler=_cmd_translate)

    check = sub.add_parser("check", help="model-check an .smv file")
    check.add_argument("model", type=Path)
    check.add_argument(
        "--engine", choices=("explicit", "bdd", "bmc", "induction"), default="explicit"
    )
    check.add_argument("--bound", type=int, default=20, help="BMC/induction bound")
    check.set_defaults(handler=_cmd_check)

    statespace = sub.add_parser("statespace", help="Fig.-3 state-space counts")
    statespace.add_argument("--noise", type=int, default=1)
    statespace.add_argument("--input-index", type=int, default=0)
    statespace.set_defaults(handler=_cmd_statespace)

    tolerance = sub.add_parser("tolerance", help="noise-tolerance search")
    tolerance.add_argument("--ceiling", type=int, default=60)
    tolerance.add_argument(
        "--schedule", choices=("binary", "paper"), default="binary"
    )
    _add_runtime_flags(tolerance)
    tolerance.set_defaults(handler=_cmd_tolerance)

    batch = sub.add_parser(
        "batch",
        help="multi-network batch campaigns (shardable; see the README)",
    )
    batch_sub = batch.add_subparsers()

    batch_plan = batch_sub.add_parser(
        "plan", help="show the task list and its shard assignment"
    )
    batch_plan.add_argument("manifest", type=Path, help="batch manifest (JSON/TOML)")
    batch_plan.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="preview the task partition over N shards",
    )
    batch_plan.set_defaults(handler=_cmd_batch_plan)

    batch_run = batch_sub.add_parser(
        "run", help="execute one shard of the batch and write its result files"
    )
    batch_run.add_argument("manifest", type=Path, help="batch manifest (JSON/TOML)")
    batch_run.add_argument(
        "--out", type=Path, required=True, metavar="DIR",
        help="directory for the per-job shard result files",
    )
    batch_run.add_argument(
        "--shard", default="1/1", metavar="I/N",
        help="this invocation's shard, 1-based (e.g. 2/4); default 1/1 "
        "runs everything — identical results either way",
    )
    batch_run.set_defaults(handler=_cmd_batch_run)

    batch_merge = batch_sub.add_parser(
        "merge", help="fold shard result files into one aggregate report"
    )
    batch_merge.add_argument("manifest", type=Path, help="batch manifest (JSON/TOML)")
    batch_merge.add_argument("out", type=Path, help="directory holding the shard files")
    batch_merge.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="where to write the merged report (default: DIR/merged.json)",
    )
    batch_merge.set_defaults(handler=_cmd_batch_merge)

    return parser


def _parse_shard(text: str) -> tuple[int, int]:
    """``"i/N"`` (1-based) → 0-based ``(index, count)``; loud on nonsense."""
    from .errors import ConfigError

    parts = text.split("/")
    try:
        index, count = (int(part) for part in parts)
    except ValueError:
        raise ConfigError(
            f"--shard takes the form i/N (e.g. 2/4), got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ConfigError(
            f"--shard {text!r} is out of range: need 1 <= i <= N"
        )
    return index - 1, count


def _print_store(runner) -> None:
    """One-line persistence summary when a disk cache store is active."""
    store = runner.store
    if store is None:
        return
    print(
        f"cache store: {store.loaded_entries} entries loaded, "
        f"{store.saved_entries} saved under {store.directory}"
    )


def _trained_case_study():
    from .nn import quantize_network

    case_study = load_leukemia_case_study()
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    return case_study, result.network, quantize_network(result.network)


def _cmd_run(args) -> int:
    from .core import run_case_study

    fannet, report = run_case_study(
        config=FannetConfig(runtime=_runtime_config(args)),
        search_ceiling=args.ceiling,
        extraction_percent=args.extract_at,
        probe_sensitivity=args.probe,
    )
    fannet.close()  # flush the disk cache store before reporting
    print(report.summary())
    print(fannet.runner.stats.describe())
    print(fannet.runner.cache.stats.describe())
    print(fannet.engine_utilisation())
    _print_store(fannet.runner)
    if args.json is not None:
        payload = {
            "tolerance": fig4_tolerance_series(report.tolerance),
            "bias": fig4_bias_series(report.bias),
            "sensitivity": fig4_sensitivity_series(report.sensitivity),
            "accuracy": {
                "train": report.train_accuracy,
                "test": report.test_accuracy,
            },
        }
        args.json.write_text(json.dumps(payload, indent=2))
        print(f"\nJSON report written to {args.json}")
    return 0


def _cmd_train(args) -> int:
    case_study = load_leukemia_case_study()
    result = train_paper_network(
        case_study.train.features,
        case_study.train.labels,
        TrainConfig(seed=args.seed),
    )
    save_network(result.network, args.output)
    test_accuracy = float(
        (result.network.predict(np.asarray(case_study.test.features, dtype=float))
         == case_study.test.labels).mean()
    )
    print(
        f"trained: {result.train_accuracy:.2%} train, {test_accuracy:.2%} test; "
        f"saved to {args.output}"
    )
    return 0


def _cmd_translate(args) -> int:
    from .core import network_noise_module
    from .smv import print_module

    case_study, _, quantized = _trained_case_study()
    x = np.asarray(case_study.test.features[args.input_index])
    label = int(case_study.test.labels[args.input_index])
    module, _ = network_noise_module(
        quantized, x, label, NoiseConfig(max_percent=args.noise)
    )
    text = print_module(module)
    if args.output is not None:
        args.output.write_text(text)
        print(f"SMV model written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_check(args) -> int:
    from .mc import BddChecker, BmcChecker, ExplicitChecker, KInduction
    from .smv import parse_module

    module = parse_module(args.model.read_text())
    engines = {
        "explicit": lambda: ExplicitChecker(),
        "bdd": lambda: BddChecker(),
        "bmc": lambda: BmcChecker(max_bound=args.bound),
        "induction": lambda: KInduction(max_k=args.bound),
    }
    engine = engines[args.engine]()
    if not module.invarspecs:
        print("no INVARSPEC properties in the model")
        return 1
    failures = 0
    for spec in module.invarspecs:
        result = engine.check_invariant(module, spec)
        print(f"[{result.verdict.value.upper()}] {result.property_text}")
        if result.violated and result.counterexample is not None:
            print(result.counterexample.format())
            failures += 1
    return 1 if failures else 0


def _cmd_statespace(args) -> int:
    from .core.translate import dataset_fsm_module, noise_model_state_counts
    from .fsm import TransitionSystem, count_states_and_transitions

    case_study, _, quantized = _trained_case_study()
    x = np.asarray(case_study.test.features[args.input_index])
    label = int(case_study.test.labels[args.input_index])

    no_noise = dataset_fsm_module(quantized, case_study.test.features)
    base = count_states_and_transitions(TransitionSystem(no_noise))
    print(f"no noise      : {base[0]} states, {base[1]} transitions")

    noisy = noise_model_state_counts(
        quantized, x, label, NoiseConfig(min_percent=0, max_percent=args.noise)
    )
    print(f"noise [0,{args.noise}]%  : {noisy[0]} states, {noisy[1]} transitions")
    return 0


def _cmd_tolerance(args) -> int:
    from .core import NoiseToleranceAnalysis

    case_study, _, quantized = _trained_case_study()
    analysis = NoiseToleranceAnalysis(
        quantized,
        search_ceiling=args.ceiling,
        schedule=args.schedule,
        runtime=_runtime_config(args),
    )
    report = analysis.analyze(case_study.test)
    analysis.runner.close()  # flush the disk cache store, stop the pool
    print(f"noise tolerance: ±{report.tolerance}%")
    print(analysis.runner.stats.describe())
    print(analysis.runner.cache.stats.describe())
    print(analysis.runner.engine_stats.describe_table())
    _print_store(analysis.runner)
    for entry in report.per_input:
        flip = (
            f"flips at ±{entry.min_flip_percent}% -> L{entry.flipped_to}"
            if entry.min_flip_percent is not None
            else f"robust to ±{args.ceiling}%"
        )
        print(f"  test[{entry.index}] (L{entry.true_label}): {flip}")
    return 0


def _cmd_batch_plan(args) -> int:
    from .analysis import format_table
    from .service import BatchService

    service = BatchService.from_manifest(args.manifest)
    shards = args.shards
    rows = []
    per_shard = [0] * shards
    for job in service.plan():
        counts = [len(job.shard_tasks(index, shards)) for index in range(shards)]
        for index, count in enumerate(counts):
            per_shard[index] += count
        rows.append(
            (
                job.name,
                job.meta["correctly_classified"],
                len(job.tasks),
                " ".join(str(c) for c in counts),
            )
        )
    print(
        format_table(
            ("job", "inputs", "tasks", f"tasks per shard (1..{shards})"),
            rows,
            title=f"batch '{service.spec.name}': "
            f"{sum(len(j.tasks) for j in service.plan())} task(s) over {shards} shard(s)",
        )
    )
    print(
        "\nshard totals: "
        + ", ".join(f"{i + 1}/{shards}: {n}" for i, n in enumerate(per_shard))
    )
    return 0


def _cmd_batch_run(args) -> int:
    from .service import BatchService

    shard_index, shard_count = _parse_shard(args.shard)
    service = BatchService.from_manifest(args.manifest)
    written = service.run_shard(shard_index, shard_count, args.out)
    total = sum(
        len(job.shard_tasks(shard_index, shard_count)) for job in service.plan()
    )
    print(
        f"batch '{service.spec.name}' shard {shard_index + 1}/{shard_count}: "
        f"{total} task(s) executed, {len(written)} job file(s) written to {args.out}"
    )
    for path in written:
        print(f"  {path}")
    return 0


def _cmd_batch_merge(args) -> int:
    from .analysis import comparison_tables, save_record
    from .service import BatchService

    service = BatchService.from_manifest(args.manifest)
    record = service.merge(args.out)
    target = args.json if args.json is not None else args.out / "merged.json"
    save_record(record, target)
    jobs = record.measured["jobs"]
    print(
        f"batch '{service.spec.name}': merged {len(jobs)} job(s) "
        f"into {target}"
    )
    print()
    print(comparison_tables(record.measured["comparison"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
