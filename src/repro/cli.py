"""Command-line interface: ``fannet <subcommand>`` (or ``python -m repro``).

Subcommands mirror the paper's workflow:

- ``run``        — full case study (train → P1 → P2 → P3 → analyses)
- ``train``      — train the case-study network and save it as JSON
- ``translate``  — emit the SMV model for one test input
- ``check``      — model-check an ``.smv`` file's INVARSPECs
- ``statespace`` — Fig.-3 state/transition counts
- ``tolerance``  — noise-tolerance search only
- ``batch``      — multi-network campaigns: ``plan`` / ``run`` /
  ``status`` / ``merge`` a sharded batch manifest (see
  :mod:`repro.service`); ``run --resume`` re-executes only the tasks a
  killed shard lost
- ``cache``      — lifecycle tooling over ``--cache-dir`` stores:
  ``list`` / ``inspect`` / ``prune`` (see :mod:`repro.runtime.lifecycle`)
- ``serve``      — verification-as-a-service daemon: an HTTP/JSON job
  queue over shared warm per-context caches (see :mod:`repro.serve`);
  ``batch run --server URL`` executes a campaign through it with
  byte-identical output files
- ``lint``       — the self-hosted invariant analyzer (see
  :mod:`repro.lint`): AST rules FAN001–FAN005 over ``src``/``tests``/
  ``benchmarks``, run as a CI gate; this repository lints itself clean
"""
# lint: canonical-json — every JSON artifact this module writes
# (reports, status payloads, lint findings) is byte-stable.

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from .analysis import fig4_bias_series, fig4_sensitivity_series, fig4_tolerance_series
from .config import FannetConfig, NoiseConfig, RuntimeConfig, TrainConfig
from .data import load_leukemia_case_study
from .errors import ReproError
from .nn import save_network, train_paper_network


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan per-input analysis tasks over this many worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the query cache (every query reaches a solver)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist the query cache under DIR (one file per network/config "
        "fingerprint), so repeated runs warm-start and issue zero solver "
        "calls for already-proved verdicts",
    )
    parser.add_argument(
        "--no-persist",
        action="store_true",
        help="with --cache-dir: neither read nor write the disk cache this run",
    )
    parser.add_argument(
        "--frontier",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="resolve whole probe ladders/grids through the frontier-batched "
        "bulk prepass before any complete engine runs (--no-frontier falls "
        "back to one query at a time; reports are bit-identical either way)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=4096,
        metavar="ROWS",
        help="rows per concatenated bulk network evaluation in the frontier "
        "prepass (a memory knob; results do not depend on it)",
    )
    parser.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse warm per-input ladder sessions for SMT-sized complete "
        "queries: encode once, assume each rung's noise budget, keep learned "
        "clauses across the ladder (--no-incremental re-solves every rung "
        "from scratch; reports are byte-identical either way)",
    )
    parser.add_argument(
        "--max-cache-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="with --cache-dir: after every flush, evict the oldest store "
        "files until the directory fits this budget (the context this run "
        "writes is never evicted); default: unbounded",
    )


def _runtime_config(args) -> RuntimeConfig:
    return RuntimeConfig(
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
        persist=not args.no_persist,
        frontier=args.frontier,
        batch_size=args.batch_size,
        incremental=args.incremental,
        max_cache_bytes=args.max_cache_bytes,
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # A downstream consumer (`| head`, `| grep -q`) closed the pipe
        # early: die quietly with the conventional SIGPIPE status, not a
        # traceback.  stdout is re-pointed at devnull so the interpreter
        # teardown's implicit flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fannet",
        description="FANNet: formal analysis of NN noise tolerance, "
        "training bias and input sensitivity (DATE 2020 reproduction)",
    )
    sub = parser.add_subparsers()

    run = sub.add_parser("run", help="full case-study pipeline")
    run.add_argument("--ceiling", type=int, default=60, help="tolerance search ceiling")
    run.add_argument("--extract-at", type=int, default=None, help="P3 extraction range")
    run.add_argument("--probe", action="store_true", help="single-node sensitivity probes")
    run.add_argument("--json", type=Path, default=None, help="write the report as JSON")
    _add_runtime_flags(run)
    run.set_defaults(handler=_cmd_run)

    train = sub.add_parser("train", help="train the case-study network")
    train.add_argument("output", type=Path, help="where to save the network JSON")
    train.add_argument("--seed", type=int, default=7)
    train.set_defaults(handler=_cmd_train)

    translate = sub.add_parser("translate", help="emit the SMV model for a test input")
    translate.add_argument("--input-index", type=int, default=0)
    translate.add_argument("--noise", type=int, default=1, help="noise range ±P")
    translate.add_argument("--output", type=Path, default=None)
    translate.set_defaults(handler=_cmd_translate)

    check = sub.add_parser("check", help="model-check an .smv file")
    check.add_argument("model", type=Path)
    check.add_argument(
        "--engine", choices=("explicit", "bdd", "bmc", "induction"), default="explicit"
    )
    check.add_argument("--bound", type=int, default=20, help="BMC/induction bound")
    check.set_defaults(handler=_cmd_check)

    statespace = sub.add_parser("statespace", help="Fig.-3 state-space counts")
    statespace.add_argument("--noise", type=int, default=1)
    statespace.add_argument("--input-index", type=int, default=0)
    statespace.set_defaults(handler=_cmd_statespace)

    tolerance = sub.add_parser("tolerance", help="noise-tolerance search")
    tolerance.add_argument("--ceiling", type=int, default=60)
    tolerance.add_argument(
        "--schedule", choices=("binary", "paper"), default="binary"
    )
    _add_runtime_flags(tolerance)
    tolerance.set_defaults(handler=_cmd_tolerance)

    batch = sub.add_parser(
        "batch",
        help="multi-network batch campaigns (shardable; see the README)",
    )
    batch_sub = batch.add_subparsers()

    batch_plan = batch_sub.add_parser(
        "plan", help="show the task list and its shard assignment"
    )
    batch_plan.add_argument("manifest", type=Path, help="batch manifest (JSON/TOML)")
    batch_plan.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="preview the task partition over N shards",
    )
    batch_plan.set_defaults(handler=_cmd_batch_plan)

    batch_run = batch_sub.add_parser(
        "run", help="execute one shard of the batch and write its result files"
    )
    batch_run.add_argument("manifest", type=Path, help="batch manifest (JSON/TOML)")
    batch_run.add_argument(
        "--out", type=Path, required=True, metavar="DIR",
        help="directory for the per-job shard result files",
    )
    batch_run.add_argument(
        "--shard", default="1/1", metavar="I/N",
        help="this invocation's shard, 1-based (e.g. 2/4); default 1/1 "
        "runs everything — identical results either way",
    )
    batch_run.add_argument(
        "--resume", action="store_true",
        help="skip task results already in --out whose ledger fingerprints "
        "validate; re-execute only the missing/corrupt/stale gap (the "
        "merged report is byte-identical to an uninterrupted run)",
    )
    batch_run.add_argument(
        "--server", default=None, metavar="URL",
        help="execute this shard through a running `fannet serve` daemon "
        "instead of locally; the shard files and ledger written to --out "
        "are byte-identical to a local run's",
    )
    batch_run.set_defaults(handler=_cmd_batch_run)

    batch_status = batch_sub.add_parser(
        "status",
        help="report which task identities are done, missing, corrupt or "
        "stale in an output directory (exit 3 when incomplete)",
    )
    batch_status.add_argument("manifest", type=Path, help="batch manifest (JSON/TOML)")
    batch_status.add_argument("out", type=Path, help="directory holding the shard files")
    batch_status.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write the status report as JSON",
    )
    batch_status.set_defaults(handler=_cmd_batch_status)

    batch_merge = batch_sub.add_parser(
        "merge", help="fold shard result files into one aggregate report"
    )
    batch_merge.add_argument("manifest", type=Path, help="batch manifest (JSON/TOML)")
    batch_merge.add_argument("out", type=Path, help="directory holding the shard files")
    batch_merge.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="where to write the merged report (default: DIR/merged.json)",
    )
    batch_merge.set_defaults(handler=_cmd_batch_merge)

    cache = sub.add_parser(
        "cache",
        help="cache-store lifecycle: list / inspect / prune a --cache-dir",
    )
    cache_sub = cache.add_subparsers()

    cache_list = cache_sub.add_parser(
        "list", help="one line per *.qcache store file under a directory"
    )
    cache_list.add_argument("directory", type=Path, help="a --cache-dir directory")
    cache_list.set_defaults(handler=_cmd_cache_list)

    cache_inspect = cache_sub.add_parser(
        "inspect", help="validate one store file and print its header"
    )
    cache_inspect.add_argument("file", type=Path, help="a *.qcache store file")
    cache_inspect.set_defaults(handler=_cmd_cache_inspect)

    cache_prune = cache_sub.add_parser(
        "prune",
        help="evict oldest-mtime store files until the directory fits a "
        "byte budget (never touches non-store files)",
    )
    cache_prune.add_argument("directory", type=Path, help="a --cache-dir directory")
    cache_prune.add_argument(
        "--max-cache-bytes", type=int, required=True, metavar="BYTES",
        help="byte budget the directory must fit after pruning",
    )
    cache_prune.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without removing anything",
    )
    cache_prune.set_defaults(handler=_cmd_cache_prune)

    serve = sub.add_parser(
        "serve",
        help="verification-as-a-service daemon: HTTP/JSON job queue over "
        "shared warm per-context caches (see the README's Serving section)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8414,
        help="TCP port to listen on (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent job worker threads (jobs on the same runtime "
        "context still serialise on its shared cache)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=16, metavar="N",
        help="admission bound: submissions past this many queued jobs are "
        "shed with 429 + Retry-After",
    )
    serve.add_argument(
        "--task-workers", type=int, default=1, metavar="N",
        help="process fan-out inside each job's runner (the batch plane's "
        "--workers knob)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the query cache (every query reaches a solver)",
    )
    serve.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persist per-context query caches under DIR so warmth "
        "survives daemon restarts",
    )
    serve.add_argument(
        "--frontier", action=argparse.BooleanOptionalAction, default=True,
        help="frontier-batched bulk prepass inside each runner "
        "(results are bit-identical either way)",
    )
    serve.add_argument(
        "--incremental", action=argparse.BooleanOptionalAction, default=True,
        help="warm per-input ladder sessions for SMT-sized complete queries "
        "(results are byte-identical either way)",
    )
    serve.add_argument(
        "--max-cache-bytes", type=int, default=None, metavar="BYTES",
        help="with --cache-dir: evict oldest store files past this budget "
        "after each flush",
    )
    serve.add_argument(
        "--journal-dir", type=Path, default=None, metavar="DIR",
        help="write-ahead job journal under DIR: a daemon restart "
        "re-admits queued/running jobs and keeps serving finished "
        "results instead of dropping them",
    )
    serve.add_argument(
        "--done-retention", type=int, default=None, metavar="N",
        help="finished jobs kept in the in-memory registry before FIFO "
        "eviction (default 256; the journal serves older results)",
    )
    serve.set_defaults(handler=_cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="self-hosted invariant analyzer: AST rules FAN001-FAN005 "
        "(encoding pins, canonical JSON, bool-int, loop affinity, "
        "determinism); exit 1 on any unsuppressed finding",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src tests benchmarks, "
        "whichever exist under the current directory)",
    )
    lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="run only these comma-separated rule codes (e.g. FAN001,FAN003)",
    )
    lint.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="skip these comma-separated rule codes",
    )
    lint.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write the full report as JSON (CI uploads this on failure)",
    )
    lint.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="checked-in audit file of accepted findings; matches are "
        "reported but do not fail the gate",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.set_defaults(handler=_cmd_lint)

    return parser


def _parse_shard(text: str) -> tuple[int, int]:
    """``"i/N"`` (1-based) → 0-based ``(index, count)``; loud on nonsense."""
    from .errors import ConfigError

    parts = text.split("/")
    try:
        index, count = (int(part) for part in parts)
    except ValueError:
        raise ConfigError(
            f"--shard takes the form i/N (e.g. 2/4), got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ConfigError(
            f"--shard {text!r} is out of range: need 1 <= i <= N"
        )
    return index - 1, count


def _print_store(runner) -> None:
    """One-line persistence summary when a disk cache store is active."""
    store = runner.store
    if store is None:
        return
    print(
        f"cache store: {store.loaded_entries} entries loaded, "
        f"{store.saved_entries} saved under {store.directory}"
    )


def _trained_case_study():
    from .nn import quantize_network

    case_study = load_leukemia_case_study()
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    return case_study, result.network, quantize_network(result.network)


def _cmd_run(args) -> int:
    from .core import run_case_study

    fannet, report = run_case_study(
        config=FannetConfig(runtime=_runtime_config(args)),
        search_ceiling=args.ceiling,
        extraction_percent=args.extract_at,
        probe_sensitivity=args.probe,
    )
    fannet.close()  # flush the disk cache store before reporting
    print(report.summary())
    print(fannet.runner.stats.describe())
    print(fannet.runner.cache.stats.describe())
    print(fannet.engine_utilisation())
    _print_store(fannet.runner)
    if args.json is not None:
        payload = {
            "tolerance": fig4_tolerance_series(report.tolerance),
            "bias": fig4_bias_series(report.bias),
            "sensitivity": fig4_sensitivity_series(report.sensitivity),
            "accuracy": {
                "train": report.train_accuracy,
                "test": report.test_accuracy,
            },
        }
        args.json.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        print(f"\nJSON report written to {args.json}")
    return 0


def _cmd_train(args) -> int:
    case_study = load_leukemia_case_study()
    result = train_paper_network(
        case_study.train.features,
        case_study.train.labels,
        TrainConfig(seed=args.seed),
    )
    save_network(result.network, args.output)
    test_accuracy = float(
        (result.network.predict(np.asarray(case_study.test.features, dtype=float))
         == case_study.test.labels).mean()
    )
    print(
        f"trained: {result.train_accuracy:.2%} train, {test_accuracy:.2%} test; "
        f"saved to {args.output}"
    )
    return 0


def _cmd_translate(args) -> int:
    from .core import network_noise_module
    from .smv import print_module

    case_study, _, quantized = _trained_case_study()
    x = np.asarray(case_study.test.features[args.input_index])
    label = int(case_study.test.labels[args.input_index])
    module, _ = network_noise_module(
        quantized, x, label, NoiseConfig(max_percent=args.noise)
    )
    text = print_module(module)
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"SMV model written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_check(args) -> int:
    from .mc import BddChecker, BmcChecker, ExplicitChecker, KInduction
    from .smv import parse_module

    module = parse_module(args.model.read_text(encoding="utf-8"))
    engines = {
        "explicit": lambda: ExplicitChecker(),
        "bdd": lambda: BddChecker(),
        "bmc": lambda: BmcChecker(max_bound=args.bound),
        "induction": lambda: KInduction(max_k=args.bound),
    }
    engine = engines[args.engine]()
    if not module.invarspecs:
        print("no INVARSPEC properties in the model")
        return 1
    failures = 0
    for spec in module.invarspecs:
        result = engine.check_invariant(module, spec)
        print(f"[{result.verdict.value.upper()}] {result.property_text}")
        if result.violated and result.counterexample is not None:
            print(result.counterexample.format())
            failures += 1
    return 1 if failures else 0


def _cmd_statespace(args) -> int:
    from .core.translate import dataset_fsm_module, noise_model_state_counts
    from .fsm import TransitionSystem, count_states_and_transitions

    case_study, _, quantized = _trained_case_study()
    x = np.asarray(case_study.test.features[args.input_index])
    label = int(case_study.test.labels[args.input_index])

    no_noise = dataset_fsm_module(quantized, case_study.test.features)
    base = count_states_and_transitions(TransitionSystem(no_noise))
    print(f"no noise      : {base[0]} states, {base[1]} transitions")

    noisy = noise_model_state_counts(
        quantized, x, label, NoiseConfig(min_percent=0, max_percent=args.noise)
    )
    print(f"noise [0,{args.noise}]%  : {noisy[0]} states, {noisy[1]} transitions")
    return 0


def _cmd_tolerance(args) -> int:
    from .core import NoiseToleranceAnalysis

    case_study, _, quantized = _trained_case_study()
    analysis = NoiseToleranceAnalysis(
        quantized,
        search_ceiling=args.ceiling,
        schedule=args.schedule,
        runtime=_runtime_config(args),
    )
    report = analysis.analyze(case_study.test)
    analysis.runner.close()  # flush the disk cache store, stop the pool
    print(f"noise tolerance: ±{report.tolerance}%")
    print(analysis.runner.stats.describe())
    print(analysis.runner.cache.stats.describe())
    print(analysis.runner.engine_stats.describe_table())
    _print_store(analysis.runner)
    for entry in report.per_input:
        flip = (
            f"flips at ±{entry.min_flip_percent}% -> L{entry.flipped_to}"
            if entry.min_flip_percent is not None
            else f"robust to ±{args.ceiling}%"
        )
        print(f"  test[{entry.index}] (L{entry.true_label}): {flip}")
    return 0


def _cmd_batch_plan(args) -> int:
    from .analysis import format_table
    from .service import BatchService

    service = BatchService.from_manifest(args.manifest)
    shards = args.shards
    rows = []
    per_shard = [0] * shards
    for job in service.plan():
        counts = [len(job.shard_tasks(index, shards)) for index in range(shards)]
        for index, count in enumerate(counts):
            per_shard[index] += count
        rows.append(
            (
                job.name,
                job.meta["correctly_classified"],
                len(job.tasks),
                " ".join(str(c) for c in counts),
            )
        )
    print(
        format_table(
            ("job", "inputs", "tasks", f"tasks per shard (1..{shards})"),
            rows,
            title=f"batch '{service.spec.name}': "
            f"{sum(len(j.tasks) for j in service.plan())} task(s) over {shards} shard(s)",
        )
    )
    print(
        "\nshard totals: "
        + ", ".join(f"{i + 1}/{shards}: {n}" for i, n in enumerate(per_shard))
    )
    return 0


def _cmd_batch_run(args) -> int:
    from .service import BatchService

    shard_index, shard_count = _parse_shard(args.shard)
    if args.server is not None:
        from .errors import ConfigError
        from .serve import ServeClient, run_batch_shard_via_server
        from .service import BatchSpec

        if args.resume:
            raise ConfigError(
                "--resume is a local-execution feature; the daemon's shared "
                "cache already makes repeats cheap — drop --resume with --server"
            )
        spec = BatchSpec.from_manifest(args.manifest)
        report = run_batch_shard_via_server(
            ServeClient(args.server), spec, shard_index, shard_count, args.out
        )
        print(
            f"batch '{spec.name}' shard {shard_index + 1}/{shard_count}: "
            f"{report.executed} task(s) executed via {args.server}, "
            f"{len(report.written)} job file(s) written to {args.out}"
        )
        for path in report.written:
            print(f"  {path}")
        return 0
    service = BatchService.from_manifest(args.manifest)
    report = service.run_shard(
        shard_index, shard_count, args.out, resume=args.resume
    )
    print(
        f"batch '{service.spec.name}' shard {shard_index + 1}/{shard_count}: "
        f"{report.executed} task(s) executed, {report.reused} reused"
        f"{' (resume)' if args.resume else ''}, "
        f"{len(report.written)} job file(s) written to {args.out}"
    )
    for path in report.written:
        print(f"  {path}")
    return 0


def _cmd_batch_status(args) -> int:
    import json as json_module

    from .analysis import format_table
    from .service import BatchService

    service = BatchService.from_manifest(args.manifest)
    status = service.status(args.out)
    rows = [
        (
            job.job,
            job.expected,
            len(job.done),
            len(job.missing),
            len(job.corrupt),
            len(job.stale),
        )
        for job in status.jobs
    ]
    print(
        format_table(
            ("job", "expected", "done", "missing", "corrupt", "stale"),
            rows,
            title=f"batch '{status.batch}' under {args.out}: "
            + ("complete" if status.complete else "INCOMPLETE"),
        )
    )
    rerun = status.rerun
    if rerun:
        print(f"\n{len(rerun)} task identit(ies) need re-execution:")
        for identity in rerun:
            print(f"  {identity}")
        print("\nfill the gap with: fannet batch run <manifest> --out "
              f"{args.out} --shard i/N --resume")
    if status.stray:
        print(f"\n{len(status.stray)} stray identit(ies) from another manifest:")
        for identity in status.stray:
            print(f"  {identity}")
    for problem in status.problems:
        print(f"note: {problem}")
    if args.json is not None:
        args.json.write_text(
            json_module.dumps(status.to_payload(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        print(f"\nstatus JSON written to {args.json}")
    return 0 if status.complete else 3


def _cmd_batch_merge(args) -> int:
    from .analysis import comparison_tables, save_record
    from .service import BatchService

    service = BatchService.from_manifest(args.manifest)
    record = service.merge(args.out)
    target = args.json if args.json is not None else args.out / "merged.json"
    save_record(record, target)
    jobs = record.measured["jobs"]
    print(
        f"batch '{service.spec.name}': merged {len(jobs)} job(s) "
        f"into {target}"
    )
    print()
    print(comparison_tables(record.measured["comparison"]))
    return 0


def _size(num_bytes: int) -> str:
    """Human-readable byte count (stable, locale-free)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(num_bytes)} B"  # pragma: no cover - unreachable


def _cmd_cache_list(args) -> int:
    from .analysis import format_table
    from .runtime import scan_cache_dir

    infos = scan_cache_dir(args.directory)
    if not infos:
        print(f"no cache store files under {args.directory}")
        return 0
    rows = []
    for info in infos:
        if info.ok:
            state = "stale-version" if info.stale_version else "ok"
        else:
            state = f"INVALID: {info.error}"
        rows.append(
            (
                info.path.name,
                _size(info.size),
                info.entries if info.entries is not None else "-",
                info.context or "-",
                state,
            )
        )
    total = sum(info.size for info in infos if info.ok)
    print(
        format_table(
            ("file", "size", "entries", "context", "state"),
            rows,
            title=f"{len(infos)} cache file(s) under {args.directory} "
            f"({_size(total)} of valid stores)",
        )
    )
    return 0


def _cmd_cache_inspect(args) -> int:
    from .runtime import inspect_cache_file
    from .runtime.store import STORE_VERSION

    info = inspect_cache_file(args.file)
    print(f"file          : {info.path}")
    print(f"size          : {_size(info.size)}")
    print(f"store version : {info.version}"
          + ("" if info.version == STORE_VERSION else f" (this build reads {STORE_VERSION})"))
    print(f"context       : {info.context}")
    print(f"entries       : {info.entries}")
    print(f"engine stats  : {'present' if info.has_engine_stats else 'absent'}")
    print("checksum      : ok")
    return 0


def _cmd_cache_prune(args) -> int:
    from .runtime import prune_cache_dir

    report = prune_cache_dir(
        args.directory, args.max_cache_bytes, dry_run=args.dry_run
    )
    verb = "would evict" if args.dry_run else "evicted"
    print(
        f"cache prune {args.directory} (budget {_size(report.budget)}"
        f"{', dry run' if args.dry_run else ''}): "
        f"{verb} {len(report.evicted)} file(s) ({_size(report.evicted_bytes)}), "
        f"kept {len(report.kept)} ({_size(report.remaining_bytes)})"
    )
    for info in report.evicted:
        print(f"  {verb}: {info.path.name} ({_size(info.size)})")
    for info in report.skipped:
        print(f"  skipped (not a store file): {info.path.name} — {info.error}")
    for error in report.errors:
        print(f"  warning: {error}")
    return 0


def _cmd_serve(args) -> int:
    from .serve import DONE_RETENTION, ServeConfig
    from .serve.daemon import run

    runtime = RuntimeConfig(
        workers=args.task_workers,
        cache=not args.no_cache,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
        frontier=args.frontier,
        incremental=args.incremental,
        max_cache_bytes=args.max_cache_bytes,
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        runtime=runtime,
        journal_dir=(
            str(args.journal_dir) if args.journal_dir is not None else None
        ),
        done_retention=(
            args.done_retention if args.done_retention is not None
            else DONE_RETENTION
        ),
    )

    def announce(server):
        extras = ""
        if args.cache_dir:
            extras += f", cache dir {args.cache_dir}"
        if args.journal_dir:
            extras += f", journal dir {args.journal_dir}"
        print(
            f"fannet serve listening on {server.url} "
            f"({config.workers} worker(s), max {config.max_pending} pending"
            f"{extras})",
            flush=True,
        )
        if server.replayed is not None:
            report = server.replayed
            print(
                f"journal replayed: {report['queued']} queued re-admitted, "
                f"{report['rerun']} interrupted re-run, "
                f"{report['finished']} finished retained",
                flush=True,
            )
            for warning in report["warnings"]:
                print(f"journal warning: {warning}", flush=True)

    run(config, announce=announce)
    return 0


def _parse_codes(raw: str | None) -> set[str] | None:
    if raw is None:
        return None
    codes = {part.strip().upper() for part in raw.split(",") if part.strip()}
    return codes or None


def _cmd_lint(args) -> int:
    from .lint import iter_rules, lint_paths, load_baseline

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"    {rule.summary}")
        return 0

    paths = list(args.paths)
    if not paths:
        paths = [p for p in ("src", "tests", "benchmarks") if Path(p).is_dir()]
        if not paths:
            print(
                "error: no paths given and none of src/tests/benchmarks "
                "exist here",
                file=sys.stderr,
            )
            return 2

    baseline = load_baseline(args.baseline) if args.baseline else None
    report = lint_paths(
        paths,
        select=_parse_codes(args.select),
        ignore=_parse_codes(args.ignore),
        baseline=baseline,
    )

    if args.json is not None:
        args.json.write_text(
            json.dumps(report.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    for finding in report.findings:
        print(finding.format())
    for finding in report.baselined:
        print(f"{finding.format()} [baselined]")

    tail = (
        f"{report.files} file(s), {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed"
    )
    if report.clean:
        print(f"lint clean: {tail}")
        return 0
    print(f"lint failed: {tail}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
