"""Feed-forward network container.

The network is a sequence of :class:`DenseLayer`; classification follows
the paper's maxpool-as-argmax rule ``⟨L0 ≥ L1 → L0, L1 ≥ L0 → L1⟩``:
ties resolve to the lower class index.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..rational import argmax_with_tiebreak, to_fraction_vector
from .layers import DenseLayer


class Network:
    """A fully-connected feed-forward classifier."""

    def __init__(self, layers: Sequence[DenseLayer]):
        layers = list(layers)
        if not layers:
            raise ShapeError("a network needs at least one layer")
        for previous, current in zip(layers, layers[1:]):
            if previous.out_features != current.in_features:
                raise ShapeError(
                    f"layer size mismatch: {previous.out_features} -> {current.in_features}"
                )
        self.layers = layers

    # -- shapes --------------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return self.layers[0].in_features

    @property
    def num_outputs(self) -> int:
        return self.layers[-1].out_features

    @property
    def hidden_sizes(self) -> list[int]:
        return [layer.out_features for layer in self.layers[:-1]]

    def parameter_count(self) -> int:
        return sum(layer.parameter_count() for layer in self.layers)

    # -- float path -----------------------------------------------------------

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Raw output-layer values (vector input or batch)."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def forward_trace(self, x: np.ndarray) -> list[np.ndarray]:
        """Pre-activations of every layer, for backprop and diagnostics."""
        trace = []
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            pre = layer.preactivation(out)
            trace.append(pre)
            out = layer.activation.forward(pre)
        return trace

    def predict(self, x: np.ndarray) -> int | np.ndarray:
        """Predicted class label(s); ties resolve to the lower index."""
        out = self.logits(x)
        if out.ndim == 1:
            return int(_argmax_low_tie(out))
        return np.array([_argmax_low_tie(row) for row in out], dtype=np.int64)

    # -- exact path -------------------------------------------------------------

    def logits_exact(self, x: Sequence) -> list[Fraction]:
        """Exact rational logits for a single input vector."""
        out = to_fraction_vector(x)
        for layer in self.layers:
            out = layer.forward_exact(out)
        return out

    def hidden_preactivations_exact(self, x: Sequence) -> list[list[Fraction]]:
        """Exact pre-activations per layer (used to validate encoders)."""
        trace = []
        out = to_fraction_vector(x)
        for layer in self.layers:
            pre = layer.preactivation_exact(out)
            trace.append(pre)
            out = layer.activation.forward_exact(pre)
        return trace

    def predict_exact(self, x: Sequence) -> int:
        """Exact predicted class; this is the value formal analysis checks."""
        return argmax_with_tiebreak(self.logits_exact(x))

    # -- misc ---------------------------------------------------------------------

    def copy(self) -> "Network":
        return Network([layer.copy() for layer in self.layers])

    def __repr__(self):
        shape = " -> ".join(
            [str(self.num_inputs)] + [str(layer.out_features) for layer in self.layers]
        )
        return f"Network({shape})"


def _argmax_low_tie(row: np.ndarray) -> int:
    """numpy argmax already breaks ties toward the lowest index."""
    return int(np.argmax(row))
