"""Quantisation: snap a float network onto exact rationals.

Model checking demands a discrete, exactly-representable model (the paper
declares its inputs over ``Z`` in Fig. 3).  We snap every weight and bias
to a rational with a fixed denominator (``weight_scale``) and the inputs
to integers (``input_scale`` applied upstream in :mod:`repro.data`).  The
quantised network — not the float one — is what every formal engine, the
SMV translation and the exact reference evaluator all share.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..errors import ShapeError
from ..rational import argmax_with_tiebreak, mat_vec, relative_noise, vec_add
from .network import Network


@dataclass(frozen=True)
class QuantizedLayer:
    """Exact-rational affine layer with an optional ReLU."""

    weights: tuple[tuple[Fraction, ...], ...]
    bias: tuple[Fraction, ...]
    relu: bool

    @property
    def in_features(self) -> int:
        return len(self.weights[0]) if self.weights else 0

    @property
    def out_features(self) -> int:
        return len(self.weights)

    def preactivation(self, x: Sequence[Fraction]) -> list[Fraction]:
        if len(x) != self.in_features:
            raise ShapeError(f"input length {len(x)} != in_features {self.in_features}")
        return vec_add(mat_vec([list(row) for row in self.weights], list(x)), list(self.bias))

    def forward(self, x: Sequence[Fraction]) -> list[Fraction]:
        pre = self.preactivation(x)
        if not self.relu:
            return pre
        zero = Fraction(0)
        return [v if v > zero else zero for v in pre]


class QuantizedNetwork:
    """Exact-rational feed-forward classifier (the formally analysed object)."""

    def __init__(self, layers: Sequence[QuantizedLayer]):
        layers = list(layers)
        if not layers:
            raise ShapeError("a quantized network needs at least one layer")
        for previous, current in zip(layers, layers[1:]):
            if previous.out_features != current.in_features:
                raise ShapeError(
                    f"layer size mismatch: {previous.out_features} -> {current.in_features}"
                )
        self.layers = layers

    @property
    def num_inputs(self) -> int:
        return self.layers[0].in_features

    @property
    def num_outputs(self) -> int:
        return self.layers[-1].out_features

    def logits(self, x: Sequence) -> list[Fraction]:
        out = [_as_fraction(v) for v in x]
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: Sequence) -> int:
        return argmax_with_tiebreak(self.logits(x))

    def preactivation_trace(self, x: Sequence) -> list[list[Fraction]]:
        """Pre-activations of every layer; used to cross-check encoders."""
        trace = []
        out = [_as_fraction(v) for v in x]
        for layer in self.layers:
            pre = layer.preactivation(out)
            trace.append(pre)
            out = layer.forward(out)
        return trace

    # -- the paper's noise channel ------------------------------------------

    def noisy_input(self, x: Sequence, percents: Sequence[int]) -> list[Fraction]:
        """Apply per-node relative noise ``x_i (100 + p_i)/100`` exactly."""
        if len(x) != len(percents):
            raise ShapeError("noise vector length must match input length")
        return [
            relative_noise(_as_fraction(v), int(p)) for v, p in zip(x, percents)
        ]

    def predict_noisy(self, x: Sequence, percents: Sequence[int]) -> int:
        return self.predict(self.noisy_input(x, percents))

    def parameter_count(self) -> int:
        return sum(
            layer.in_features * layer.out_features + layer.out_features
            for layer in self.layers
        )

    def __repr__(self):
        shape = " -> ".join(
            [str(self.num_inputs)] + [str(layer.out_features) for layer in self.layers]
        )
        return f"QuantizedNetwork({shape})"


def _as_fraction(value) -> Fraction:
    """Coerce to Fraction with *python-int* internals.

    ``Fraction(numpy.int64(...))`` keeps the numpy scalar as numerator and
    later arithmetic silently overflows at 64 bits — exactly the failure
    exact inference exists to rule out.
    """
    if isinstance(value, Fraction):
        return value
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, float):
        raise TypeError("quantized networks take integer/rational inputs")
    return Fraction(int(value))


def _snap(value: float, scale: int) -> Fraction:
    """Round ``value`` to the nearest multiple of ``1/scale``."""
    return Fraction(round(value * scale), scale)


def quantize_network(network: Network, weight_scale: int = 1000) -> QuantizedNetwork:
    """Snap a trained float network to rationals with denominator ``weight_scale``.

    A scale of 1000 keeps three decimal digits of each weight — enough for
    the 5-20-2 case study to preserve every test-set prediction (checked by
    the integration tests), while keeping model-checking state small.
    """
    if weight_scale <= 0:
        raise ValueError("weight_scale must be positive")
    quantized = []
    for layer in network.layers:
        weights = tuple(
            tuple(_snap(w, weight_scale) for w in row) for row in layer.weights
        )
        bias = tuple(_snap(b, weight_scale) for b in layer.bias)
        quantized.append(QuantizedLayer(weights, bias, relu=layer.activation.name == "relu"))
    return QuantizedNetwork(quantized)
