"""Dense (fully-connected) layer with float and exact execution paths."""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..rational import mat_vec, to_fraction_matrix, to_fraction_vector, vec_add
from .activations import Activation, Identity, ReLU, activation_by_name


class DenseLayer:
    """Affine map followed by an elementwise activation.

    ``weights`` has shape ``(out_features, in_features)``; ``bias`` has
    shape ``(out_features,)``.  The layer owns its float parameters; the
    exact view is derived on demand (see :mod:`repro.nn.quantize` for the
    snapped version used in formal analysis).
    """

    def __init__(self, weights: np.ndarray, bias: np.ndarray, activation: Activation):
        weights = np.asarray(weights, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"weights must be 2-D, got shape {weights.shape}")
        if bias.ndim != 1:
            raise ShapeError(f"bias must be 1-D, got shape {bias.shape}")
        if bias.shape[0] != weights.shape[0]:
            raise ShapeError(
                f"bias length {bias.shape[0]} does not match output features {weights.shape[0]}"
            )
        self.weights = weights
        self.bias = bias
        self.activation = activation

    # -- construction ------------------------------------------------------

    @classmethod
    def from_init(
        cls,
        rng: np.random.Generator,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        initializer=None,
    ) -> "DenseLayer":
        """Create a randomly initialised layer."""
        from .init import glorot_uniform

        init_fn = initializer if initializer is not None else glorot_uniform
        weights = init_fn(rng, in_features, out_features)
        bias = np.zeros(out_features)
        return cls(weights, bias, activation_by_name(activation))

    # -- shapes ------------------------------------------------------------

    @property
    def in_features(self) -> int:
        return self.weights.shape[1]

    @property
    def out_features(self) -> int:
        return self.weights.shape[0]

    # -- float path (training / fast inference) -----------------------------

    def preactivation(self, x: np.ndarray) -> np.ndarray:
        """Affine part ``W x + b``; ``x`` may be a vector or a batch."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            if x.shape[0] != self.in_features:
                raise ShapeError(f"input length {x.shape[0]} != in_features {self.in_features}")
            return self.weights @ x + self.bias
        if x.ndim == 2:
            if x.shape[1] != self.in_features:
                raise ShapeError(f"input width {x.shape[1]} != in_features {self.in_features}")
            return x @ self.weights.T + self.bias
        raise ShapeError(f"input must be 1-D or 2-D, got shape {x.shape}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.activation.forward(self.preactivation(x))

    # -- exact path ----------------------------------------------------------

    def preactivation_exact(self, x: Sequence[Fraction]) -> list[Fraction]:
        """Exact affine part over rationals."""
        if len(x) != self.in_features:
            raise ShapeError(f"input length {len(x)} != in_features {self.in_features}")
        w = to_fraction_matrix(self.weights)
        b = to_fraction_vector(self.bias)
        return vec_add(mat_vec(w, list(x)), b)

    def forward_exact(self, x: Sequence[Fraction]) -> list[Fraction]:
        return self.activation.forward_exact(self.preactivation_exact(x))

    # -- misc ----------------------------------------------------------------

    def copy(self) -> "DenseLayer":
        return DenseLayer(self.weights.copy(), self.bias.copy(), type(self.activation)())

    def parameter_count(self) -> int:
        return self.weights.size + self.bias.size

    def __repr__(self):
        return (
            f"DenseLayer(in={self.in_features}, out={self.out_features}, "
            f"activation={self.activation.name!r})"
        )


def make_paper_architecture(rng: np.random.Generator, num_inputs: int = 5, hidden: int = 20) -> list[DenseLayer]:
    """Layers for the paper's 5-input / 20-hidden / 2-output network.

    Fig. 3(a) counts 6/20/2 *nodes* per layer; the sixth input node is the
    constant bias input, which we model as the layer bias term.
    """
    return [
        DenseLayer.from_init(rng, num_inputs, hidden, activation="relu"),
        DenseLayer.from_init(rng, hidden, 2, activation="linear"),
    ]
