"""Neural-network substrate (system S1 in DESIGN.md).

A small, self-contained feed-forward stack: float training via numpy and
*exact rational inference* via :mod:`fractions`, so the network handed to
the formal-analysis layers is the network that is actually checked.
"""

from .activations import ACTIVATIONS, Activation, Identity, ReLU
from .init import glorot_uniform, uniform_init
from .layers import DenseLayer
from .network import Network
from .quantize import QuantizedNetwork, quantize_network
from .metrics import accuracy, confusion_matrix, misclassified_indices
from .train import SgdTrainer, TrainResult, train_paper_network
from .serialize import network_from_dict, network_to_dict, load_network, save_network

__all__ = [
    "ACTIVATIONS",
    "Activation",
    "Identity",
    "ReLU",
    "DenseLayer",
    "Network",
    "QuantizedNetwork",
    "quantize_network",
    "accuracy",
    "confusion_matrix",
    "misclassified_indices",
    "SgdTrainer",
    "TrainResult",
    "train_paper_network",
    "glorot_uniform",
    "uniform_init",
    "network_from_dict",
    "network_to_dict",
    "load_network",
    "save_network",
]
