"""Classification metrics."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching entries."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError("predictions and labels must have identical shape")
    if predictions.size == 0:
        raise ShapeError("accuracy of an empty prediction set is undefined")
    return float((predictions == labels).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``matrix[true, predicted]`` counts."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ShapeError("predictions and labels must have identical shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, predicted in zip(labels, predictions):
        matrix[true, predicted] += 1
    return matrix


def misclassified_indices(predictions: np.ndarray, labels: np.ndarray) -> list[int]:
    """Indices where prediction differs from label."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError("predictions and labels must have identical shape")
    return [int(i) for i in np.nonzero(predictions != labels)[0]]
