"""SGD training with the paper's two-phase learning-rate schedule.

§V-A footnote 1: *"The network is trained using MATLAB with a learning
rate of 0.5 for the 40 initial epochs, and a learning rate of 0.2 for the
remaining 40 epochs"*, reaching 100 % train / 94.12 % test accuracy.
We reproduce the recipe with plain softmax-cross-entropy SGD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import TrainConfig
from ..errors import DataError, ShapeError
from .layers import DenseLayer, make_paper_architecture
from .network import Network


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot matrix of shape ``(n, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError("labels must be 1-D")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise DataError(f"labels out of range [0, {num_classes})")
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(probabilities: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy between softmax probabilities and one-hot targets."""
    eps = 1e-12
    return float(-(targets * np.log(probabilities + eps)).sum(axis=-1).mean())


@dataclass
class TrainResult:
    """Outcome of a training run."""

    network: Network
    loss_history: list[float] = field(default_factory=list)
    accuracy_history: list[float] = field(default_factory=list)
    train_accuracy: float = 0.0

    @property
    def epochs_run(self) -> int:
        return len(self.loss_history)


class SgdTrainer:
    """Mini-batch SGD with momentum over a phase schedule.

    ``schedule`` is a list of ``(epochs, learning_rate)`` pairs executed in
    order, matching the paper's 40-epoch/0.5 then 40-epoch/0.2 recipe.
    """

    def __init__(
        self,
        schedule: list[tuple[int, float]],
        momentum: float = 0.0,
        batch_size: int = 0,
        seed: int = 0,
    ):
        if not schedule:
            raise DataError("schedule must contain at least one phase")
        for epochs, lr in schedule:
            if epochs < 0 or lr <= 0:
                raise DataError("schedule entries must be (epochs >= 0, lr > 0)")
        self.schedule = schedule
        self.momentum = momentum
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)

    def fit(self, network: Network, inputs: np.ndarray, labels: np.ndarray) -> TrainResult:
        """Train ``network`` in place and return the training record."""
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if inputs.ndim != 2:
            raise ShapeError("inputs must be a 2-D (n, features) array")
        if inputs.shape[0] != labels.shape[0]:
            raise ShapeError("inputs and labels disagree on sample count")
        if inputs.shape[0] == 0:
            raise DataError("cannot train on an empty dataset")

        targets = one_hot(labels, network.num_outputs)
        velocity = [
            (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
            for layer in network.layers
        ]
        result = TrainResult(network=network)

        for epochs, lr in self.schedule:
            for _ in range(epochs):
                loss = self._run_epoch(network, inputs, targets, lr, velocity)
                result.loss_history.append(loss)
                predictions = network.predict(inputs)
                result.accuracy_history.append(float((predictions == labels).mean()))

        result.train_accuracy = result.accuracy_history[-1] if result.accuracy_history else 0.0
        return result

    # -- internals -----------------------------------------------------------

    def _run_epoch(self, network, inputs, targets, lr, velocity) -> float:
        n = inputs.shape[0]
        batch = self.batch_size if self.batch_size > 0 else n
        order = self.rng.permutation(n) if batch < n else np.arange(n)
        losses = []
        for start in range(0, n, batch):
            rows = order[start:start + batch]
            losses.append(
                self._step(network, inputs[rows], targets[rows], lr, velocity)
            )
        return float(np.mean(losses))

    def _step(self, network, x, y, lr, velocity) -> float:
        """One SGD step on batch (x, y); returns the batch loss."""
        # Forward, keeping pre- and post-activations.
        pre_activations = []
        post_activations = [x]
        out = x
        for layer in network.layers:
            pre = layer.preactivation(out)
            pre_activations.append(pre)
            out = layer.activation.forward(pre)
            post_activations.append(out)

        probabilities = softmax(out)
        loss = cross_entropy(probabilities, y)

        # Backward. Output layer is linear + softmax-CE.
        batch_n = x.shape[0]
        delta = (probabilities - y) / batch_n
        for index in range(len(network.layers) - 1, -1, -1):
            layer = network.layers[index]
            if index < len(network.layers) - 1:
                delta = delta * layer.activation.derivative(pre_activations[index])
            grad_w = delta.T @ post_activations[index]
            grad_b = delta.sum(axis=0)
            # The gradient flowing to the previous layer must use the
            # weights *before* this step's update.
            if index > 0:
                delta_previous = delta @ layer.weights
            vel_w, vel_b = velocity[index]
            vel_w *= self.momentum
            vel_w -= lr * grad_w
            vel_b *= self.momentum
            vel_b -= lr * grad_b
            layer.weights += vel_w
            layer.bias += vel_b
            if index > 0:
                delta = delta_previous
        return loss


def train_paper_network(
    inputs: np.ndarray,
    labels: np.ndarray,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Build and train the paper's 5-20-2 architecture on ``inputs``.

    Returns a :class:`TrainResult`; the contained network reaches 100 %
    training accuracy on the synthetic leukemia data with the default
    configuration (asserted by the integration tests).
    """
    config = config or TrainConfig()
    rng = np.random.default_rng(config.seed)
    layers = make_paper_architecture(
        rng, num_inputs=inputs.shape[1], hidden=config.hidden_units
    )
    network = Network(layers)
    trainer = SgdTrainer(
        schedule=[
            (config.epochs_phase1, config.lr_phase1),
            (config.epochs_phase2, config.lr_phase2),
        ],
        momentum=config.momentum,
        batch_size=config.batch_size,
        seed=config.seed,
    )
    return trainer.fit(network, inputs, labels)
