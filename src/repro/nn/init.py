"""Weight initialisers.

Deterministic given a :class:`numpy.random.Generator`, so every experiment
in EXPERIMENTS.md is reproducible from its seed.
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation, shape ``(fan_out, fan_in)``."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


def uniform_init(rng: np.random.Generator, fan_in: int, fan_out: int, limit: float = 0.5) -> np.ndarray:
    """Plain uniform initialisation in ``[-limit, limit]``.

    MATLAB's classic ``feedforwardnet`` default era initialisers were
    uniform; we keep this available for fidelity experiments.
    """
    return rng.uniform(-limit, limit, size=(fan_out, fan_in))


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "uniform": uniform_init,
}
