"""Network (de)serialisation to plain JSON.

The format stores float weights verbatim (via ``repr`` round-trip safe
float lists) plus the activation names, so a saved network reloads to an
identical object — important because the formal results in EXPERIMENTS.md
are tied to specific trained parameters.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import DataError
from .activations import activation_by_name
from .layers import DenseLayer
from .network import Network

FORMAT_VERSION = 1


def network_to_dict(network: Network) -> dict:
    """JSON-ready description of ``network``."""
    return {
        "format_version": FORMAT_VERSION,
        "layers": [
            {
                "weights": layer.weights.tolist(),
                "bias": layer.bias.tolist(),
                "activation": layer.activation.name,
            }
            for layer in network.layers
        ],
    }


def network_from_dict(payload: dict) -> Network:
    """Inverse of :func:`network_to_dict`."""
    if not isinstance(payload, dict) or "layers" not in payload:
        raise DataError("network payload must be a dict with a 'layers' key")
    version = payload.get("format_version", 0)
    if version != FORMAT_VERSION:
        raise DataError(f"unsupported network format version {version}")
    layers = []
    for entry in payload["layers"]:
        try:
            layers.append(
                DenseLayer(
                    np.asarray(entry["weights"], dtype=np.float64),
                    np.asarray(entry["bias"], dtype=np.float64),
                    activation_by_name(entry["activation"]),
                )
            )
        except KeyError as missing:
            raise DataError(f"layer entry missing key {missing}") from None
    return Network(layers)


def save_network(network: Network, path: str | Path) -> None:
    """Write ``network`` as JSON to ``path``."""
    Path(path).write_text(
        json.dumps(network_to_dict(network), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_network(path: str | Path) -> Network:
    """Load a network previously written by :func:`save_network`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise DataError(f"not a valid network file: {err}") from None
    return network_from_dict(payload)
