"""Activation functions used by the paper's network.

The paper (§III-A) restricts itself to ReLU and maxpool "due to their
predominant use in practical NNs"; maxpool appears only as the final
argmax-style selection between the two output logits, which the network
container implements directly.  Each activation provides a float path
(numpy, for training) and an exact path (Fractions, for formal analysis).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np


class Activation:
    """Interface: elementwise activation with float and exact variants."""

    name: str = "abstract"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """Derivative w.r.t. pre-activation, evaluated at pre-activation x."""
        raise NotImplementedError

    def forward_exact(self, x: Sequence[Fraction]) -> list[Fraction]:
        raise NotImplementedError

    def is_piecewise_linear(self) -> bool:
        return True

    def __repr__(self):
        return f"{type(self).__name__}()"


class ReLU(Activation):
    """Rectified linear unit: ``max(0, x)``."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        # Subgradient choice at 0 matches the exact path: relu'(0) = 0.
        return (x > 0.0).astype(x.dtype)

    def forward_exact(self, x: Sequence[Fraction]) -> list[Fraction]:
        zero = Fraction(0)
        return [v if v > zero else zero for v in x]


class Identity(Activation):
    """Linear (no-op) activation, used on the output layer."""

    name = "linear"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.ones_like(x)

    def forward_exact(self, x: Sequence[Fraction]) -> list[Fraction]:
        return list(x)


#: Registry used by serialisation and the SMV translator.
ACTIVATIONS: dict[str, type[Activation]] = {
    ReLU.name: ReLU,
    Identity.name: Identity,
}


def activation_by_name(name: str) -> Activation:
    """Instantiate a registered activation by its serialised name."""
    try:
        return ACTIVATIONS[name]()
    except KeyError:
        known = ", ".join(sorted(ACTIVATIONS))
        raise KeyError(f"unknown activation {name!r}; known: {known}") from None
