"""Portfolio verifier: cheap engines first, complete engine last.

The schedule mirrors how the paper's workflow spends effort: most
(input, noise-range) queries are either clearly robust (interval proof in
microseconds) or clearly vulnerable (a falsifier finds a witness), and
only the thin boundary band needs the complete solver.

Stage *order* is no longer hard-coded: an :class:`~repro.verify.stats.EngineStats`
table (shared with the runner, persisted in the cache store) records each
stage's decide rate and wall time, and the scheduler reorders the
incomplete stages to minimise expected time on the observed workload.
Reordering is verdict- and witness-preserving: the incomplete stages can
only fail towards UNKNOWN, and the corner falsifier always runs before
the random one, so the returned result is bit-identical to the canonical
interval → corner → random → complete order — statistics may only change
*which* engine answers first among agreeing engines.
"""

from __future__ import annotations

import time

from ..config import VerifierConfig
from .encoder import ScaledQuery
from .exhaustive import ExhaustiveEnumerator
from .falsify import CornerFalsifier, RandomFalsifier
from .incremental import LadderSession
from .interval import IntervalVerifier
from .result import VerificationResult, VerificationStatus
from .smt_verifier import SmtVerifier
from .stats import EngineStats

#: Warm ladder sessions kept per portfolio: one per (input, label) pair
#: this verifier has sent to the SMT-sized complete stage.  A per-input
#: portfolio only ever sees a handful of pairs; the cap is a safety net
#: against unbounded growth when a verifier is shared across inputs.
MAX_SESSIONS = 8


class PortfolioVerifier:
    """interval / corner / random (stats-ordered) ⇒ exhaustive-or-SMT."""

    name = "portfolio"

    def __init__(
        self,
        config: VerifierConfig | None = None,
        exhaustive_cutoff: int = 200_000,
        engine_stats: EngineStats | None = None,
        incremental: bool = True,
    ):
        self.config = config or VerifierConfig()
        self.exhaustive_cutoff = exhaustive_cutoff
        self.incremental = incremental
        self.interval = IntervalVerifier()
        self.corner = CornerFalsifier()
        self.random = RandomFalsifier(seed=self.config.seed)
        self.exhaustive = ExhaustiveEnumerator()
        self.smt = SmtVerifier(self.config)
        self.engine_stats = engine_stats if engine_stats is not None else EngineStats()
        self.stage_counts: dict[str, int] = {}
        #: (input values, true label) -> LadderSession, insertion-ordered.
        self._sessions: dict[tuple, LadderSession] = {}
        self._incomplete = {
            "interval": self.interval,
            "corner": self.corner,
            "random": self.random,
        }

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """Complete verdict; ``stats['stage']`` records the deciding engine."""
        for stage in self.engine_stats.incomplete_order():
            start = time.perf_counter()
            result = self._incomplete[stage].verify(query)
            wall = time.perf_counter() - start
            decided = result.status is not VerificationStatus.UNKNOWN
            self.engine_stats.record(stage, decided, wall)
            if decided:
                return self._record(result, stage, wall)
        return self.verify_complete(query)

    def verify_complete(self, query: ScaledQuery) -> VerificationResult:
        """The complete stage alone: enumeration when the box is small (it
        is usually faster than phase splitting there), SMT otherwise —
        warm via a per-(input, label) :class:`LadderSession` by default,
        from scratch with ``incremental=False``.  Verdicts and witnesses
        are byte-identical either way (the session re-derives witnesses
        canonically); only solver effort differs.

        Also the entry point for queries whose incomplete stages already
        ran inside a frontier prepass (:mod:`repro.verify.batch`)."""
        if query.noise_space_size() <= self.exhaustive_cutoff:
            stage, engine = "exhaustive", self.exhaustive
        elif self.incremental:
            stage, engine = "session", self._session_for(query)
        else:
            stage, engine = "smt", self.smt
        start = time.perf_counter()
        result = engine.verify(query)
        wall = time.perf_counter() - start
        self.engine_stats.record(
            stage, result.status is not VerificationStatus.UNKNOWN, wall
        )
        return self._record(result, stage, wall)

    def _session_for(self, query: ScaledQuery) -> LadderSession:
        """The warm session for this query's (input, label) ladder."""
        key = (tuple(int(v) for v in query.x), query.true_label)
        session = self._sessions.get(key)
        if session is None:
            if len(self._sessions) >= MAX_SESSIONS:
                # Deterministic FIFO eviction: drop the oldest ladder.
                self._sessions.pop(next(iter(self._sessions)))
            session = self._sessions[key] = LadderSession(self.config)
        return session

    def complete_pivots(self) -> int:
        """Simplex pivots spent by the SMT-path complete engines.

        The deterministic effort metric the incremental-ladder benchmark
        compares across ``incremental`` on/off."""
        return self.smt.total_pivots + sum(
            session.total_pivots for session in self._sessions.values()
        )

    def _record(
        self, result: VerificationResult, stage: str, wall: float
    ) -> VerificationResult:
        self.stage_counts[stage] = self.stage_counts.get(stage, 0) + 1
        result.stats["stage"] = stage
        result.stats["portfolio"] = True
        result.stats["wall_s"] = wall
        return result
