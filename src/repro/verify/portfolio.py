"""Portfolio verifier: cheap engines first, complete engine last.

The schedule mirrors how the paper's workflow spends effort: most
(input, noise-range) queries are either clearly robust (interval proof in
microseconds) or clearly vulnerable (a falsifier finds a witness), and
only the thin boundary band needs the complete solver.
"""

from __future__ import annotations

from ..config import VerifierConfig
from .encoder import ScaledQuery
from .exhaustive import ExhaustiveEnumerator
from .falsify import CornerFalsifier, RandomFalsifier
from .interval import IntervalVerifier
from .result import VerificationResult, VerificationStatus
from .smt_verifier import SmtVerifier


class PortfolioVerifier:
    """interval ⇒ corner/random falsifiers ⇒ exhaustive-or-SMT."""

    name = "portfolio"

    def __init__(
        self,
        config: VerifierConfig | None = None,
        exhaustive_cutoff: int = 200_000,
    ):
        self.config = config or VerifierConfig()
        self.exhaustive_cutoff = exhaustive_cutoff
        self.interval = IntervalVerifier()
        self.corner = CornerFalsifier()
        self.random = RandomFalsifier(seed=self.config.seed)
        self.exhaustive = ExhaustiveEnumerator()
        self.smt = SmtVerifier(self.config)
        self.stage_counts: dict[str, int] = {}

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """Complete verdict; ``stats['stage']`` records the deciding engine."""
        result = self.interval.verify(query)
        if result.is_robust:
            return self._record(result, "interval")

        result = self.corner.verify(query)
        if result.is_vulnerable:
            return self._record(result, "corner")

        result = self.random.verify(query)
        if result.is_vulnerable:
            return self._record(result, "random")

        # Complete stage: enumeration when the box is small (it is usually
        # faster than phase splitting there), SMT otherwise.
        if query.noise_space_size() <= self.exhaustive_cutoff:
            return self._record(self.exhaustive.verify(query), "exhaustive")
        return self._record(self.smt.verify(query), "smt")

    def _record(self, result: VerificationResult, stage: str) -> VerificationResult:
        self.stage_counts[stage] = self.stage_counts.get(stage, 0) + 1
        result.stats["stage"] = stage
        result.stats["portfolio"] = True
        return result
