"""Falsifiers: fast counterexample search without completeness.

These play the role adversarial-attack baselines play against formal
tools: when a misclassifying noise vector exists they usually find one in
milliseconds, letting the portfolio skip the complete engines.

Both falsifiers are fully vectorised and expose their candidate
generation as module-level helpers (:func:`corner_grid`,
:func:`draw_noise_block`), which the frontier plane
(:mod:`repro.verify.batch`) reuses verbatim — the bulk passes evaluate
*exactly* the candidate streams the per-query falsifiers would, which is
what keeps frontier-on and frontier-off reports bit-identical.
"""

from __future__ import annotations

import numpy as np

from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus

#: Default sampling budget / block size of the random falsifier; the
#: frontier plane imports these so both paths draw identical streams.
RANDOM_SAMPLES = 4096
RANDOM_BLOCK = 512

#: Default corner budget (grids above this are skipped as UNKNOWN).
MAX_CORNERS = 4096


def mixed_radix_grid(spans: list[np.ndarray]) -> np.ndarray:
    """All combinations of ``spans`` as a ``(prod sizes, len(spans))`` array.

    Row order equals ``itertools.product(*spans)`` — the last span varies
    fastest — so vectorised construction is a drop-in replacement for the
    Python-loop generation it supersedes (witness selection depends on
    this order).
    """
    sizes = [int(span.shape[0]) for span in spans]
    total = 1
    for size in sizes:
        total *= size
    indices = np.arange(total, dtype=np.int64)
    columns = []
    remaining = indices
    for size, span in zip(sizes[::-1], spans[::-1]):
        columns.append(span[remaining % size])
        remaining = remaining // size
    return np.stack(columns[::-1], axis=1)


def corner_spans(
    query: ScaledQuery, include_midpoints: bool = True
) -> list[np.ndarray]:
    """Per-node candidate values of the corner search (sorted, unique)."""
    spans = []
    for lo, hi in zip(query.low, query.high):
        lo, hi = int(lo), int(hi)
        options = {lo, hi}
        if include_midpoints:
            options.add((lo + hi) // 2)
        spans.append(np.array(sorted(options), dtype=np.int64))
    return spans


def corner_grid(
    query: ScaledQuery,
    include_midpoints: bool = True,
    max_corners: int = MAX_CORNERS,
) -> np.ndarray | None:
    """The corner falsifier's candidate block, or None above the budget."""
    spans = corner_spans(query, include_midpoints)
    total = 1
    for span in spans:
        total *= int(span.shape[0])
    if total > max_corners:
        return None
    return mixed_radix_grid(spans)


def draw_noise_block(
    rng: np.random.Generator, query: ScaledQuery, size: int
) -> np.ndarray:
    """One block of uniform noise rows — a single ``rng.integers`` call.

    The per-node bounds broadcast over the row axis, replacing the old
    one-``integers``-call-per-dimension construction; both paths (scalar
    falsifier and bulk frontier pass) consume this helper, so their
    sample streams are identical by construction.
    """
    return rng.integers(
        query.low.astype(np.int64),
        query.high.astype(np.int64) + 1,
        size=(size, query.num_inputs),
        dtype=np.int64,
    )


class RandomFalsifier:
    """Uniform random sampling of the noise box."""

    name = "random-falsifier"

    def __init__(
        self,
        samples: int = RANDOM_SAMPLES,
        seed: int = 0,
        batch: int = RANDOM_BLOCK,
    ):
        self.samples = samples
        self.seed = seed
        self.batch = batch

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """VULNERABLE with a witness, or UNKNOWN — never ROBUST."""
        rng = np.random.default_rng(self.seed)
        remaining = self.samples
        tried = 0
        while remaining > 0:
            block_size = min(self.batch, remaining)
            remaining -= block_size
            block = draw_noise_block(rng, query, block_size)
            labels = query.labels_for_batch(block)
            tried += block_size
            bad = np.nonzero(labels != query.true_label)[0]
            if bad.size:
                return VerificationResult(
                    VerificationStatus.VULNERABLE,
                    witness=tuple(int(v) for v in block[bad[0]]),
                    predicted_label=int(labels[bad[0]]),
                    engine=self.name,
                    nodes_explored=tried,
                )
        return VerificationResult(
            VerificationStatus.UNKNOWN, engine=self.name, nodes_explored=tried
        )


class CornerFalsifier:
    """Tries the corners of the noise box (optionally with midpoints).

    Piecewise-linear networks attain extreme logit differences at box
    corners far more often than in the interior, so this tiny search
    catches most vulnerable inputs.  The grid is built with one
    mixed-radix construction (no Python product loop) in the exact order
    the old ``itertools.product`` generation used.
    """

    name = "corner-falsifier"

    def __init__(self, include_midpoints: bool = True, max_corners: int = MAX_CORNERS):
        self.include_midpoints = include_midpoints
        self.max_corners = max_corners

    def verify(self, query: ScaledQuery) -> VerificationResult:
        block = corner_grid(query, self.include_midpoints, self.max_corners)
        if block is None:
            return VerificationResult(
                VerificationStatus.UNKNOWN, engine=self.name, nodes_explored=0
            )
        labels = query.labels_for_batch(block)
        bad = np.nonzero(labels != query.true_label)[0]
        if bad.size:
            return VerificationResult(
                VerificationStatus.VULNERABLE,
                witness=tuple(int(v) for v in block[bad[0]]),
                predicted_label=int(labels[bad[0]]),
                engine=self.name,
                nodes_explored=int(block.shape[0]),
            )
        return VerificationResult(
            VerificationStatus.UNKNOWN,
            engine=self.name,
            nodes_explored=int(block.shape[0]),
        )
