"""Falsifiers: fast counterexample search without completeness.

These play the role adversarial-attack baselines play against formal
tools: when a misclassifying noise vector exists they usually find one in
milliseconds, letting the portfolio skip the complete engines.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus


class RandomFalsifier:
    """Uniform random sampling of the noise box."""

    name = "random-falsifier"

    def __init__(self, samples: int = 4096, seed: int = 0, batch: int = 512):
        self.samples = samples
        self.seed = seed
        self.batch = batch

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """VULNERABLE with a witness, or UNKNOWN — never ROBUST."""
        rng = np.random.default_rng(self.seed)
        remaining = self.samples
        tried = 0
        while remaining > 0:
            block_size = min(self.batch, remaining)
            remaining -= block_size
            block = np.stack(
                [
                    rng.integers(int(lo), int(hi) + 1, size=block_size, dtype=np.int64)
                    for lo, hi in zip(query.low, query.high)
                ],
                axis=1,
            )
            labels = query.labels_for_batch(block)
            tried += block_size
            bad = np.nonzero(labels != query.true_label)[0]
            if bad.size:
                return VerificationResult(
                    VerificationStatus.VULNERABLE,
                    witness=tuple(int(v) for v in block[bad[0]]),
                    predicted_label=int(labels[bad[0]]),
                    engine=self.name,
                    nodes_explored=tried,
                )
        return VerificationResult(
            VerificationStatus.UNKNOWN, engine=self.name, nodes_explored=tried
        )


class CornerFalsifier:
    """Tries the corners of the noise box (optionally with midpoints).

    Piecewise-linear networks attain extreme logit differences at box
    corners far more often than in the interior, so this tiny search
    catches most vulnerable inputs.
    """

    name = "corner-falsifier"

    def __init__(self, include_midpoints: bool = True, max_corners: int = 4096):
        self.include_midpoints = include_midpoints
        self.max_corners = max_corners

    def verify(self, query: ScaledQuery) -> VerificationResult:
        values_per_node = []
        for lo, hi in zip(query.low, query.high):
            lo, hi = int(lo), int(hi)
            options = {lo, hi}
            if self.include_midpoints:
                options.add((lo + hi) // 2)
            values_per_node.append(sorted(options))

        total = 1
        for options in values_per_node:
            total *= len(options)
        if total > self.max_corners:
            return VerificationResult(
                VerificationStatus.UNKNOWN, engine=self.name, nodes_explored=0
            )

        block = np.array(list(product(*values_per_node)), dtype=np.int64)
        labels = query.labels_for_batch(block)
        bad = np.nonzero(labels != query.true_label)[0]
        if bad.size:
            return VerificationResult(
                VerificationStatus.VULNERABLE,
                witness=tuple(int(v) for v in block[bad[0]]),
                predicted_label=int(labels[bad[0]]),
                engine=self.name,
                nodes_explored=int(block.shape[0]),
            )
        return VerificationResult(
            VerificationStatus.UNKNOWN,
            engine=self.name,
            nodes_explored=int(block.shape[0]),
        )
