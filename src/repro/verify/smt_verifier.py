"""Complete verification by ReLU phase splitting over the exact simplex.

The Reluplex/Marabou recipe, specialised to the FANNet query:

1. an interval prepass fixes every ReLU whose phase the noise box already
   determines;
2. the remaining *ambiguous* neurons are split case-wise —
   active (``n ≥ 0 ∧ a = n``) vs inactive (``n ≤ 0 ∧ a = 0``) — in a DFS
   whose nodes are pruned by exact LP feasibility under the triangle
   relaxation (``a ≥ 0``, ``a ≥ n``, ``a ≤ ub``);
3. at a fully-split leaf the constraint system describes genuine network
   executions, so integer branch & bound over the noise variables either
   produces a real witness or refutes the leaf.

Everything is ``Fraction``-exact: a ROBUST answer is a proof, and every
witness is double-checked against the reference evaluator anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import VerifierConfig
from ..errors import BudgetExceededError, VerificationError
from ..smt.branch_bound import solve_integer_feasibility
from ..smt.simplex import Simplex
from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus


@dataclass
class _Neuron:
    layer: int
    index: int
    pre_var: int  # simplex var of the pre-activation (defined row)
    act_var: int  # simplex var of the post-activation
    diff_var: int  # defined row: act - pre  (0 in the active phase)
    low: int
    high: int

    @property
    def ambiguous(self) -> bool:
        return self.low < 0 < self.high


class SmtVerifier:
    """Sound and complete robustness verifier."""

    name = "smt"

    def __init__(self, config: VerifierConfig | None = None):
        self.config = config or VerifierConfig()
        self.nodes_explored = 0
        #: Cumulative simplex pivots over this verifier's lifetime (never
        #: reset by ``verify``): the deterministic effort measure the
        #: incremental-ladder benchmark gates on.
        self.total_pivots = 0

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """Decide the query; ROBUST and VULNERABLE are both definitive."""
        self.nodes_explored = 0
        for adversary in range(query.num_outputs):
            if adversary == query.true_label:
                continue
            witness = self._verify_against(query, adversary)
            if witness is not None:
                predicted = query.predict_single(witness)
                if predicted == query.true_label or not query.misclassified(witness):
                    raise VerificationError(
                        "internal: witness failed the exact recheck"
                    )
                return VerificationResult(
                    VerificationStatus.VULNERABLE,
                    witness=witness,
                    predicted_label=predicted,
                    engine=self.name,
                    nodes_explored=self.nodes_explored,
                )
        return VerificationResult(
            VerificationStatus.ROBUST,
            engine=self.name,
            nodes_explored=self.nodes_explored,
        )

    # -- per-adversary search ----------------------------------------------------

    def witness_against(self, query: ScaledQuery, adversary: int):
        """Canonical witness flipping to ``adversary``, or None.

        The from-scratch per-adversary search, exposed so the incremental
        session layer (:mod:`repro.verify.incremental`) can re-derive the
        *same* witness a cold run would report after its warm solvers
        prove a rung vulnerable.  ``nodes_explored`` accumulates across
        calls; reset it before use if per-call counts matter.
        """
        return self._verify_against(query, adversary)

    def _verify_against(self, query: ScaledQuery, adversary: int):
        """Witness flipping to ``adversary``, or None when impossible."""
        simplex = Simplex()
        try:
            return self._search_adversary(simplex, query, adversary)
        finally:
            self.total_pivots += simplex.total_pivots

    def _search_adversary(self, simplex: Simplex, query: ScaledQuery, adversary: int):
        one = simplex.new_var()
        simplex.assert_lower(one, 1)
        simplex.assert_upper(one, 1)

        noise_vars = [simplex.new_var() for _ in range(query.num_inputs)]
        for var, lo, hi in zip(noise_vars, query.low, query.high):
            simplex.assert_lower(var, int(lo))
            simplex.assert_upper(var, int(hi))

        bounds = query.layer_bounds()
        neurons: list[_Neuron] = []

        # Layer 1 pre-activations are affine in the noise variables:
        # N1_j = const_j + Σ (W1_ji · x_i) · p_i.
        previous_acts = None
        for layer_index in range(query.num_layers):
            weight = query.weights[layer_index]
            bias = query.biases[layer_index]
            layer_pre_vars = []
            for j in range(weight.shape[0]):
                if layer_index == 0:
                    combination = {one: 0}
                    constant = int(bias[j])
                    for i in range(query.num_inputs):
                        coeff = int(weight[j][i])
                        constant += coeff * 100 * int(query.x[i])
                        combination[noise_vars[i]] = (
                            combination.get(noise_vars[i], 0)
                            + coeff * int(query.x[i])
                        )
                    combination[one] = constant
                else:
                    combination = {one: int(bias[j])}
                    for i, act in enumerate(previous_acts):
                        combination[act] = int(weight[j][i])
                pre = simplex.define(combination)
                layer_pre_vars.append(pre)

            if layer_index == query.num_layers - 1:
                final_pre_vars = layer_pre_vars
                break

            # Hidden layer: create activation vars with ReLU relaxation.
            pre_low, pre_high = bounds[layer_index]
            acts = []
            for j, pre in enumerate(layer_pre_vars):
                act = simplex.new_var()
                diff = simplex.define({act: 1, pre: -1})
                simplex.assert_lower(act, 0)  # a >= 0
                simplex.assert_lower(diff, 0)  # a >= n (triangle)
                simplex.assert_upper(act, max(0, pre_high[j]))
                neurons.append(
                    _Neuron(
                        layer=layer_index,
                        index=j,
                        pre_var=pre,
                        act_var=act,
                        diff_var=diff,
                        low=pre_low[j],
                        high=pre_high[j],
                    )
                )
                acts.append(act)
            previous_acts = acts

        # Misclassification margin: N_adv - N_true >= threshold.
        margin = simplex.define(
            {final_pre_vars[adversary]: 1, final_pre_vars[query.true_label]: -1}
        )
        if simplex.assert_lower(margin, query.misclass_threshold(adversary)) is not None:
            return None

        # Fix phases the interval analysis already decided.
        for neuron in neurons:
            if neuron.low >= 0:
                if simplex.assert_upper(neuron.diff_var, 0) is not None:
                    return None  # a = n forced infeasible
            elif neuron.high <= 0:
                if simplex.assert_upper(neuron.act_var, 0) is not None:
                    return None
                if simplex.assert_upper(neuron.pre_var, 0) is not None:
                    return None

        ambiguous = sorted(
            (n for n in neurons if n.ambiguous),
            key=lambda n: (n.layer, -(n.high - n.low)),
        )
        integer_vars = noise_vars
        return self._dfs(simplex, ambiguous, 0, integer_vars, query)

    def _dfs(self, simplex: Simplex, ambiguous, depth: int, integer_vars, query):
        self.nodes_explored += 1
        if self.nodes_explored > self.config.node_budget:
            raise BudgetExceededError(
                f"SMT verifier exceeded {self.config.node_budget} nodes",
                budget=self.config.node_budget,
            )
        if not simplex.check().feasible:
            return None
        if depth == len(ambiguous):
            result = solve_integer_feasibility(
                simplex, integer_vars, node_budget=self.config.node_budget
            )
            if not result.feasible:
                return None
            return tuple(int(result.assignment[v]) for v in integer_vars)

        neuron = ambiguous[depth]

        # Active phase: n >= 0, a - n = 0.
        simplex.push()
        ok = simplex.assert_lower(neuron.pre_var, 0) is None
        ok = ok and simplex.assert_upper(neuron.diff_var, 0) is None
        if ok:
            witness = self._dfs(simplex, ambiguous, depth + 1, integer_vars, query)
            if witness is not None:
                simplex.pop()
                return witness
        simplex.pop()

        # Inactive phase: n <= 0, a = 0.
        simplex.push()
        ok = simplex.assert_upper(neuron.pre_var, 0) is None
        ok = ok and simplex.assert_upper(neuron.act_var, 0) is None
        if ok:
            witness = self._dfs(simplex, ambiguous, depth + 1, integer_vars, query)
            if witness is not None:
                simplex.pop()
                return witness
        simplex.pop()
        return None
