"""Adversarial noise-vector extraction (property P3 of the paper).

§IV-C: *"If OCn ≠ Sx and the NV is not already contained in e, then the
NV obtained from the generated counterexample is added to e"* — building
an array of unique noise patterns the network is vulnerable to.

Two strategies behind one interface:

- small boxes: exact exhaustive sweep (collect every witness);
- large boxes: solver-driven extraction — repeat the complete SMT query
  with *blocking clauses* excluding all previously found vectors, exactly
  the P3 loop of Fig. 2, realised with the DPLL(T) stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import VerifierConfig
from ..errors import BudgetExceededError, VerificationError
from ..smt import DpllTSolver, LinExpr, TheoryResult
from .encoder import ScaledQuery
from .exhaustive import ExhaustiveEnumerator


@dataclass
class NoiseVectorSet:
    """The paper's ``e`` matrix: unique adversarial noise vectors."""

    vectors: list[tuple[int, ...]] = field(default_factory=list)
    exhausted: bool = False  # True when no further vector exists

    def __len__(self):
        return len(self.vectors)

    def __iter__(self):
        return iter(self.vectors)

    def __contains__(self, vector):
        return tuple(vector) in set(self.vectors)


class NoiseVectorCollector:
    """Extract unique adversarial noise vectors from a query."""

    def __init__(
        self,
        config: VerifierConfig | None = None,
        exhaustive_cutoff: int = 2_000_000,
    ):
        self.config = config or VerifierConfig()
        self.exhaustive_cutoff = exhaustive_cutoff

    def collect(self, query: ScaledQuery, limit: int | None = None) -> NoiseVectorSet:
        """Gather up to ``limit`` unique noise vectors (all, when None)."""
        if query.noise_space_size() <= self.exhaustive_cutoff:
            enumerator = ExhaustiveEnumerator(max_vectors=self.exhaustive_cutoff)
            vectors = enumerator.collect_witnesses(query, limit=limit)
            return NoiseVectorSet(
                vectors=vectors,
                exhausted=limit is None or len(vectors) < limit,
            )
        if limit is None:
            raise VerificationError(
                "unbounded extraction on a large noise box; pass a limit"
            )
        return self._collect_with_blocking(query, limit)

    # -- solver-driven path ----------------------------------------------------------

    def _collect_with_blocking(self, query: ScaledQuery, limit: int) -> NoiseVectorSet:
        """The P3 loop: solve, block the model, repeat."""
        collected: list[tuple[int, ...]] = []
        while len(collected) < limit:
            witness = self._solve_blocked(query, collected)
            if witness is None:
                return NoiseVectorSet(vectors=collected, exhausted=True)
            if witness in collected:
                raise VerificationError("blocking failed to exclude a vector")
            collected.append(witness)
        return NoiseVectorSet(vectors=collected, exhausted=False)

    def _solve_blocked(
        self, query: ScaledQuery, blocked: list[tuple[int, ...]]
    ) -> tuple[int, ...] | None:
        """One DPLL(T) query with all of ``blocked`` excluded."""
        solver = DpllTSolver(node_budget=self.config.node_budget)

        noise_names = [f"p{i}" for i in range(query.num_inputs)]
        for name, lo, hi in zip(noise_names, query.low, query.high):
            solver.theory_var(name, integer=True)
            solver.set_bounds(name, lower=int(lo), upper=int(hi))

        bounds = query.layer_bounds()
        hidden_sizes = query.hidden_sizes()

        # Network equations as theory constraints (always asserted).
        previous = None
        for l, size in enumerate(hidden_sizes):
            weight, bias = query.weights[l], query.biases[l]
            lows, highs = bounds[l]
            for j in range(size):
                pre_name, act_name = f"n{l}_{j}", f"a{l}_{j}"
                solver.theory_var(pre_name)
                solver.theory_var(act_name)
                solver.set_bounds(pre_name, lower=lows[j], upper=highs[j])
                solver.set_bounds(act_name, lower=0, upper=max(0, highs[j]))
                if l == 0:
                    expr = LinExpr.const(
                        int(bias[j])
                        + sum(
                            int(weight[j][i]) * 100 * int(query.x[i])
                            for i in range(query.num_inputs)
                        )
                    )
                    for i in range(query.num_inputs):
                        expr = expr + LinExpr.var(
                            noise_names[i], int(weight[j][i]) * int(query.x[i])
                        )
                else:
                    expr = LinExpr.const(int(bias[j]))
                    for i, prev_name in enumerate(previous):
                        expr = expr + LinExpr.var(prev_name, int(weight[j][i]))
                eq = solver.make_atom((expr - LinExpr.var(pre_name)).eq(0))
                solver.add_clause([eq.boolean_var])

                # Phase atom with overlapping polarities, plus implications.
                phase = solver.make_atom(
                    LinExpr.var(pre_name) >= 0, neg=LinExpr.var(pre_name) <= 0
                )
                active_eq = solver.make_atom(
                    (LinExpr.var(act_name) - LinExpr.var(pre_name)).eq(0)
                )
                inactive_eq = solver.make_atom(LinExpr.var(act_name).eq(0))
                solver.add_clause([-phase.boolean_var, active_eq.boolean_var])
                solver.add_clause([phase.boolean_var, inactive_eq.boolean_var])
            previous = [f"a{l}_{j}" for j in range(size)]

        # Output margin for each adversary; at least one must fire.
        weight, bias = query.weights[-1], query.biases[-1]
        adversary_literals = []
        for k in range(query.num_outputs):
            if k == query.true_label:
                continue
            margin = LinExpr.const(int(bias[k]) - int(bias[query.true_label]))
            if previous is None:
                for i in range(query.num_inputs):
                    coeff = (
                        int(weight[k][i]) - int(weight[query.true_label][i])
                    ) * int(query.x[i])
                    margin = margin + LinExpr.var(noise_names[i], coeff)
                    margin = margin + (coeff * 100)
            else:
                for i, prev_name in enumerate(previous):
                    margin = margin + LinExpr.var(
                        prev_name,
                        int(weight[k][i]) - int(weight[query.true_label][i]),
                    )
            atom = solver.make_atom(margin >= query.misclass_threshold(k))
            adversary_literals.append(atom.boolean_var)
        solver.add_clause(adversary_literals)

        # Blocking clauses: for each known vector, some coordinate differs.
        for vector in blocked:
            literals = []
            for name, value in zip(noise_names, vector):
                below = solver.make_atom(LinExpr.var(name) <= value - 1)
                above = solver.make_atom(LinExpr.var(name) >= value + 1)
                literals.extend([below.boolean_var, above.boolean_var])
            solver.add_clause(literals)

        verdict, model = solver.solve()
        if verdict is TheoryResult.UNKNOWN:
            # A budgeted solver ran out of conflicts: treating this as
            # "no witness" would fabricate an exhausted vector set.
            raise BudgetExceededError(
                "DPLL(T) extraction exhausted its conflict budget",
                budget=self.config.node_budget,
            )
        if verdict is TheoryResult.UNSAT:
            return None
        witness = tuple(int(model.values[name]) for name in noise_names)
        if not query.misclassified(witness):
            raise VerificationError("DPLL(T) witness failed the exact recheck")
        return witness
