"""Frontier-batched verification plane (bulk prepass + survivor dispatch).

The paper's P2/P3 workflow resolves almost every ``(input, percent)``
query with an *incomplete* engine — an interval proof or a falsifier
witness — and only the thin boundary band ever needs a complete solver.
This module exploits that economics in bulk: instead of running the
portfolio one query at a time, a whole **frontier** of
:class:`~repro.verify.encoder.ScaledQuery` grids (same network, many
inputs × many percents) is resolved together:

- :func:`interval_bulk <repro.verify.interval.interval_bulk>` certifies
  the robust mass with one matmul pair per layer for the entire frontier;
- a batched corner pass evaluates every query's corner grid in one
  concatenated network evaluation;
- a batched random pass draws each query's blocks from its *own* seeded
  RNG (bit-identical to the scalar falsifier's stream) but evaluates the
  concatenated blocks together, round by round;
- surviving queries — the boundary band — go to the complete engines
  *per query*, and :func:`resolve_survivors` dispatches them along a
  monotone bisection per input: a complete ROBUST verdict at ±P covers
  every smaller surviving percent, a VULNERABLE one every larger, so a
  band of width ``w`` costs ``O(log w)`` complete calls instead of ``w``.

Determinism contract (inherited from the runtime): every decided result
is bit-identical to what the per-query portfolio would produce — the
passes evaluate the same candidate streams in the same order with the
same seeds, and the monotone implications used for skipping mirror the
:class:`~repro.runtime.cache.MonotoneCache` rules exactly.  Batch size
only chunks the concatenated evaluations; it can never move a verdict,
a witness or a node count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .encoder import ScaledQuery, forward_scaled
from .falsify import (
    RANDOM_BLOCK,
    RANDOM_SAMPLES,
    corner_grid,
    draw_noise_block,
)
from .interval import interval_bulk
from .result import VerificationResult, VerificationStatus
from .stats import CANONICAL_INCOMPLETE, EngineStats

#: Default cap on rows per concatenated network evaluation.
DEFAULT_BATCH_SIZE = 4096


@dataclass
class FrontierProbe:
    """One ``(input, percent)`` robustness query inside a frontier.

    ``key`` is the caller's handle (the runtime uses its cache key);
    ``group`` identifies the monotone implication group — probes of one
    group must share input, label and per-node noise shape so that their
    boxes nest along the percent axis.  ``seed`` feeds the random
    falsifier (the runtime derives it from ``(base seed, input index)``,
    exactly as the per-query path does).
    """

    key: Any
    query: ScaledQuery
    percent: int
    group: Any
    seed: int = 0


@dataclass
class FrontierOutcome:
    """Result of a bulk prepass over one frontier."""

    #: Engine-proved results (safe to memoise), keyed by probe key.
    decided: dict = field(default_factory=dict)
    #: Results implied by a decided probe at another percent (valid
    #: answers, but — like monotone cache derivations — not materialised
    #: as engine-proved facts).
    derived: dict = field(default_factory=dict)
    #: Probes every incomplete stage passed on: the boundary band.
    unknown: list = field(default_factory=list)


def labels_for_rows(
    blocks: Sequence[tuple[ScaledQuery, np.ndarray]],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> list[np.ndarray]:
    """Predicted labels for many per-query noise blocks, evaluated together.

    Concatenates the scaled inputs ``x_q · (100 + noise)`` of every block
    into one matrix per dtype group and pushes each through the shared
    network in ``batch_size``-row chunks — the bulk counterpart of
    :meth:`ScaledQuery.labels_for_batch`, exact in the same way.
    """
    labels: list[np.ndarray | None] = [None] * len(blocks)
    groups: dict[bool, list[int]] = {}
    for position, (query, block) in enumerate(blocks):
        if block.ndim != 2 or block.shape[1] != query.num_inputs:
            raise ValueError(f"noise block must be (m, {query.num_inputs})")
        groups.setdefault(query.exact_dtype, []).append(position)
    for exact, positions in groups.items():
        dtype = object if exact else np.int64
        reference = blocks[positions[0]][0]
        weights = [w.astype(dtype) for w in reference.weights]
        biases = [b.astype(dtype) for b in reference.biases]
        rows = np.concatenate(
            [
                blocks[p][0].x.astype(dtype) * (100 + blocks[p][1].astype(dtype))
                for p in positions
            ]
        )
        out = np.empty(rows.shape[0], dtype=np.int64)
        for start in range(0, rows.shape[0], batch_size):
            values = forward_scaled(rows[start:start + batch_size], weights, biases)
            out[start:start + batch_size] = np.argmax(values, axis=1)
        offset = 0
        for p in positions:
            size = blocks[p][1].shape[0]
            labels[p] = out[offset:offset + size]
            offset += size
    return labels  # type: ignore[return-value]


class FrontierPrepass:
    """Bulk incomplete-stage resolution over a frontier of probes.

    Stage order follows the same statistics-driven scheduler as the
    per-query portfolio (interval floats, corner always precedes random),
    and every per-probe result is bit-identical to the scalar engine's.
    """

    #: Corner rungs evaluated per implication group per ascending wave:
    #: the first witness covers the rest of the group's ladder, so waves
    #: bound the speculative work to one wave past the flip boundary.
    corner_wave = 8

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        engine_stats: EngineStats | None = None,
        include_midpoints: bool = True,
        max_corners: int = 4096,
        samples: int = RANDOM_SAMPLES,
        block: int = RANDOM_BLOCK,
    ):
        self.batch_size = batch_size
        self.engine_stats = engine_stats if engine_stats is not None else EngineStats()
        self.include_midpoints = include_midpoints
        self.max_corners = max_corners
        self.samples = samples
        self.block = block

    # -- implication bookkeeping --------------------------------------------------

    @staticmethod
    def _covered(probe: FrontierProbe, facts: dict) -> bool:
        fact = facts.get(probe.group)
        return fact is not None and probe.percent >= fact[0]

    @staticmethod
    def _note_vulnerable(probe: FrontierProbe, result, facts: dict) -> None:
        fact = facts.get(probe.group)
        if fact is None or probe.percent < fact[0]:
            facts[probe.group] = (probe.percent, result)

    # -- the pass -----------------------------------------------------------------

    def resolve(self, probes: Iterable[FrontierProbe]) -> FrontierOutcome:
        outcome = FrontierOutcome()
        pending = list(probes)
        #: group -> (minimal vulnerable percent decided here, its result)
        facts: dict[Any, tuple[int, VerificationResult]] = {}
        stages = {
            "interval": self._interval_stage,
            "corner": self._corner_stage,
            "random": self._random_stage,
        }
        order = self.engine_stats.incomplete_order()
        assert tuple(sorted(order)) == tuple(sorted(CANONICAL_INCOMPLETE))
        for stage in order:
            if not pending:
                break
            pending = stages[stage](pending, outcome, facts)
        for probe in pending:
            fact = facts.get(probe.group)
            if fact is not None and probe.percent >= fact[0]:
                outcome.derived[probe.key] = derived_vulnerable(fact[1], fact[0])
            else:
                outcome.unknown.append(probe)
        return outcome

    def _interval_stage(self, pending, outcome, facts):
        active = [p for p in pending if not self._covered(p, facts)]
        if not active:
            return pending
        start = time.perf_counter()
        results = interval_bulk([p.query for p in active])
        wall = time.perf_counter() - start
        mean_wall = wall / len(active)
        decided = 0
        for probe, result in zip(active, results):
            if result.is_robust:
                decided += 1
                outcome.decided[probe.key] = _decorate(result, "interval", mean_wall)
        self.engine_stats.record_bulk("interval", len(active), decided, wall)
        return [p for p in pending if p.key not in outcome.decided]

    def _corner_stage(self, pending, outcome, facts):
        start = time.perf_counter()
        attempted: set = set()
        stage_decided: dict[Any, VerificationResult] = {}
        attempts = decided = 0
        while True:
            # Next ascending wave per group: lowest unattempted rungs not
            # already covered by a witness at a smaller percent.
            per_group: dict[Any, list[FrontierProbe]] = {}
            for probe in pending:
                if probe.key in attempted or self._covered(probe, facts):
                    continue
                per_group.setdefault(probe.group, []).append(probe)
            wave: list[FrontierProbe] = []
            for probes in per_group.values():
                probes.sort(key=lambda p: p.percent)
                wave.extend(probes[: self.corner_wave])
            if not wave:
                break
            evaluated: list[FrontierProbe] = []
            blocks: list[tuple[ScaledQuery, np.ndarray]] = []
            for probe in wave:
                attempted.add(probe.key)
                grid = corner_grid(probe.query, self.include_midpoints, self.max_corners)
                if grid is None:
                    # Over the corner budget: the scalar falsifier returns
                    # UNKNOWN with zero nodes — the probe just moves on.
                    continue
                evaluated.append(probe)
                blocks.append((probe.query, grid))
            attempts += len(wave)
            if not blocks:
                continue
            labels = labels_for_rows(blocks, self.batch_size)
            for probe, (query, block), row_labels in zip(evaluated, blocks, labels):
                bad = np.nonzero(row_labels != query.true_label)[0]
                if bad.size:
                    decided += 1
                    result = VerificationResult(
                        VerificationStatus.VULNERABLE,
                        witness=tuple(int(v) for v in block[bad[0]]),
                        predicted_label=int(row_labels[bad[0]]),
                        engine="corner-falsifier",
                        nodes_explored=int(block.shape[0]),
                    )
                    stage_decided[probe.key] = result
                    self._note_vulnerable(probe, result, facts)
        wall = time.perf_counter() - start
        mean_wall = wall / max(1, attempts)
        for key, result in stage_decided.items():
            outcome.decided[key] = _decorate(result, "corner", mean_wall)
        self.engine_stats.record_bulk("corner", attempts, decided, wall)
        return [p for p in pending if p.key not in outcome.decided]

    def _random_stage(self, pending, outcome, facts):
        start = time.perf_counter()
        stage_decided: dict[Any, VerificationResult] = {}
        active = [p for p in pending if not self._covered(p, facts)]
        streams = {
            p.key: np.random.default_rng(p.seed) for p in active
        }
        tried = {p.key: 0 for p in active}
        remaining = self.samples
        attempts = len(active)
        decided = 0
        while remaining > 0 and active:
            block_size = min(self.block, remaining)
            remaining -= block_size
            blocks = [
                (p.query, draw_noise_block(streams[p.key], p.query, block_size))
                for p in active
            ]
            labels = labels_for_rows(blocks, self.batch_size)
            still = []
            for probe, (query, block), row_labels in zip(active, blocks, labels):
                tried[probe.key] += block_size
                bad = np.nonzero(row_labels != query.true_label)[0]
                if bad.size:
                    decided += 1
                    result = VerificationResult(
                        VerificationStatus.VULNERABLE,
                        witness=tuple(int(v) for v in block[bad[0]]),
                        predicted_label=int(row_labels[bad[0]]),
                        engine="random-falsifier",
                        nodes_explored=tried[probe.key],
                    )
                    stage_decided[probe.key] = result
                    self._note_vulnerable(probe, result, facts)
                else:
                    still.append(probe)
            # A witness at a lower percent of the same group covers the
            # rest of that group's ladder: stop sampling those probes.
            active = [p for p in still if not self._covered(p, facts)]
        wall = time.perf_counter() - start
        mean_wall = wall / max(1, attempts)
        for key, result in stage_decided.items():
            outcome.decided[key] = _decorate(result, "random", mean_wall)
        self.engine_stats.record_bulk("random", attempts, decided, wall)
        return [p for p in pending if p.key not in outcome.decided]


def resolve_survivors(
    survivors: Sequence[FrontierProbe],
    complete_fn: Callable[[FrontierProbe], VerificationResult],
) -> tuple[dict, dict]:
    """Dispatch boundary-band probes to the complete engines, bisected.

    Within one implication group the ground truth is monotone in the
    percent (noise boxes nest), so a binary search over the surviving
    rungs decides the whole band: every complete ROBUST verdict covers
    the smaller rungs, every VULNERABLE one the larger.  Returns
    ``(exact, derived)`` dicts keyed by probe key; ``complete_fn`` is
    invoked once per bisection step and is expected to memoise/account
    on the caller's side.  The runtime's ``complete_fn`` routes every
    probe of a group through that input's portfolio, so with incremental
    sessions enabled the whole bisection shares one warm
    :class:`~repro.verify.incremental.LadderSession` — probe order does
    not matter to the session (each rung's bounds live in their own
    retractable frame), so bisection jumps are as cheap as ladder steps.
    """
    exact: dict[Any, VerificationResult] = {}
    derived: dict[Any, VerificationResult] = {}
    by_group: dict[Any, list[FrontierProbe]] = {}
    for probe in survivors:
        by_group.setdefault(probe.group, []).append(probe)
    for probes in by_group.values():
        probes = sorted(probes, key=lambda p: p.percent)
        remaining = list(probes)
        robust_max: int | None = None
        vulnerable: tuple[int, VerificationResult] | None = None
        while remaining:
            mid = remaining[len(remaining) // 2]
            result = complete_fn(mid)
            exact[mid.key] = result
            if result.is_vulnerable:
                if vulnerable is None or mid.percent < vulnerable[0]:
                    vulnerable = (mid.percent, result)
                remaining = [p for p in remaining if p.percent < mid.percent]
            elif result.is_robust:
                if robust_max is None or mid.percent > robust_max:
                    robust_max = mid.percent
                remaining = [p for p in remaining if p.percent > mid.percent]
            else:  # defensive: an undecided complete engine resolves nothing
                remaining = [p for p in remaining if p is not mid]
        for probe in probes:
            if probe.key in exact:
                continue
            if robust_max is not None and probe.percent <= robust_max:
                derived[probe.key] = derived_robust(robust_max)
            elif vulnerable is not None and probe.percent >= vulnerable[0]:
                derived[probe.key] = derived_vulnerable(vulnerable[1], vulnerable[0])
            # else: unreachable — the bisection filters cover every probe.
    return exact, derived


# -- derived-result constructors (mirroring the monotone cache's style) ----------


def derived_robust(source_percent: int) -> VerificationResult:
    return VerificationResult(
        VerificationStatus.ROBUST,
        engine=f"frontier(robust@±{source_percent}%)",
        stats={"derived_from_percent": source_percent},
    )


def derived_vulnerable(
    source: VerificationResult, source_percent: int
) -> VerificationResult:
    return VerificationResult(
        VerificationStatus.VULNERABLE,
        witness=source.witness,
        predicted_label=source.predicted_label,
        engine=f"frontier(vulnerable@±{source_percent}%)",
        stats={"derived_from_percent": source_percent},
    )


def _decorate(
    result: VerificationResult, stage: str, mean_wall_s: float
) -> VerificationResult:
    """Stamp the portfolio-style stage stats onto a bulk-pass result.

    ``wall_s`` is the bulk pass's per-attempt mean (stamped once, at
    stage end) — the amortised analogue of the per-query path's stage
    duration, flagged by ``stats["frontier"]`` so readers know which
    semantics they are looking at.
    """
    result.stats["stage"] = stage
    result.stats["portfolio"] = True
    result.stats["frontier"] = True
    result.stats["wall_s"] = mean_wall_s
    return result
