"""Neural-network verification engines (system S9 in DESIGN.md).

The FANNet query (§IV-B of the paper): given a quantised network, a test
input ``x`` with true label ``Sx`` and an integer-percent noise range,
does some noise vector ``p`` make ``f(x·(100+p)/100) ≠ Sx``?

Engines, ordered by the guarantees they offer:

- :class:`ExhaustiveEnumerator` — exact integer evaluation of *every*
  noise vector (vectorised int64 with overflow guard); ground truth for
  small ranges.
- :class:`IntervalVerifier` — interval bound propagation; proves
  robustness (UNSAT) quickly, never finds counterexamples.
- :class:`RandomFalsifier` / :class:`CornerFalsifier` — find
  counterexamples quickly, never prove robustness.
- :class:`SmtVerifier` — complete: ReLU phase splitting over the exact
  rational simplex with integer branch & bound (Reluplex-style).
- :class:`MilpVerifier` — complete in practice: big-M MILP with scipy
  (HiGHS) LP relaxations, float-tolerant pruning, and exact recheck of
  every candidate model.
- :class:`PortfolioVerifier` — interval ⇒ falsifiers ⇒ complete engine,
  with the incomplete-stage order chosen per workload from an
  :class:`EngineStats` decide-rate/wall-time table; the default used by
  the FANNet pipeline.
- :class:`LadderSession` (:mod:`repro.verify.incremental`) — the warm
  complete stage behind the portfolio's default SMT path: network+input
  encoded once per adversary, each rung's noise budget expressed as
  retractable assumption literals and push/pop bound frames, learned
  clauses and tableau bases reused across the whole ladder.
- :class:`FrontierPrepass` / :func:`resolve_survivors`
  (:mod:`repro.verify.batch`) — the frontier-batched plane: many queries
  (same network, many inputs × many percents) resolved in bulk by
  vectorised incomplete passes, with only the boundary band dispatched
  to the complete engines along a monotone bisection.

All engines consume the same :class:`ScaledQuery` built by
:func:`build_query`, whose arithmetic is integer-exact by construction.
"""

from .encoder import ScaledQuery, build_query
from .result import VerificationResult, VerificationStatus
from .interval import IntervalVerifier, interval_bulk
from .exhaustive import ExhaustiveEnumerator
from .falsify import CornerFalsifier, RandomFalsifier
from .smt_verifier import SmtVerifier
from .incremental import LadderSession
from .milp_verifier import MilpVerifier
from .stats import EngineStats, StageStat
from .portfolio import PortfolioVerifier
from .batch import (
    FrontierOutcome,
    FrontierPrepass,
    FrontierProbe,
    labels_for_rows,
    resolve_survivors,
)
from .enumerate import NoiseVectorCollector

__all__ = [
    "ScaledQuery",
    "build_query",
    "VerificationResult",
    "VerificationStatus",
    "IntervalVerifier",
    "interval_bulk",
    "ExhaustiveEnumerator",
    "RandomFalsifier",
    "CornerFalsifier",
    "SmtVerifier",
    "LadderSession",
    "MilpVerifier",
    "EngineStats",
    "StageStat",
    "PortfolioVerifier",
    "FrontierPrepass",
    "FrontierProbe",
    "FrontierOutcome",
    "labels_for_rows",
    "resolve_survivors",
    "NoiseVectorCollector",
]
