"""Exhaustive noise-space enumeration (exact ground truth).

Evaluates the scaled-integer network on *every* noise vector in the box,
vectorised and chunked.  Integer arithmetic makes this bit-exact, so the
enumerator doubles as the reference the complete solvers are tested
against — and as the measurement backend for the paper's
counterexample-census analyses (training bias, node sensitivity) at
moderate noise ranges.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from ..errors import BudgetExceededError
from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus


class ExhaustiveEnumerator:
    """Full enumeration with a configurable vector budget."""

    name = "exhaustive"

    def __init__(self, max_vectors: int = 20_000_000, chunk: int = 250_000):
        self.max_vectors = max_vectors
        self.chunk = chunk

    # -- enumeration plumbing ---------------------------------------------------

    def _grid_chunks(self, query: ScaledQuery) -> Iterator[np.ndarray]:
        """Yield (chunk, n_in) int64 arrays covering the whole box."""
        spans = [
            np.arange(int(lo), int(hi) + 1, dtype=np.int64)
            for lo, hi in zip(query.low, query.high)
        ]
        sizes = [s.shape[0] for s in spans]
        # math.prod over Python ints: np.prod wraps silently at 64 bits,
        # which let astronomically large boxes slip past the budget check.
        total = math.prod(int(s) for s in sizes)
        if total > self.max_vectors:
            raise BudgetExceededError(
                f"noise space has {total} vectors, budget is {self.max_vectors}",
                budget=self.max_vectors,
            )
        # Mixed-radix enumeration in blocks.
        radix = np.array(sizes, dtype=np.int64)
        for start in range(0, total, self.chunk):
            stop = min(start + self.chunk, total)
            indices = np.arange(start, stop, dtype=np.int64)
            columns = []
            remaining = indices
            for size, span in zip(radix[::-1], spans[::-1]):
                columns.append(span[remaining % size])
                remaining = remaining // size
            yield np.stack(columns[::-1], axis=1)

    # -- queries --------------------------------------------------------------------

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """Decide the query by scanning the box; always exact."""
        checked = 0
        for block in self._grid_chunks(query):
            labels = query.labels_for_batch(block)
            bad = np.nonzero(labels != query.true_label)[0]
            checked += block.shape[0]
            if bad.size:
                witness = tuple(int(v) for v in block[bad[0]])
                return VerificationResult(
                    VerificationStatus.VULNERABLE,
                    witness=witness,
                    predicted_label=int(labels[bad[0]]),
                    engine=self.name,
                    nodes_explored=checked,
                )
        return VerificationResult(
            VerificationStatus.ROBUST, engine=self.name, nodes_explored=checked
        )

    def count_misclassifications(self, query: ScaledQuery) -> int:
        """Number of misclassifying noise vectors in the box."""
        count = 0
        for block in self._grid_chunks(query):
            labels = query.labels_for_batch(block)
            count += int((labels != query.true_label).sum())
        return count

    def collect_witnesses(
        self, query: ScaledQuery, limit: int | None = None
    ) -> list[tuple[int, ...]]:
        """All (or the first ``limit``) misclassifying noise vectors."""
        witnesses: list[tuple[int, ...]] = []
        for block in self._grid_chunks(query):
            labels = query.labels_for_batch(block)
            for row in np.nonzero(labels != query.true_label)[0]:
                witnesses.append(tuple(int(v) for v in block[row]))
                if limit is not None and len(witnesses) >= limit:
                    return witnesses
        return witnesses

    def misclassification_census(self, query: ScaledQuery) -> dict[int, int]:
        """Histogram: wrong label → count (used by the bias analysis)."""
        census: dict[int, int] = {}
        for block in self._grid_chunks(query):
            labels = query.labels_for_batch(block)
            wrong = labels[labels != query.true_label]
            values, counts = np.unique(wrong, return_counts=True)
            for value, count in zip(values, counts):
                census[int(value)] = census.get(int(value), 0) + int(count)
        return census
