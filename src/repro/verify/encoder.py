"""Scaled-integer encoding of the FANNet noise query.

The paper's model works over integers (Fig. 3 declares inputs in ``Z``);
the trick that makes that exact is a per-layer rescaling.  With weight
denominators dividing ``S`` (the quantisation scale):

- noisy scaled input:   ``A0_i = x_i·(100 + p_i)``             (scale 100)
- hidden pre-act:       ``N1 = 100·S·b1 + (S·w1) @ A0``        (scale 100·S)
- hidden post-act:      ``A1 = max(0, N1)``                    (scale 100·S)
- output:               ``N2 = 100·S²·b2 + (S·w2) @ A1``       (scale 100·S²)

Every coefficient is an integer, positive rescaling commutes with ReLU
and argmax, so the integer pipeline predicts exactly what the rational
network predicts — and strict comparisons become ``≥ 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..config import NoiseConfig
from ..errors import VerificationError
from ..nn.quantize import QuantizedNetwork

#: Stay clear of int64 limits: fall back to exact object arithmetic above this.
_INT64_SAFE = 2**62


def forward_scaled(values, weights, biases) -> np.ndarray:
    """Push pre-scaled input rows ``x·(100+p)`` through the network.

    The one definition of the scaled forward semantics (affine layers,
    ReLU on all but the last, already-cast integer arrays) shared by
    :meth:`ScaledQuery.forward_batch` and the frontier plane's
    concatenated evaluations (:func:`repro.verify.batch.labels_for_rows`)
    — keeping the bulk path equal to the per-query path by construction.
    """
    for index, (weight, bias) in enumerate(zip(weights, biases)):
        values = values @ weight.T + bias
        if index < len(weights) - 1:
            values = np.maximum(values, 0)
    return values


@dataclass
class ScaledQuery:
    """One robustness query in scaled-integer form.

    ``weights[l]`` and ``biases[l]`` are integer numpy matrices/vectors
    (dtype int64 or object, chosen by magnitude analysis); hidden layers
    are ReLU, the final layer is linear, classification is argmax with
    ties to the lower index.
    """

    weights: list[np.ndarray]
    biases: list[np.ndarray]
    x: np.ndarray  # integer inputs
    true_label: int
    low: np.ndarray  # per-input lower noise percent
    high: np.ndarray  # per-input upper noise percent
    exact_dtype: bool  # True when using object (unbounded) integers

    # -- shapes ---------------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return self.x.shape[0]

    @property
    def num_outputs(self) -> int:
        return self.weights[-1].shape[0]

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    def hidden_sizes(self) -> list[int]:
        return [w.shape[0] for w in self.weights[:-1]]

    # -- evaluation --------------------------------------------------------------

    def input_affine(self) -> tuple[np.ndarray, np.ndarray]:
        """``A0 = const + diag(x) · p``: returns (const, diagonal coeffs)."""
        return 100 * self.x, self.x.copy()

    def forward_batch(self, noise: np.ndarray) -> np.ndarray:
        """Final-layer scaled values for a batch of noise rows (exact)."""
        noise = np.asarray(noise)
        if noise.ndim != 2 or noise.shape[1] != self.num_inputs:
            raise VerificationError(
                f"noise batch must be (m, {self.num_inputs})"
            )
        dtype = object if self.exact_dtype else np.int64
        values = (self.x.astype(dtype) * (100 + noise.astype(dtype)))
        return forward_scaled(
            values,
            [w.astype(dtype) for w in self.weights],
            [b.astype(dtype) for b in self.biases],
        )

    def labels_for_batch(self, noise: np.ndarray) -> np.ndarray:
        """Predicted labels per noise row (argmax, ties to lower index)."""
        return np.argmax(self.forward_batch(noise), axis=1)

    def predict_single(self, noise) -> int:
        """Predicted label for one noise vector (pure-python exact ints)."""
        values = [
            int(xi) * (100 + int(pi)) for xi, pi in zip(self.x, noise)
        ]
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            values = [
                int(bias[j]) + sum(int(weight[j][i]) * values[i] for i in range(len(values)))
                for j in range(weight.shape[0])
            ]
            if index < self.num_layers - 1:
                values = [max(0, v) for v in values]
        best = 0
        for k in range(1, len(values)):
            if values[k] > values[best]:
                best = k
        return best

    def misclassified(self, noise) -> bool:
        return self.predict_single(noise) != self.true_label

    # -- misclassification margins ---------------------------------------------------

    def misclass_threshold(self, adversary: int) -> int:
        """``N_adv - N_true >= threshold`` expresses a flip to ``adversary``.

        The argmax tie-break favours the lower index, so an adversary with
        a smaller index wins on equality (threshold 0), a larger index
        needs a strict win (threshold 1 — valid because all scaled values
        are integers).
        """
        if adversary == self.true_label:
            raise VerificationError("adversary must differ from the true label")
        return 0 if adversary < self.true_label else 1

    # -- interval analysis --------------------------------------------------------------

    def layer_bounds(self) -> list[tuple[list[int], list[int]]]:
        """Exact pre-activation bounds per layer under the noise box.

        Returns, per layer, (lower, upper) lists of python ints for the
        pre-activation values; used by the interval verifier and as the
        phase-fixing prepass of the complete engines.
        """
        low = [int(xi) * (100 + int(lo)) for xi, lo in zip(self.x, self.low)]
        high = [int(xi) * (100 + int(hi)) for xi, hi in zip(self.x, self.high)]
        # Negative inputs flip the interval; inputs here are >= 1 by
        # construction, but stay general.
        act_low = [min(a, b) for a, b in zip(low, high)]
        act_high = [max(a, b) for a, b in zip(low, high)]

        bounds: list[tuple[list[int], list[int]]] = []
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre_low, pre_high = [], []
            for j in range(weight.shape[0]):
                total_low = int(self.biases[index][j])
                total_high = int(self.biases[index][j])
                for i in range(weight.shape[1]):
                    coeff = int(weight[j][i])
                    if coeff >= 0:
                        total_low += coeff * act_low[i]
                        total_high += coeff * act_high[i]
                    else:
                        total_low += coeff * act_high[i]
                        total_high += coeff * act_low[i]
                pre_low.append(total_low)
                pre_high.append(total_high)
            bounds.append((pre_low, pre_high))
            if index < self.num_layers - 1:
                act_low = [max(0, v) for v in pre_low]
                act_high = [max(0, v) for v in pre_high]
        return bounds

    def noise_space_size(self) -> int:
        """Number of noise vectors in the box."""
        size = 1
        for lo, hi in zip(self.low, self.high):
            size *= int(hi) - int(lo) + 1
        return size


def build_query(
    network: QuantizedNetwork,
    x,
    true_label: int,
    noise: NoiseConfig,
    weight_scale: int = 1000,
) -> ScaledQuery:
    """Encode ``network`` + input + noise range as a :class:`ScaledQuery`.

    Raises :class:`VerificationError` when the network's rationals do not
    fit the scale or the input is not integral — both would silently
    break exactness.
    """
    x = np.asarray(x)
    if x.ndim != 1 or x.shape[0] != network.num_inputs:
        raise VerificationError(
            f"input must be a vector of length {network.num_inputs}"
        )
    if not np.issubdtype(x.dtype, np.integer):
        raise VerificationError("inputs must be integers (scale them first)")
    if not 0 <= true_label < network.num_outputs:
        raise VerificationError(f"true label {true_label} out of range")

    weights: list[np.ndarray] = []
    biases: list[np.ndarray] = []
    scale_factor = 100  # running scale of the incoming activations
    for layer in network.layers:
        weight_rows = []
        for row in layer.weights:
            weight_rows.append([_as_scaled_int(w, weight_scale) for w in row])
        scale_factor *= weight_scale
        bias_row = [
            _scaled_bias(b, weight_scale, scale_factor) for b in layer.bias
        ]
        weights.append(np.array(weight_rows, dtype=object))
        biases.append(np.array(bias_row, dtype=object))

    low = np.full(network.num_inputs, noise.low, dtype=np.int64)
    high = np.full(network.num_inputs, noise.high, dtype=np.int64)

    query = ScaledQuery(
        weights=weights,
        biases=biases,
        x=x.astype(np.int64),
        true_label=true_label,
        low=low,
        high=high,
        exact_dtype=True,
    )
    # Magnitude analysis: drop to fast int64 when provably safe.
    if _int64_partial_sums_safe(weights, biases, x, low, high):
        query.weights = [w.astype(np.int64) for w in weights]
        query.biases = [b.astype(np.int64) for b in biases]
        query.exact_dtype = False
    return query


def _int64_partial_sums_safe(weights, biases, x, low, high) -> bool:
    """Whether *every* int64 computation on this query is overflow-free.

    The bound must cover more than the reachable activation values: the
    vectorised engines split each affine form into sign-separated matmul
    halves (``W⁺ @ act_low + W⁻ @ act_high`` in the interval pass) and
    accumulate dot products term by term, and those partial sums are not
    bounded by the cancellation-aware interval totals.  The triangle
    inequality is: propagate ``m ← max_row Σ_j |w_ij| · m + max_i |b_i|``
    from ``m = max_i |x_i| · max(|100+lo_i|, |100+hi_i|)``, which
    dominates every partial sum, every matmul half and every
    difference-of-logits bound any engine forms.  Arithmetic here is
    pure Python ints, so the check itself cannot wrap.
    """
    magnitude = max(
        (
            abs(int(xi)) * max(abs(100 + int(lo)), abs(100 + int(hi)))
            for xi, lo, hi in zip(x, low, high)
        ),
        default=0,
    )
    if magnitude >= _INT64_SAFE:
        return False
    for weight, bias in zip(weights, biases):
        row_mass = max(
            (sum(abs(int(v)) for v in row) for row in weight), default=0
        )
        bias_mass = max((abs(int(v)) for v in bias), default=0)
        magnitude = row_mass * magnitude + bias_mass
        if magnitude >= _INT64_SAFE:
            return False
    return True


def _as_scaled_int(value: Fraction, scale: int) -> int:
    scaled = value * scale
    if scaled.denominator != 1:
        raise VerificationError(
            f"weight {value} does not fit scale 1/{scale}; re-quantise the network"
        )
    return int(scaled)


def _scaled_bias(value: Fraction, scale: int, scale_factor: int) -> int:
    scaled = value * scale_factor
    if scaled.denominator != 1:
        raise VerificationError(
            f"bias {value} does not fit the layer scale; re-quantise the network"
        )
    return int(scaled)
