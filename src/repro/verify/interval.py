"""Interval bound propagation (sound, incomplete robustness certificates).

The ERAN/DeepPoly-family baseline at its simplest: exact integer interval
arithmetic through the scaled network.  When the certified margin between
the true logit and every adversary stays on the right side, no noise
vector in the box can flip the prediction — a proof, obtained in
microseconds.  When the margin straddles zero the verdict is UNKNOWN and
a complete engine must take over.

The output-difference bound is computed on the *difference* weights
``w_adv - w_true`` (one affine form) rather than subtracting two
independent logit intervals — the standard one-step tightening that often
doubles the certified radius.
"""

from __future__ import annotations

from ..errors import VerificationError
from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus


class IntervalVerifier:
    """Certify robustness via interval arithmetic."""

    name = "interval"

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """ROBUST when certified; UNKNOWN otherwise (never VULNERABLE)."""
        bounds = query.layer_bounds()
        if query.num_layers < 1:
            raise VerificationError("query has no layers")

        # Activation bounds entering the final layer.
        if query.num_layers == 1:
            act_low = [
                int(xi) * (100 + int(lo)) for xi, lo in zip(query.x, query.low)
            ]
            act_high = [
                int(xi) * (100 + int(hi)) for xi, hi in zip(query.x, query.high)
            ]
            act_low, act_high = (
                [min(a, b) for a, b in zip(act_low, act_high)],
                [max(a, b) for a, b in zip(act_low, act_high)],
            )
        else:
            pre_low, pre_high = bounds[-2]
            act_low = [max(0, v) for v in pre_low]
            act_high = [max(0, v) for v in pre_high]

        final_weights = query.weights[-1]
        final_bias = query.biases[-1]
        true = query.true_label

        for adversary in range(query.num_outputs):
            if adversary == true:
                continue
            # Upper bound of N_adv - N_true over the activation box.
            upper = int(final_bias[adversary]) - int(final_bias[true])
            for j in range(final_weights.shape[1]):
                diff = int(final_weights[adversary][j]) - int(final_weights[true][j])
                upper += diff * (act_high[j] if diff >= 0 else act_low[j])
            threshold = query.misclass_threshold(adversary)
            if upper >= threshold:
                return VerificationResult(
                    VerificationStatus.UNKNOWN,
                    engine=self.name,
                    stats={"blocking_adversary": adversary, "margin": upper},
                )
        return VerificationResult(VerificationStatus.ROBUST, engine=self.name)

    def certified(self, query: ScaledQuery) -> bool:
        """Convenience: True when the box is certified robust."""
        return self.verify(query).is_robust
