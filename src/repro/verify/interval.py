"""Interval bound propagation (sound, incomplete robustness certificates).

The ERAN/DeepPoly-family baseline at its simplest: exact integer interval
arithmetic through the scaled network.  When the certified margin between
the true logit and every adversary stays on the right side, no noise
vector in the box can flip the prediction — a proof, obtained in
microseconds.  When the margin straddles zero the verdict is UNKNOWN and
a complete engine must take over.

The output-difference bound is computed on the *difference* weights
``w_adv - w_true`` (one affine form) rather than subtracting two
independent logit intervals — the standard one-step tightening that often
doubles the certified radius.

The pass is **frontier-vectorised**: :func:`interval_bulk` stacks any
number of queries over the same network into ``(Q, n)`` bound matrices
and propagates them with one matmul pair per layer for the whole batch,
replacing the per-query per-element Python loops.  Queries are grouped
by integer dtype — int64 where the magnitude analysis proved it safe,
exact object integers otherwise — so the arithmetic stays bit-exact
either way.  :class:`IntervalVerifier` is the single-query wrapper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import VerificationError
from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus

_NAME = "interval"


def _input_bounds(queries, dtype) -> tuple[np.ndarray, np.ndarray]:
    """Stacked activation bounds at the network input, shape ``(Q, n_in)``."""
    x = np.stack([q.x for q in queries]).astype(dtype)
    lo = np.stack([q.low for q in queries]).astype(dtype)
    hi = np.stack([q.high for q in queries]).astype(dtype)
    a = x * (100 + lo)
    b = x * (100 + hi)
    # Negative inputs flip the interval; stay general, as the scalar did.
    return np.minimum(a, b), np.maximum(a, b)


def _propagate(queries, dtype) -> tuple[np.ndarray, np.ndarray]:
    """Activation bounds entering the final layer for one dtype group."""
    act_low, act_high = _input_bounds(queries, dtype)
    weights = queries[0].weights
    biases = queries[0].biases
    for weight, bias in zip(weights[:-1], biases[:-1]):
        w = weight.astype(dtype)
        w_pos = np.maximum(w, 0)
        w_neg = np.minimum(w, 0)
        b = bias.astype(dtype)
        pre_low = act_low @ w_pos.T + act_high @ w_neg.T + b
        pre_high = act_high @ w_pos.T + act_low @ w_neg.T + b
        act_low = np.maximum(pre_low, 0)
        act_high = np.maximum(pre_high, 0)
    return act_low, act_high


def interval_bulk(queries: Sequence[ScaledQuery]) -> list[VerificationResult]:
    """Interval verdicts for many same-network queries, vectorised.

    Returns one result per query, in order: ROBUST when certified,
    UNKNOWN otherwise (with the scalar verifier's ``blocking_adversary``
    / ``margin`` stats).  All queries must encode the same network (they
    may differ in input, label and noise box); they are grouped by
    integer dtype so exact object arithmetic and fast int64 coexist.
    """
    results: list[VerificationResult | None] = [None] * len(queries)
    groups: dict[bool, list[int]] = {}
    for position, query in enumerate(queries):
        if query.num_layers < 1:
            raise VerificationError("query has no layers")
        groups.setdefault(query.exact_dtype, []).append(position)
    for exact, positions in groups.items():
        group = [queries[p] for p in positions]
        dtype = object if exact else np.int64
        for position, result in zip(positions, _decide_group(group, dtype)):
            results[position] = result
    return results  # type: ignore[return-value]


def _decide_group(group, dtype) -> list[VerificationResult]:
    act_low, act_high = _propagate(group, dtype)
    final_w = group[0].weights[-1].astype(dtype)
    final_b = group[0].biases[-1].astype(dtype)
    num_outputs = group[0].num_outputs
    true_labels = np.array([q.true_label for q in group])

    blocking = np.full(len(group), -1, dtype=np.int64)
    margins = np.zeros(len(group), dtype=object)
    # First blocking adversary in ascending index order, as the scalar did.
    for adversary in range(num_outputs):
        undecided = blocking < 0
        for true in range(num_outputs):
            if adversary == true:
                continue
            rows = np.nonzero(undecided & (true_labels == true))[0]
            if rows.size == 0:
                continue
            diff = final_w[adversary] - final_w[true]
            # act* attains the upper bound of N_adv - N_true over the box;
            # the encoder's partial-sum magnitude analysis (the int64/object
            # dtype choice) covers these dot products and their difference.
            act_star = np.where(diff >= 0, act_high[rows], act_low[rows])
            upper = (act_star @ final_w[adversary] + final_b[adversary]) - (
                act_star @ final_w[true] + final_b[true]
            )
            threshold = group[int(rows[0])].misclass_threshold(adversary)
            hit = np.nonzero(upper >= threshold)[0]
            for k in hit:
                row = rows[k]
                blocking[row] = adversary
                margins[row] = int(upper[k])
    results = []
    for position in range(len(group)):
        if blocking[position] >= 0:
            results.append(
                VerificationResult(
                    VerificationStatus.UNKNOWN,
                    engine=_NAME,
                    stats={
                        "blocking_adversary": int(blocking[position]),
                        "margin": int(margins[position]),
                    },
                )
            )
        else:
            results.append(
                VerificationResult(VerificationStatus.ROBUST, engine=_NAME)
            )
    return results


class IntervalVerifier:
    """Certify robustness via interval arithmetic (single-query wrapper)."""

    name = _NAME

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """ROBUST when certified; UNKNOWN otherwise (never VULNERABLE)."""
        return interval_bulk([query])[0]

    def certified(self, query: ScaledQuery) -> bool:
        """Convenience: True when the box is certified robust."""
        return self.verify(query).is_robust
