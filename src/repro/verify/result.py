"""Verdict container shared by all verification engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class VerificationStatus(Enum):
    #: No noise vector in the range can change the prediction (proof).
    ROBUST = "robust"
    #: A concrete misclassifying noise vector was found (witness).
    VULNERABLE = "vulnerable"
    #: The engine could not decide within its budget / ability.
    UNKNOWN = "unknown"


@dataclass
class VerificationResult:
    """Outcome of one noise-robustness query.

    ``witness`` is the misclassifying integer noise-percent vector when
    ``status`` is VULNERABLE; ``predicted_label`` is the wrong label the
    network emits under that noise.
    """

    status: VerificationStatus
    witness: tuple[int, ...] | None = None
    predicted_label: int | None = None
    engine: str = ""
    nodes_explored: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def is_robust(self) -> bool:
        return self.status is VerificationStatus.ROBUST

    @property
    def is_vulnerable(self) -> bool:
        return self.status is VerificationStatus.VULNERABLE

    def __repr__(self):
        extra = f", witness={self.witness}" if self.witness else ""
        return f"VerificationResult({self.status.value}, engine={self.engine!r}{extra})"
