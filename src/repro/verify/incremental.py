"""Incremental ladder verification sessions (encode once, assume the rung).

FANNet's central workload is a *ladder*: one network and one input
verified at many noise percentages, where only the noise box moves
between queries.  The from-scratch complete engine
(:class:`~repro.verify.smt_verifier.SmtVerifier`) rebuilds its whole
encoding — simplex tableau, phase analysis, everything — at every rung;
:class:`LadderSession` instead keeps, **per adversary label**, one
persistent pair of warm solvers alive across the whole ladder and across
the frontier's bisection probes:

- a :class:`~repro.smt.simplex.Simplex` holding the *structural*
  encoding (network equations, triangle relaxation, misclassification
  margin) at decision level 0, with each rung's noise bounds and
  activation caps asserted inside one push/pop bound frame — the tableau
  basis survives ``pop``, so later rungs re-solve from an almost-feasible
  state instead of from zero;
- a :class:`~repro.sat.solver.CdclSolver` over one *phase boolean* per
  hidden neuron plus one *rung assumption literal* per distinct noise
  box.  Rungs are solved under ``solve(assumptions=[rung literal,
  interval-fixed phases…])``, so learned clauses, VSIDS activity and
  saved phases all survive from rung to rung.  Theory conflicts become
  learned clauses tagged with ``¬rung`` exactly when rung-owned bounds
  participated in the simplex core — clauses conditioned on a narrow box
  can never mis-prune a wider one.

A formula-level UNSAT (``SatResult.failed_assumptions is None``) proves
the adversary unreachable under *any* noise box, so the session marks it
dead and every later rung skips it outright.

**Determinism contract:** sessions are verdict-only accelerators.  A
ROBUST rung returns exactly the verdict the cold engine would; for a
VULNERABLE rung the witness is re-derived by running the from-scratch
:meth:`SmtVerifier.witness_against <repro.verify.smt_verifier.SmtVerifier.witness_against>`
search for the first satisfiable adversary — the same deterministic DFS
a cold run performs — so reports stay byte-identical with sessions on or
off.  See ``docs/incremental-sessions.md`` for the full lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import VerifierConfig
from ..errors import BudgetExceededError, VerificationError
from ..sat.solver import CdclSolver, SatStatus
from ..smt.branch_bound import solve_integer_feasibility
from ..smt.simplex import BoundKind, BoundRef, Simplex
from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus
from .smt_verifier import SmtVerifier


@dataclass
class _SessionNeuron:
    """One hidden ReLU inside a per-adversary encoding."""

    pre_var: int  # simplex id of the pre-activation (defined row)
    act_var: int  # simplex id of the post-activation
    diff_var: int  # defined row: act - pre (0 in the active phase)
    layer: int
    index: int
    phase_bool: int  # SAT variable: true = active phase


@dataclass
class _AdversaryState:
    """Warm solvers and bookkeeping for one adversary label."""

    sat: CdclSolver
    simplex: Simplex
    noise_vars: list[int]
    neurons: list[_SessionNeuron]
    #: (low tuple, high tuple) -> rung assumption literal.
    rung_literals: dict[tuple, int] = field(default_factory=dict)
    #: Set when the structural encoding alone is refuted: the adversary
    #: is unreachable at every rung, past and future.
    dead: bool = False
    theory_conflicts: int = 0


class LadderSession:
    """Warm complete verification across one input's noise ladder.

    One session serves every rung (and every bisection probe) of a single
    ``(input, true label)`` pair.  ``verify`` is the SMT-path complete
    stage: it always returns a definitive ROBUST/VULNERABLE verdict,
    byte-identical to what :class:`SmtVerifier` would produce cold.
    """

    name = "smt-session"

    def __init__(self, config: VerifierConfig | None = None):
        self.config = config or VerifierConfig()
        self._states: dict[int, _AdversaryState] = {}
        #: From-scratch engine used to re-derive canonical witnesses for
        #: vulnerable rungs (and nothing else).
        self._scratch = SmtVerifier(self.config)
        self.nodes_explored = 0
        self.rungs_verified = 0

    # -- effort accounting (benchmark surface) --------------------------------

    @property
    def total_pivots(self) -> int:
        """Simplex pivots spent by this session, warm and scratch alike."""
        return (
            sum(state.simplex.total_pivots for state in self._states.values())
            + self._scratch.total_pivots
        )

    @property
    def sat_conflicts(self) -> int:
        """CDCL conflicts across all per-adversary solvers."""
        return sum(state.sat.conflicts for state in self._states.values())

    @property
    def theory_conflicts(self) -> int:
        return sum(state.theory_conflicts for state in self._states.values())

    # -- the complete stage ----------------------------------------------------

    def verify(self, query: ScaledQuery) -> VerificationResult:
        """Decide one rung; ROBUST and VULNERABLE are both definitive."""
        self.nodes_explored = 0
        self.rungs_verified += 1
        bounds = query.layer_bounds()
        for adversary in range(query.num_outputs):
            if adversary == query.true_label:
                continue
            if not self._rung_satisfiable(query, adversary, bounds):
                continue
            # A warm solver proved the rung vulnerable for this adversary.
            # Re-derive the canonical witness with the from-scratch search
            # so the report carries exactly the cold engine's bytes.
            self._scratch.nodes_explored = 0  # per-call budget, not per-session
            witness = self._scratch.witness_against(query, adversary)
            if witness is None:
                raise VerificationError(
                    "internal: incremental session and scratch engine disagree"
                )
            predicted = query.predict_single(witness)
            if predicted == query.true_label or not query.misclassified(witness):
                raise VerificationError(
                    "internal: witness failed the exact recheck"
                )
            return VerificationResult(
                VerificationStatus.VULNERABLE,
                witness=witness,
                predicted_label=predicted,
                engine=self.name,
                nodes_explored=self.nodes_explored,
            )
        return VerificationResult(
            VerificationStatus.ROBUST,
            engine=self.name,
            nodes_explored=self.nodes_explored,
        )

    # -- per-adversary lazy loop -----------------------------------------------

    def _rung_satisfiable(self, query: ScaledQuery, adversary: int, bounds) -> bool:
        """Whether some noise vector in this rung's box flips to ``adversary``."""
        state = self._states.get(adversary)
        if state is None:
            state = self._encode_adversary(query, adversary)
            self._states[adversary] = state
        if state.dead:
            return False

        rung_key = (
            tuple(int(v) for v in query.low),
            tuple(int(v) for v in query.high),
        )
        rung_literal = state.rung_literals.get(rung_key)
        if rung_literal is None:
            rung_literal = state.sat.new_var()
            state.rung_literals[rung_key] = rung_literal

        simplex = state.simplex
        simplex.push()
        depth = 1
        try:
            rung_origin: dict[BoundRef, int] = {}
            conflict = self._assert_rung_bounds(
                state, query, bounds, rung_literal, rung_origin
            )
            if conflict is not None:
                # The rung's own bounds clash with permanent structure:
                # this rung is unsatisfiable (and learning the clause —
                # or marking the adversary dead — still applies).
                self._handle_conflict(
                    state, conflict.conflict, rung_origin, {}, rung_literal
                )
                return False

            assumptions = [rung_literal]
            for neuron in state.neurons:
                low = bounds[neuron.layer][0][neuron.index]
                high = bounds[neuron.layer][1][neuron.index]
                if low >= 0:
                    assumptions.append(neuron.phase_bool)
                elif high <= 0:
                    assumptions.append(-neuron.phase_bool)

            while True:
                self.nodes_explored += 1
                if self.nodes_explored > self.config.node_budget:
                    raise BudgetExceededError(
                        f"ladder session exceeded {self.config.node_budget} nodes",
                        budget=self.config.node_budget,
                    )
                result = state.sat.solve(assumptions=assumptions)
                if result.status is not SatStatus.SAT:
                    if result.failed_assumptions is None:
                        state.dead = True
                    return False
                model = result.model
                simplex.push()
                depth += 1
                phase_origin: dict[BoundRef, int] = {}
                conflict = None
                for neuron in state.neurons:
                    # A conflicting SimplexResult is falsy (feasible is
                    # False), so sequence the two asserts explicitly.
                    if model[neuron.phase_bool]:
                        # Active: n >= 0, a - n <= 0 (with a >= n permanent).
                        conflict = self._attempt(
                            simplex, neuron.pre_var, BoundKind.LOWER, 0,
                            neuron.phase_bool, phase_origin,
                        )
                        if conflict is None:
                            conflict = self._attempt(
                                simplex, neuron.diff_var, BoundKind.UPPER, 0,
                                neuron.phase_bool, phase_origin,
                            )
                    else:
                        # Inactive: n <= 0, a <= 0 (with a >= 0 permanent).
                        conflict = self._attempt(
                            simplex, neuron.pre_var, BoundKind.UPPER, 0,
                            -neuron.phase_bool, phase_origin,
                        )
                        if conflict is None:
                            conflict = self._attempt(
                                simplex, neuron.act_var, BoundKind.UPPER, 0,
                                -neuron.phase_bool, phase_origin,
                            )
                    if conflict is not None:
                        break

                if conflict is None:
                    check = simplex.check()
                    if check.feasible:
                        fractional = [
                            v
                            for v in state.noise_vars
                            if check.assignment[v].denominator != 1
                        ]
                        feasible = True
                        if fractional:
                            bb = solve_integer_feasibility(
                                simplex,
                                state.noise_vars,
                                node_budget=self.config.node_budget,
                            )
                            feasible = bb.feasible
                        if feasible:
                            return True
                        # LP-feasible but integer-infeasible: block this
                        # exact phase assignment under this rung.
                        blocking = [-rung_literal] + [
                            -n.phase_bool if model[n.phase_bool] else n.phase_bool
                            for n in state.neurons
                        ]
                        simplex.pop()
                        depth -= 1
                        state.theory_conflicts += 1
                        state.sat.add_clause(blocking)
                        continue
                    conflict = check

                simplex.pop()
                depth -= 1
                if not self._handle_conflict(
                    state, conflict.conflict, rung_origin, phase_origin, rung_literal
                ):
                    return False
        finally:
            while depth > 0:
                simplex.pop()
                depth -= 1

    def _handle_conflict(
        self, state, core, rung_origin, phase_origin, rung_literal
    ) -> bool:
        """Learn a blocking clause from a simplex core.

        Returns False when the core involves only permanent bounds — the
        structural encoding alone is infeasible, so the adversary is dead
        at every rung.  (The caller treats False as "stop: unreachable".)
        """
        state.theory_conflicts += 1
        literals = set()
        for ref in core:
            origin = phase_origin.get(ref)
            if origin is None:
                origin = rung_origin.get(ref)
            if origin is not None:
                literals.add(-origin)
        if not literals:
            state.dead = True
            return False
        state.sat.add_clause(sorted(literals))
        return True

    # -- encoding ----------------------------------------------------------------

    @staticmethod
    def _attempt(simplex, var, kind, bound, origin, origin_map) -> object | None:
        """Assert one bound, recording ``origin`` when it becomes active.

        Mirrors the origin-tracking pattern of
        :meth:`repro.smt.dpllt.DpllTSolver._assert_constraint`: the origin
        is recorded when the bound actually tightened (it now *owns* the
        current bound) or when the assertion itself conflicts.
        """
        ref = BoundRef(var, kind)
        index = 0 if kind is BoundKind.LOWER else 1
        before = simplex.bounds(var)[index]
        if kind is BoundKind.LOWER:
            conflict = simplex.assert_lower(var, bound)
        else:
            conflict = simplex.assert_upper(var, bound)
        if conflict is not None:
            origin_map[ref] = origin
            return conflict
        if simplex.bounds(var)[index] != before:
            origin_map[ref] = origin
        return None

    def _assert_rung_bounds(
        self, state, query, bounds, rung_literal, origin_map
    ):
        """Install this rung's retractable bounds inside the open frame."""
        simplex = state.simplex
        for var, lo, hi in zip(state.noise_vars, query.low, query.high):
            conflict = self._attempt(
                simplex, var, BoundKind.LOWER, int(lo), rung_literal, origin_map
            )
            if conflict is None:
                conflict = self._attempt(
                    simplex, var, BoundKind.UPPER, int(hi), rung_literal, origin_map
                )
            if conflict is not None:
                return conflict
        for neuron in state.neurons:
            high = bounds[neuron.layer][1][neuron.index]
            conflict = self._attempt(
                simplex,
                neuron.act_var,
                BoundKind.UPPER,
                max(0, high),
                rung_literal,
                origin_map,
            )
            if conflict is not None:
                return conflict
        return None

    def _encode_adversary(self, query: ScaledQuery, adversary: int) -> _AdversaryState:
        """Structural (rung-independent) encoding, built exactly once.

        The layer structure mirrors :class:`SmtVerifier`'s per-adversary
        encoding; only the noise-box bounds and the interval activation
        caps are deferred to the per-rung frame.
        """
        sat = CdclSolver()
        simplex = Simplex()
        one = simplex.new_var()
        simplex.assert_lower(one, 1)
        simplex.assert_upper(one, 1)

        noise_vars = [simplex.new_var() for _ in range(query.num_inputs)]
        neurons: list[_SessionNeuron] = []

        previous_acts = None
        final_pre_vars: list[int] = []
        for layer_index in range(query.num_layers):
            weight = query.weights[layer_index]
            bias = query.biases[layer_index]
            layer_pre_vars = []
            for j in range(weight.shape[0]):
                if layer_index == 0:
                    combination = {one: 0}
                    constant = int(bias[j])
                    for i in range(query.num_inputs):
                        coeff = int(weight[j][i])
                        constant += coeff * 100 * int(query.x[i])
                        combination[noise_vars[i]] = (
                            combination.get(noise_vars[i], 0)
                            + coeff * int(query.x[i])
                        )
                    combination[one] = constant
                else:
                    combination = {one: int(bias[j])}
                    for i, act in enumerate(previous_acts):
                        combination[act] = int(weight[j][i])
                pre = simplex.define(combination)
                layer_pre_vars.append(pre)

            if layer_index == query.num_layers - 1:
                final_pre_vars = layer_pre_vars
                break

            acts = []
            for j, pre in enumerate(layer_pre_vars):
                act = simplex.new_var()
                diff = simplex.define({act: 1, pre: -1})
                simplex.assert_lower(act, 0)  # a >= 0
                simplex.assert_lower(diff, 0)  # a >= n (triangle)
                neurons.append(
                    _SessionNeuron(
                        pre_var=pre,
                        act_var=act,
                        diff_var=diff,
                        layer=layer_index,
                        index=j,
                        phase_bool=sat.new_var(),
                    )
                )
                acts.append(act)
            previous_acts = acts

        # Misclassification margin: N_adv - N_true >= threshold, permanent
        # (the threshold depends only on the label pair, never the rung).
        margin = simplex.define(
            {final_pre_vars[adversary]: 1, final_pre_vars[query.true_label]: -1}
        )
        state = _AdversaryState(
            sat=sat, simplex=simplex, noise_vars=noise_vars, neurons=neurons
        )
        if (
            simplex.assert_lower(margin, query.misclass_threshold(adversary))
            is not None
        ):
            state.dead = True
        return state
