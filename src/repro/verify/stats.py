"""Per-engine execution statistics and the portfolio stage scheduler.

Every :class:`~repro.verify.portfolio.PortfolioVerifier` stage (and every
bulk pass of the frontier plane in :mod:`repro.verify.batch`) records how
often it was attempted, how often it *decided* the query, and how much
wall time it spent.  The table serves three purposes:

- **Observability** — the CLI prints an engine-utilisation table per run.
- **Scheduling** — :meth:`EngineStats.incomplete_order` picks the order
  of the incomplete stages that minimises expected time for the observed
  workload (a cheap-first portfolio is only cheap when the cheap stages
  actually decide things).
- **Persistence** — :meth:`snapshot` / :meth:`merge_payload` round-trip
  the table through the :class:`~repro.runtime.store.CacheStore` header,
  so a warm-started run schedules from day-one statistics.

Scheduling is *verdict-preserving by construction*.  The incomplete
stages can only err on the UNKNOWN side (interval proves ROBUST or
passes; the falsifiers find a witness or pass), so any execution order
yields the same verdict.  Witness identity is pinned by one constraint:
the corner falsifier always runs before the random falsifier, so a
VULNERABLE verdict always carries the witness the canonical
interval → corner → random → complete order would have produced.  The
scheduler therefore only moves the (witness-free) interval stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical incomplete-stage order (the pre-scheduler portfolio).
CANONICAL_INCOMPLETE: tuple[str, ...] = ("interval", "corner", "random")

#: Stage orders the scheduler may pick from.  The corner falsifier
#: always precedes the random one (witness-selection rule); only the
#: interval stage floats.  Canonical order first: deterministic tie-break.
_CANDIDATE_ORDERS: tuple[tuple[str, ...], ...] = (
    ("interval", "corner", "random"),
    ("corner", "interval", "random"),
    ("corner", "random", "interval"),
)

#: Names counted as complete-engine invocations.  ``session`` is the
#: incremental ladder session (:mod:`repro.verify.incremental`) — the
#: warm counterpart of the from-scratch ``smt`` stage.
COMPLETE_STAGES: tuple[str, ...] = ("exhaustive", "smt", "session", "milp")

#: Attempts a stage needs before its observed rates steer the schedule.
_MIN_SAMPLES = 16


@dataclass
class StageStat:
    """Aggregate counters for one engine stage."""

    attempts: int = 0
    decided: int = 0
    wall_s: float = 0.0

    @property
    def decide_rate(self) -> float:
        return self.decided / self.attempts if self.attempts else 0.0

    @property
    def mean_wall_s(self) -> float:
        return self.wall_s / self.attempts if self.attempts else 0.0


@dataclass
class EngineStats:
    """Decide-rate and wall-time table over all portfolio stages."""

    stages: dict[str, StageStat] = field(default_factory=dict)

    def stage(self, name: str) -> StageStat:
        stat = self.stages.get(name)
        if stat is None:
            stat = self.stages[name] = StageStat()
        return stat

    def record(self, name: str, decided: bool, wall_s: float) -> None:
        """Fold one attempt in."""
        self.record_bulk(name, 1, int(decided), wall_s)

    def record_bulk(self, name: str, attempts: int, decided: int, wall_s: float) -> None:
        """Fold one bulk pass over ``attempts`` queries in."""
        stat = self.stage(name)
        stat.attempts += attempts
        stat.decided += decided
        stat.wall_s += wall_s

    # -- scheduling ------------------------------------------------------------

    def incomplete_order(self) -> tuple[str, ...]:
        """Incomplete-stage order minimising expected time per query.

        Expected cost of an order is ``Σ_i t_i · Π_{j<i} (1 - r_j)`` with
        ``t`` the observed mean wall time and ``r`` the observed decide
        rate (stage independence as the standard approximation).  Stages
        without :data:`_MIN_SAMPLES` attempts keep the canonical order —
        cold runs schedule exactly like the pre-scheduler portfolio.
        """
        stats = {name: self.stages.get(name) for name in CANONICAL_INCOMPLETE}
        if any(s is None or s.attempts < _MIN_SAMPLES for s in stats.values()):
            return CANONICAL_INCOMPLETE
        best = CANONICAL_INCOMPLETE
        best_cost = None
        for order in _CANDIDATE_ORDERS:
            cost, undecided = 0.0, 1.0
            for name in order:
                cost += undecided * stats[name].mean_wall_s
                undecided *= 1.0 - stats[name].decide_rate
            if best_cost is None or cost < best_cost:
                best, best_cost = order, cost
        return best

    # -- aggregates -------------------------------------------------------------

    def complete_calls(self) -> int:
        """Complete-engine invocations recorded so far."""
        return sum(
            self.stages[name].attempts for name in COMPLETE_STAGES if name in self.stages
        )

    def total_wall_s(self) -> float:
        return sum(stat.wall_s for stat in self.stages.values())

    # -- persistence / bulk transfer -------------------------------------------

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-container payload (disk store header, worker shipping)."""
        return {
            name: {
                "attempts": stat.attempts,
                "decided": stat.decided,
                "wall_s": stat.wall_s,
            }
            for name, stat in self.stages.items()
        }

    def merge(self, other: "EngineStats") -> None:
        for name, stat in other.stages.items():
            self.record_bulk(name, stat.attempts, stat.decided, stat.wall_s)

    def merge_payload(self, payload) -> None:
        """Fold a :meth:`snapshot`-shaped payload in, ignoring malformed data.

        The payload may come from a disk file; stats are advisory (they
        steer scheduling, never verdicts), so bad shapes are dropped
        rather than raised.
        """
        if not isinstance(payload, dict):
            return
        for name, row in payload.items():
            if not isinstance(name, str) or not isinstance(row, dict):
                continue
            attempts, decided, wall_s = (
                row.get("attempts"), row.get("decided"), row.get("wall_s")
            )
            if (
                isinstance(attempts, int)
                and not isinstance(attempts, bool)
                and isinstance(decided, int)
                and not isinstance(decided, bool)
                and isinstance(wall_s, (int, float))
                and not isinstance(wall_s, bool)
                and 0 <= decided <= attempts
                and wall_s >= 0
            ):
                self.record_bulk(name, attempts, decided, float(wall_s))

    def delta_since(self, baseline: dict[str, dict[str, float]]) -> dict:
        """Snapshot of everything recorded after ``baseline`` was taken."""
        delta: dict[str, dict[str, float]] = {}
        for name, row in self.snapshot().items():
            base = baseline.get(name, {"attempts": 0, "decided": 0, "wall_s": 0.0})
            attempts = row["attempts"] - base["attempts"]
            decided = row["decided"] - base["decided"]
            wall_s = row["wall_s"] - base["wall_s"]
            if attempts or decided or wall_s:
                delta[name] = {
                    "attempts": attempts, "decided": decided, "wall_s": wall_s
                }
        return delta

    # -- reporting ---------------------------------------------------------------

    def describe_table(self) -> str:
        """Engine-utilisation table (CLI report path)."""
        if not self.stages:
            return "engine utilisation: no engine activity recorded"
        header = f"{'stage':<12}{'attempts':>10}{'decided':>10}{'rate':>8}{'wall':>10}{'mean':>10}"
        lines = ["engine utilisation:", "  " + header]
        order = [n for n in (*CANONICAL_INCOMPLETE, *COMPLETE_STAGES) if n in self.stages]
        order += [n for n in sorted(self.stages) if n not in order]
        for name in order:
            stat = self.stages[name]
            lines.append(
                "  "
                + f"{name:<12}{stat.attempts:>10}{stat.decided:>10}"
                + f"{stat.decide_rate:>8.0%}{stat.wall_s:>9.2f}s"
                + f"{stat.mean_wall_s * 1000:>8.2f}ms"
            )
        lines.append(
            f"  scheduler order: {' -> '.join(self.incomplete_order())} -> complete"
        )
        return "\n".join(lines)
