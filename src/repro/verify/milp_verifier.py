"""Big-M MILP verification on scipy's HiGHS LP solver.

The MIPVerify/Tjeng-et-al. baseline: ReLUs get binary phase indicators
with interval-derived big-M constants, the LP relaxation maximises the
misclassification margin, and branch & bound splits on fractional
indicators, then on fractional noise variables.

Floating point makes this engine *practically* complete: every candidate
witness is re-checked by the exact integer evaluator before it is
reported, and a prune that happens inside the float tolerance band flags
the final answer as UNKNOWN instead of ROBUST.  The exact
:class:`~repro.verify.smt_verifier.SmtVerifier` remains the judge; the
two are compared in the engine-ablation benchmark (E8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from ..config import VerifierConfig
from ..errors import BudgetExceededError
from .encoder import ScaledQuery
from .result import VerificationResult, VerificationStatus

_TOL = 1e-6
_INT_TOL = 1e-6


@dataclass(frozen=True)
class _Node:
    """B&B node: variable-bound overrides (index → (low, high))."""

    overrides: tuple[tuple[int, tuple[float, float]], ...]

    def child(self, index: int, bounds: tuple[float, float]) -> "_Node":
        return _Node(self.overrides + ((index, bounds),))


class MilpVerifier:
    """Branch & bound over the big-M LP relaxation."""

    name = "milp"

    def __init__(self, config: VerifierConfig | None = None):
        self.config = config or VerifierConfig()
        self.nodes_explored = 0

    def verify(self, query: ScaledQuery) -> VerificationResult:
        self.nodes_explored = 0
        boundary_uncertain = False
        for adversary in range(query.num_outputs):
            if adversary == query.true_label:
                continue
            witness, uncertain = self._verify_against(query, adversary)
            boundary_uncertain = boundary_uncertain or uncertain
            if witness is not None:
                return VerificationResult(
                    VerificationStatus.VULNERABLE,
                    witness=witness,
                    predicted_label=query.predict_single(witness),
                    engine=self.name,
                    nodes_explored=self.nodes_explored,
                )
        status = (
            VerificationStatus.UNKNOWN
            if boundary_uncertain
            else VerificationStatus.ROBUST
        )
        return VerificationResult(
            status, engine=self.name, nodes_explored=self.nodes_explored
        )

    # -- model construction -------------------------------------------------------

    def _build(self, query: ScaledQuery, adversary: int):
        """LP data in normalised units.

        The scaled-integer pipeline reaches magnitudes around 10^12, far
        outside HiGHS's comfortable range, so each layer is divided by its
        interval magnitude — conditioning the LP while keeping all
        constraints algebraically equivalent.
        """
        bounds_int = query.layer_bounds()
        norms = []
        for lows, highs in bounds_int:
            magnitude = max(1.0, float(max(abs(v) for v in lows + highs)))
            norms.append(magnitude)

        num_inputs = query.num_inputs
        hidden_sizes = query.hidden_sizes()

        # Variable layout: [p | n_1 a_1 | n_2 a_2 | … | n_L | delta…]
        index = {}
        cursor = 0
        for i in range(num_inputs):
            index[("p", i)] = cursor
            cursor += 1
        for l, size in enumerate(hidden_sizes):
            for j in range(size):
                index[("n", l, j)] = cursor
                cursor += 1
            for j in range(size):
                index[("a", l, j)] = cursor
                cursor += 1
        for k in range(query.num_outputs):
            index[("o", k)] = cursor
            cursor += 1
        ambiguous = []
        for l, size in enumerate(hidden_sizes):
            lows, highs = bounds_int[l]
            for j in range(size):
                if lows[j] < 0 < highs[j]:
                    index[("d", l, j)] = cursor
                    ambiguous.append((l, j))
                    cursor += 1
        total = cursor

        a_eq_rows, b_eq = [], []
        a_ub_rows, b_ub = [], []

        def row():
            return np.zeros(total)

        # n_1 = (b + Σ W·x·100)/norm_0 + Σ (W·x/norm_0)·p
        w0 = np.asarray(query.weights[0], dtype=np.float64)
        b0 = np.asarray(query.biases[0], dtype=np.float64)
        x = query.x.astype(np.float64)
        layer_count = len(hidden_sizes)
        for j in range(w0.shape[0] if layer_count else 0):
            r = row()
            r[index[("n", 0, j)]] = 1.0
            for i in range(num_inputs):
                r[index[("p", i)]] = -w0[j, i] * x[i] / norms[0]
            a_eq_rows.append(r)
            b_eq.append((b0[j] + 100.0 * float(w0[j] @ x)) / norms[0])

        # n_{l+1} = (b + W·a_l·norm_l)/norm_{l+1}
        for l in range(1, layer_count):
            w = np.asarray(query.weights[l], dtype=np.float64)
            b = np.asarray(query.biases[l], dtype=np.float64)
            for j in range(w.shape[0]):
                r = row()
                r[index[("n", l, j)]] = 1.0
                for i in range(w.shape[1]):
                    r[index[("a", l - 1, i)]] = -w[j, i] * norms[l - 1] / norms[l]
                a_eq_rows.append(r)
                b_eq.append(b[j] / norms[l])

        # Output layer.
        wl = np.asarray(query.weights[-1], dtype=np.float64)
        bl = np.asarray(query.biases[-1], dtype=np.float64)
        for k in range(query.num_outputs):
            r = row()
            r[index[("o", k)]] = 1.0
            if layer_count:
                for i in range(wl.shape[1]):
                    r[index[("a", layer_count - 1, i)]] = (
                        -wl[k, i] * norms[layer_count - 1] / norms[-1]
                    )
                b_eq.append(bl[k] / norms[-1])
            else:
                for i in range(num_inputs):
                    r[index[("p", i)]] = -wl[k, i] * x[i] / norms[-1]
                b_eq.append((bl[k] + 100.0 * float(wl[k] @ x)) / norms[-1])
            a_eq_rows.append(r)

        # ReLU constraints per hidden neuron.
        for l, size in enumerate(hidden_sizes):
            lows, highs = bounds_int[l]
            for j in range(size):
                low_f = lows[j] / norms[l]
                high_f = highs[j] / norms[l]
                if lows[j] >= 0:
                    r = row()  # a = n
                    r[index[("a", l, j)]] = 1.0
                    r[index[("n", l, j)]] = -1.0
                    a_eq_rows.append(r)
                    b_eq.append(0.0)
                    continue
                if highs[j] <= 0:
                    r = row()  # a = 0
                    r[index[("a", l, j)]] = 1.0
                    a_eq_rows.append(r)
                    b_eq.append(0.0)
                    continue
                # a >= n  →  n - a <= 0
                r = row()
                r[index[("n", l, j)]] = 1.0
                r[index[("a", l, j)]] = -1.0
                a_ub_rows.append(r)
                b_ub.append(0.0)
                # a <= n - low·(1-δ)  →  a - n - low·δ <= -low
                r = row()
                r[index[("a", l, j)]] = 1.0
                r[index[("n", l, j)]] = -1.0
                r[index[("d", l, j)]] = -(-low_f)  # = low_f
                a_ub_rows.append(r)
                b_ub.append(-low_f)
                # a <= high·δ  →  a - high·δ <= 0
                r = row()
                r[index[("a", l, j)]] = 1.0
                r[index[("d", l, j)]] = -high_f
                a_ub_rows.append(r)
                b_ub.append(0.0)

        # Objective: maximise margin = o_adv - o_true.
        objective = np.zeros(total)
        objective[index[("o", adversary)]] = -1.0
        objective[index[("o", query.true_label)]] = 1.0

        # Base bounds.
        base_bounds: list[tuple[float, float]] = [(0.0, 0.0)] * total
        for i in range(num_inputs):
            base_bounds[index[("p", i)]] = (float(query.low[i]), float(query.high[i]))
        for l, size in enumerate(hidden_sizes):
            lows, highs = bounds_int[l]
            for j in range(size):
                base_bounds[index[("n", l, j)]] = (
                    lows[j] / norms[l],
                    highs[j] / norms[l],
                )
                base_bounds[index[("a", l, j)]] = (0.0, max(0.0, highs[j] / norms[l]))
        out_lows, out_highs = bounds_int[-1]
        for k in range(query.num_outputs):
            base_bounds[index[("o", k)]] = (
                out_lows[k] / norms[-1],
                out_highs[k] / norms[-1],
            )
        for l, j in ambiguous:
            base_bounds[index[("d", l, j)]] = (0.0, 1.0)

        threshold = query.misclass_threshold(adversary) / norms[-1]
        return {
            "A_eq": np.array(a_eq_rows) if a_eq_rows else None,
            "b_eq": np.array(b_eq) if b_eq else None,
            "A_ub": np.array(a_ub_rows) if a_ub_rows else None,
            "b_ub": np.array(b_ub) if b_ub else None,
            "objective": objective,
            "bounds": base_bounds,
            "index": index,
            "ambiguous": ambiguous,
            "threshold": threshold,
        }

    # -- branch & bound -------------------------------------------------------------

    def _verify_against(self, query: ScaledQuery, adversary: int):
        model = self._build(query, adversary)
        index = model["index"]
        stack = [_Node(())]
        uncertain = False

        while stack:
            node = stack.pop()
            self.nodes_explored += 1
            if self.nodes_explored > self.config.node_budget:
                raise BudgetExceededError(
                    f"MILP verifier exceeded {self.config.node_budget} nodes",
                    budget=self.config.node_budget,
                )
            bounds = list(model["bounds"])
            for var_index, var_bounds in node.overrides:
                bounds[var_index] = var_bounds
            result = linprog(
                model["objective"],
                A_ub=model["A_ub"],
                b_ub=model["b_ub"],
                A_eq=model["A_eq"],
                b_eq=model["b_eq"],
                bounds=bounds,
                method="highs",
            )
            if result.status == 2:  # infeasible
                continue
            if result.status != 0:
                uncertain = True
                continue
            margin = -result.fun
            if margin < model["threshold"] - _TOL:
                if margin > model["threshold"] - 10 * _TOL:
                    uncertain = True  # pruned inside the tolerance band
                continue

            solution = result.x
            # Branch on the most fractional indicator first.
            split = self._fractional_delta(model, solution)
            if split is not None:
                var_index = index[("d", *split)]
                stack.append(node.child(var_index, (0.0, 0.0)))
                stack.append(node.child(var_index, (1.0, 1.0)))
                continue
            split_p = self._fractional_noise(query, index, solution)
            if split_p is not None:
                i, value = split_p
                var_index = index[("p", i)]
                lo, hi = bounds[var_index]
                stack.append(node.child(var_index, (lo, float(np.floor(value)))))
                stack.append(node.child(var_index, (float(np.ceil(value)), hi)))
                continue

            # Integral candidate: exact recheck.
            candidate = tuple(
                int(round(solution[index[("p", i)]])) for i in range(query.num_inputs)
            )
            if query.misclassified(candidate):
                return candidate, uncertain
            # Float artefact: exclude the point and keep searching.
            uncertain = True
            for child in self._exclude_point(query, index, bounds, node, candidate):
                stack.append(child)
        return None, uncertain

    def _fractional_delta(self, model, solution):
        worst, worst_gap = None, _INT_TOL
        for l, j in model["ambiguous"]:
            value = solution[model["index"][("d", l, j)]]
            gap = abs(value - round(value))
            if gap > worst_gap:
                worst, worst_gap = (l, j), gap
        return worst

    def _fractional_noise(self, query, index, solution):
        for i in range(query.num_inputs):
            value = solution[index[("p", i)]]
            if abs(value - round(value)) > _INT_TOL:
                return i, value
        return None

    def _exclude_point(self, query, index, bounds, node, point):
        """Standard integer-point exclusion: per-coordinate disjunction."""
        children = []
        prefix = node
        for i, value in enumerate(point):
            var_index = index[("p", i)]
            lo, hi = bounds[var_index]
            if value - 1 >= lo:
                children.append(prefix.child(var_index, (lo, float(value - 1))))
            if value + 1 <= hi:
                children.append(prefix.child(var_index, (float(value + 1), hi)))
            prefix = prefix.child(var_index, (float(value), float(value)))
        return children
