"""LTL handling: the safety fragment used by FANNet.

Every property in the paper's methodology is an invariant (``G p`` over a
propositional ``p`` — P1, P2 and P3 in Fig. 2).  This module normalises
the LTL formulas the parser accepts into invariant expressions when they
fall in that fragment, and reports the rest as unsupported rather than
guessing.
"""

from __future__ import annotations

from ..errors import ModelCheckingError
from ..smv.ast import (
    BinOp,
    Expr,
    LtlBin,
    LtlExpr,
    LtlProp,
    LtlUnary,
    UnaryOp,
)


def ltl_to_invariant(formula: LtlExpr) -> Expr:
    """Convert ``G p`` (with propositional ``p``) into the invariant ``p``.

    Boolean structure *inside* the G is folded back into a propositional
    expression; nested temporal operators raise
    :class:`ModelCheckingError`.
    """
    if isinstance(formula, LtlUnary) and formula.op == "G":
        return _propositional(formula.operand)
    raise ModelCheckingError(
        "only G <propositional> formulas are supported by the invariant engines"
    )


def _propositional(formula: LtlExpr) -> Expr:
    if isinstance(formula, LtlProp):
        return formula.expr
    if isinstance(formula, LtlUnary):
        if formula.op == "!":
            return UnaryOp("!", _propositional(formula.operand))
        raise ModelCheckingError(
            f"temporal operator {formula.op!r} inside G is not in the safety fragment"
        )
    if isinstance(formula, LtlBin):
        if formula.op in ("&", "|", "->"):
            return BinOp(
                formula.op, _propositional(formula.left), _propositional(formula.right)
            )
        raise ModelCheckingError(
            f"temporal operator {formula.op!r} inside G is not in the safety fragment"
        )
    raise ModelCheckingError(f"unknown LTL node {type(formula).__name__}")
