"""k-induction on top of the BMC unroller.

Proves invariants unboundedly:

- **base case**: no counterexample within ``k`` steps of the initial
  states (plain BMC);
- **inductive step**: no simple path of ``k+1`` states that satisfies the
  property everywhere except the last state.  Simple-path (distinctness)
  constraints make the method complete for finite-state systems as ``k``
  grows.
"""

from __future__ import annotations

from ..sat.solver import SatStatus
from ..smv.ast import Expr, SmvModule
from ..smv.printer import print_expression
from .bmc import ModuleUnroller
from .result import CheckResult, Verdict


class KInduction:
    """Incremental k-induction prover."""

    name = "k-induction"

    def __init__(self, max_k: int = 20, max_values: int = 4096):
        self.max_k = max_k
        self.max_values = max_values

    def check_invariant(self, module: SmvModule, prop: Expr) -> CheckResult:
        """HOLDS (proven), VIOLATED (with trace) or UNKNOWN (k exhausted)."""
        # Base-case engine: INIT-rooted unrolling.
        base = ModuleUnroller(module, self.max_values)
        base.encode_init(0)
        # Step-case engine: free initial state (no INIT constraint).
        step = ModuleUnroller(module, self.max_values)
        step.encode_state_skeleton(0)

        for k in range(self.max_k + 1):
            # Base: counterexample at exactly depth k?
            if k > 0:
                base.encode_transition(k - 1)
            bad = base.property_literal(prop, k, negate=True)
            base_result = base.solver.solve(assumptions=[bad])
            if base_result.status is SatStatus.SAT:
                return CheckResult(
                    Verdict.VIOLATED,
                    property_text=print_expression(prop),
                    counterexample=base.decode_trace(base_result.model, k),
                    engine=self.name,
                    bound_reached=k,
                )

            # Step: prop at 0..k, transitions to k+1, ¬prop at k+1,
            # all k+2 states pairwise distinct.
            step.encode_transition(k)
            step.solver.add_clause([step.property_literal(prop, k, negate=False)])
            for earlier in range(k + 1):
                step.solver.add_clause([step.distinct_states(earlier, k + 1)])
            bad_step = step.property_literal(prop, k + 1, negate=True)
            step_result = step.solver.solve(assumptions=[bad_step])
            if step_result.status is not SatStatus.SAT:
                return CheckResult(
                    Verdict.HOLDS,
                    property_text=print_expression(prop),
                    engine=self.name,
                    bound_reached=k,
                )

        return CheckResult(
            Verdict.UNKNOWN,
            property_text=print_expression(prop),
            engine=self.name,
            bound_reached=self.max_k,
        )
