"""Model-checking engines (system S5 in DESIGN.md).

Three engines over the same SMV → FSM semantics, mirroring the BDD-vs-SAT
trade-off the paper discusses in §III-B:

- :class:`ExplicitChecker` — BFS over concrete states, best for the
  medium-sized noise FSMs of the case study;
- :class:`BddChecker` — symbolic reachability with binary-encoded state
  variables (PSPACE-style engine, wins on regular small-domain models);
- :class:`BmcChecker` — SAT-based bounded model checking with
  :class:`KInduction` on top for unbounded proofs.

All three return :class:`CheckResult` with a counterexample trace when
the property fails, and they agree with each other (cross-engine
agreement is part of the test suite).
"""

from .result import CheckResult, Trace, Verdict
from .explicit import ExplicitChecker
from .symbolic import FormulaAlgebra, ValueSetCompiler
from .bmc import BmcChecker
from .induction import KInduction
from .bdd_engine import BddChecker
from .ltl import ltl_to_invariant
from .simulate import Simulator

__all__ = [
    "CheckResult",
    "Trace",
    "Verdict",
    "ExplicitChecker",
    "BmcChecker",
    "KInduction",
    "BddChecker",
    "ValueSetCompiler",
    "FormulaAlgebra",
    "ltl_to_invariant",
    "Simulator",
]
