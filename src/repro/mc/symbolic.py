"""Finite-domain symbolic compilation shared by the SAT and BDD engines.

An SMV expression over finite-domain variables compiles to a *value set*:
a mapping ``value → guard`` where the guard is a formula (in whatever
boolean algebra the engine uses) that is true exactly when the expression
evaluates to that value.  Atoms are ``variable = value`` tests supplied by
the engine.

This is the step where the paper's state-space blowup becomes concrete:
arithmetic over wide ranges multiplies value-set sizes, so the compiler
enforces a hard cap and reports the overflow instead of silently
thrashing — the same reason the paper's nuXmv runs are confined to small
noise ranges.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, TypeVar

from ..errors import ModelCheckingError, StateSpaceLimitError
from ..smv.ast import (
    BinOp,
    BoolLit,
    Call,
    CaseExpr,
    Expr,
    Ident,
    IntLit,
    SetExpr,
    SmvModule,
    UnaryOp,
)

F = TypeVar("F")  # formula type of the algebra


class FormulaAlgebra(Generic[F]):
    """Boolean algebra interface engines implement.

    ``atom(var, value)`` must return the formula for ``var = value`` in
    the *current* step/frame the engine is encoding.
    """

    def true(self) -> F:
        raise NotImplementedError

    def false(self) -> F:
        raise NotImplementedError

    def conj(self, a: F, b: F) -> F:
        raise NotImplementedError

    def disj(self, a: F, b: F) -> F:
        raise NotImplementedError

    def neg(self, a: F) -> F:
        raise NotImplementedError

    def atom(self, var: str, value: Hashable) -> F:
        raise NotImplementedError


def _truncated_div(a: int, b: int) -> int:
    if b == 0:
        raise ModelCheckingError("division by zero in symbolic compilation")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


_INT_OPS: dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _truncated_div,
    "mod": lambda a, b: a - _truncated_div(a, b) * b,
}

_REL_OPS: dict[str, Callable] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ValueSetCompiler(Generic[F]):
    """Compiles expressions to ``{value: guard}`` maps over an algebra."""

    def __init__(
        self,
        module: SmvModule,
        algebra: FormulaAlgebra[F],
        max_values: int = 4096,
    ):
        self.module = module
        self.algebra = algebra
        self.max_values = max_values
        self._define_cache: dict[str, dict] = {}

    # -- public ---------------------------------------------------------------

    def compile(self, expr: Expr) -> dict:
        """Value-set of ``expr`` over current-state atoms."""
        value_set = self._compile(expr)
        return value_set

    def compile_bool(self, expr: Expr) -> F:
        """Formula for "expr is true" (expr must be boolean-valued)."""
        value_set = self._compile(expr)
        unexpected = [v for v in value_set if not isinstance(v, bool)]
        if unexpected:
            raise ModelCheckingError(
                f"boolean expression produced values {unexpected[:3]!r}"
            )
        return value_set.get(True, self.algebra.false())

    # -- internals ------------------------------------------------------------------

    def _guard_cap(self, value_set: dict) -> dict:
        if len(value_set) > self.max_values:
            raise StateSpaceLimitError(
                f"value set exceeded {self.max_values} entries — the model's "
                "arithmetic is too wide for symbolic encoding (use the "
                "arithmetic verification engines instead)"
            )
        return value_set

    def _merge(self, value_set: dict, value, guard: F) -> None:
        existing = value_set.get(value)
        value_set[value] = guard if existing is None else self.algebra.disj(existing, guard)

    def _compile(self, expr: Expr) -> dict:
        algebra = self.algebra
        if isinstance(expr, IntLit):
            return {expr.value: algebra.true()}
        if isinstance(expr, BoolLit):
            return {expr.value: algebra.true()}
        if isinstance(expr, Ident):
            name = expr.name
            if name in self.module.variables:
                domain = self.module.variables[name].values()
                return self._guard_cap(
                    {value: algebra.atom(name, value) for value in domain}
                )
            if name in self.module.defines:
                if name not in self._define_cache:
                    self._define_cache[name] = self._compile(self.module.defines[name])
                return self._define_cache[name]
            # Enum literal.
            return {name: algebra.true()}
        if isinstance(expr, UnaryOp):
            operand = self._compile(expr.operand)
            if expr.op == "-":
                return {-value: guard for value, guard in operand.items()}
            return {not value: guard for value, guard in operand.items()}
        if isinstance(expr, BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, Call):
            return self._compile_call(expr)
        if isinstance(expr, CaseExpr):
            return self._compile_case(expr)
        if isinstance(expr, SetExpr):
            # Non-deterministic choice: union of the item value-sets.
            result: dict = {}
            for item in expr.items:
                for value, guard in self._compile(item).items():
                    self._merge(result, value, guard)
            return self._guard_cap(result)
        raise ModelCheckingError(f"cannot compile node {type(expr).__name__}")

    def _compile_binop(self, expr: BinOp) -> dict:
        algebra = self.algebra
        op = expr.op
        if op in ("&", "|", "->", "<->"):
            left = self.compile_bool(expr.left)
            right = self.compile_bool(expr.right)
            if op == "&":
                true_guard = algebra.conj(left, right)
            elif op == "|":
                true_guard = algebra.disj(left, right)
            elif op == "->":
                true_guard = algebra.disj(algebra.neg(left), right)
            else:
                true_guard = algebra.disj(
                    algebra.conj(left, right),
                    algebra.conj(algebra.neg(left), algebra.neg(right)),
                )
            return {True: true_guard, False: algebra.neg(true_guard)}

        left_set = self._compile(expr.left)
        right_set = self._compile(expr.right)
        result: dict = {}
        if op in _INT_OPS:
            fn = _INT_OPS[op]
            for lv, lg in left_set.items():
                for rv, rg in right_set.items():
                    self._merge(result, fn(lv, rv), algebra.conj(lg, rg))
            return self._guard_cap(result)
        if op in _REL_OPS:
            fn = _REL_OPS[op]
            for lv, lg in left_set.items():
                for rv, rg in right_set.items():
                    self._merge(result, bool(fn(lv, rv)), algebra.conj(lg, rg))
            for polarity in (True, False):
                result.setdefault(polarity, algebra.false())
            return result
        raise ModelCheckingError(f"unknown operator {op!r}")

    def _compile_call(self, expr: Call) -> dict:
        algebra = self.algebra
        sets = [self._compile(argument) for argument in expr.args]
        if expr.func == "abs":
            return self._guard_cap(
                self._unary_table(sets[0], abs)
            )
        fn = max if expr.func == "max" else min
        current = sets[0]
        for other in sets[1:]:
            merged: dict = {}
            for lv, lg in current.items():
                for rv, rg in other.items():
                    self._merge(merged, fn(lv, rv), algebra.conj(lg, rg))
            current = self._guard_cap(merged)
        return current

    def _unary_table(self, value_set: dict, fn) -> dict:
        result: dict = {}
        for value, guard in value_set.items():
            self._merge(result, fn(value), guard)
        return result

    def _compile_case(self, expr: CaseExpr) -> dict:
        algebra = self.algebra
        result: dict = {}
        no_prior = algebra.true()
        for guard_expr, result_expr in expr.branches:
            guard = self.compile_bool(guard_expr)
            active = algebra.conj(no_prior, guard)
            for value, value_guard in self._compile(result_expr).items():
                self._merge(result, value, algebra.conj(active, value_guard))
            no_prior = algebra.conj(no_prior, algebra.neg(guard))
        return self._guard_cap(result)
