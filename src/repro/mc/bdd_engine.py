"""BDD-based symbolic invariant checking.

State variables are binary-encoded; current/next copies of each bit sit
on adjacent BDD levels (the interleaved order that keeps transition
relations small).  Reachability is the classic image-computation fixpoint
with frontier "onion rings" retained for counterexample reconstruction —
the engine family the paper describes as PSPACE-complete but
memory-bound (§III-B).
"""

from __future__ import annotations

from typing import Hashable

from ..bdd import BddManager
from ..errors import ModelCheckingError
from ..smv.ast import Expr, SmvModule
from ..smv.printer import print_expression
from ..smv.typecheck import check_module
from .result import CheckResult, Trace, Verdict
from .symbolic import FormulaAlgebra, ValueSetCompiler


class _BddAlgebra(FormulaAlgebra[int]):
    """Algebra producing BDD nodes; ``frame`` selects current (0) / next (1)."""

    def __init__(self, engine: "BddChecker", frame: int):
        self.engine = engine
        self.frame = frame

    def true(self) -> int:
        return 1

    def false(self) -> int:
        return 0

    def conj(self, a: int, b: int) -> int:
        return self.engine.manager.apply_and(a, b)

    def disj(self, a: int, b: int) -> int:
        return self.engine.manager.apply_or(a, b)

    def neg(self, a: int) -> int:
        return self.engine.manager.apply_not(a)

    def atom(self, var: str, value: Hashable) -> int:
        return self.engine.value_bdd(var, value, self.frame)


class BddChecker:
    """Symbolic reachability checker."""

    name = "bdd"

    def __init__(self, max_iterations: int = 100_000, max_values: int = 4096):
        self.max_iterations = max_iterations
        self.max_values = max_values
        self.manager = BddManager()
        self._bit_offset: dict[str, int] = {}
        self._bit_width: dict[str, int] = {}
        self._domains: dict[str, list] = {}

    # -- encoding ------------------------------------------------------------

    def _allocate_bits(self, module: SmvModule) -> None:
        offset = 0
        for name, spec in module.variables.items():
            domain = spec.values()
            width = max(1, (len(domain) - 1).bit_length())
            self._domains[name] = domain
            self._bit_offset[name] = offset
            self._bit_width[name] = width
            offset += 2 * width  # interleaved current/next
        self._total_levels = offset

    def _bit_level(self, var: str, bit: int, frame: int) -> int:
        return self._bit_offset[var] + 2 * bit + frame

    def value_bdd(self, var: str, value, frame: int) -> int:
        """BDD of ``var(frame) = value`` via its binary index encoding."""
        domain = self._domains[var]
        try:
            index = domain.index(value)
        except ValueError:
            raise ModelCheckingError(
                f"value {value!r} outside the domain of {var!r}"
            ) from None
        result = 1
        for bit in range(self._bit_width[var]):
            level = self._bit_level(var, bit, frame)
            literal = (
                self.manager.var(level).node
                if (index >> bit) & 1
                else self.manager.nvar(level).node
            )
            result = self.manager.apply_and(result, literal)
        return result

    def _domain_value_set(self, var: str) -> set:
        cache = getattr(self, "_domain_value_cache", None)
        if cache is None:
            cache = self._domain_value_cache = {}
        if var not in cache:
            cache[var] = set(self._domains[var])
        return cache[var]

    def _domain_bdd(self, var: str, frame: int) -> int:
        """Disjunction over all legal values (excludes unused encodings)."""
        result = 0
        for value in self._domains[var]:
            result = self.manager.apply_or(result, self.value_bdd(var, value, frame))
        return result

    # -- main ---------------------------------------------------------------------

    def check_invariant(self, module: SmvModule, prop: Expr) -> CheckResult:
        """Fixpoint reachability; exact like the explicit engine."""
        check_module(module)
        self.manager = BddManager()
        self._bit_offset.clear()
        self._bit_width.clear()
        self._domains.clear()
        self._allocate_bits(module)

        current_algebra = _BddAlgebra(self, frame=0)
        next_algebra = _BddAlgebra(self, frame=1)
        compiler = ValueSetCompiler(module, current_algebra, self.max_values)

        # INIT over current-frame bits.
        init = 1
        for name in module.variables:
            init_expr = module.assigns.init.get(name)
            if init_expr is None:
                init = self.manager.apply_and(init, self._domain_bdd(name, 0))
                continue
            value_set = compiler.compile(init_expr)
            options = 0
            for value, guard in value_set.items():
                if value not in self._domain_value_set(name):
                    continue  # overflow behind an unreachable guard
                options = self.manager.apply_or(
                    options,
                    self.manager.apply_and(self.value_bdd(name, value, 0), guard),
                )
            init = self.manager.apply_and(init, options)

        # TRANS over current → next bits.
        trans = 1
        for name in module.variables:
            next_expr = module.assigns.next.get(name)
            if next_expr is None:
                trans = self.manager.apply_and(trans, self._domain_bdd(name, 1))
                continue
            value_set = compiler.compile(next_expr)
            options = 0
            for value, guard in value_set.items():
                if value not in self._domain_value_set(name):
                    continue  # overflow behind an unreachable guard
                options = self.manager.apply_or(
                    options,
                    self.manager.apply_and(self.value_bdd(name, value, 1), guard),
                )
            trans = self.manager.apply_and(trans, options)

        good = compiler.compile_bool(prop)
        bad = self.manager.apply_not(good)

        current_levels = [
            self._bit_level(name, bit, 0)
            for name in module.variables
            for bit in range(self._bit_width[name])
        ]
        rename_next_to_current = {
            self._bit_level(name, bit, 1): self._bit_level(name, bit, 0)
            for name in module.variables
            for bit in range(self._bit_width[name])
        }

        # Onion-ring fixpoint.
        rings: list[int] = [init]
        reached = init
        iterations = 0
        while True:
            violation = self.manager.apply_and(rings[-1], bad)
            if violation != 0:
                trace = self._rebuild_trace(
                    module, rings, violation, trans, rename_next_to_current,
                    current_levels,
                )
                return CheckResult(
                    Verdict.VIOLATED,
                    property_text=print_expression(prop),
                    counterexample=trace,
                    engine=self.name,
                    states_explored=len(rings),
                )
            iterations += 1
            if iterations > self.max_iterations:
                raise ModelCheckingError("BDD fixpoint iteration budget exceeded")
            image = self.manager.rename(
                self.manager.exists(
                    current_levels, self.manager.apply_and(trans, reached)
                ),
                rename_next_to_current,
            )
            new = self.manager.apply_and(image, self.manager.apply_not(reached))
            if new == 0:
                return CheckResult(
                    Verdict.HOLDS,
                    property_text=print_expression(prop),
                    engine=self.name,
                    states_explored=len(rings),
                )
            rings.append(new)
            reached = self.manager.apply_or(reached, new)

    # -- counterexample reconstruction -------------------------------------------

    def _state_bdd(self, module: SmvModule, state: dict[str, object], frame: int) -> int:
        result = 1
        for name, value in state.items():
            result = self.manager.apply_and(
                result, self.value_bdd(name, value, frame)
            )
        return result

    def _pick_state(self, module: SmvModule, set_bdd: int) -> dict[str, object]:
        """Decode one concrete state out of a non-empty state set."""
        levels = [
            self._bit_level(name, bit, 0)
            for name in module.variables
            for bit in range(self._bit_width[name])
        ]
        assignment = next(self.manager.sat_iter(set_bdd, levels))
        state: dict[str, object] = {}
        for name in module.variables:
            index = 0
            for bit in range(self._bit_width[name]):
                if assignment[self._bit_level(name, bit, 0)]:
                    index |= 1 << bit
            domain = self._domains[name]
            if index >= len(domain):
                raise ModelCheckingError("decoded state outside variable domain")
            state[name] = domain[index]
        return state

    def _rebuild_trace(
        self,
        module: SmvModule,
        rings: list[int],
        violation: int,
        trans: int,
        rename_next_to_current: dict[int, int],
        current_levels: list[int],
    ) -> Trace:
        states = [self._pick_state(module, violation)]
        for ring_index in range(len(rings) - 2, -1, -1):
            successor_next = self._rename_to_next(module, states[0])
            predecessors = self.manager.apply_and(
                rings[ring_index],
                self.manager.exists(
                    list(rename_next_to_current),
                    self.manager.apply_and(trans, successor_next),
                ),
            )
            if predecessors == 0:
                raise ModelCheckingError("trace reconstruction lost the path")
            states.insert(0, self._pick_state(module, predecessors))
        return Trace(states)

    def _rename_to_next(self, module: SmvModule, state: dict[str, object]) -> int:
        return self._state_bdd(module, state, frame=1)
