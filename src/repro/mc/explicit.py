"""Explicit-state invariant checking with counterexample traces."""

from __future__ import annotations

from collections import deque

from ..errors import StateSpaceLimitError
from ..fsm import TransitionSystem
from ..smv.ast import Expr, SmvModule
from ..smv.printer import print_expression
from .result import CheckResult, Trace, Verdict


class ExplicitChecker:
    """BFS reachability checker.

    Finds a *shortest* counterexample when the invariant fails (BFS order),
    like nuXmv's ``check_invar`` with the forward strategy.
    """

    name = "explicit"

    def __init__(self, max_states: int = 1_000_000):
        self.max_states = max_states

    def check_invariant(self, module: SmvModule, prop: Expr) -> CheckResult:
        """Check that ``prop`` holds in every reachable state."""
        system = TransitionSystem(module)
        parents: dict[tuple, tuple | None] = {}
        frontier: deque[tuple] = deque()

        def trace_to(state: tuple) -> Trace:
            chain = []
            cursor: tuple | None = state
            while cursor is not None:
                chain.append(system.as_dict(cursor))
                cursor = parents[cursor]
            chain.reverse()
            return Trace(chain)

        for state in system.initial_states():
            if state in parents:
                continue
            parents[state] = None
            if not system.holds(prop, state):
                return CheckResult(
                    Verdict.VIOLATED,
                    property_text=print_expression(prop),
                    counterexample=trace_to(state),
                    engine=self.name,
                    states_explored=len(parents),
                )
            frontier.append(state)
            self._check_budget(parents)

        while frontier:
            state = frontier.popleft()
            for successor in system.successors(state):
                if successor in parents:
                    continue
                parents[successor] = state
                self._check_budget(parents)
                if not system.holds(prop, successor):
                    return CheckResult(
                        Verdict.VIOLATED,
                        property_text=print_expression(prop),
                        counterexample=trace_to(successor),
                        engine=self.name,
                        states_explored=len(parents),
                    )
                frontier.append(successor)

        return CheckResult(
            Verdict.HOLDS,
            property_text=print_expression(prop),
            engine=self.name,
            states_explored=len(parents),
        )

    def check_all_invariants(self, module: SmvModule) -> list[CheckResult]:
        """Check every INVARSPEC declared in the module."""
        return [self.check_invariant(module, spec) for spec in module.invarspecs]

    def _check_budget(self, parents) -> None:
        if len(parents) > self.max_states:
            raise StateSpaceLimitError(
                f"explicit checker exceeded {self.max_states} states"
            )
