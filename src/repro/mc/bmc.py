"""SAT-based bounded model checking.

Unrolls the transition relation ``INIT(0) ∧ TRANS(0,1) ∧ … ∧ TRANS(k-1,k)``
into CNF (one-hot state encoding, Tseitin transformation) and asks the
CDCL core for a state at depth ``k`` violating the invariant.  The
unrolling is incremental: each depth adds clauses to the same solver and
the violated-property constraint is enabled via an assumption selector —
the standard nuXmv/MiniSat BMC loop.
"""

from __future__ import annotations

from typing import Hashable

from ..errors import ModelCheckingError
from ..sat.formula import BoolExpr, Var
from ..sat.solver import CdclSolver, SatStatus
from ..sat.formula import TseitinEncoder
from ..smv.ast import Expr, SmvModule
from ..smv.printer import print_expression
from ..smv.typecheck import check_module
from .result import CheckResult, Trace, Verdict
from .symbolic import FormulaAlgebra, ValueSetCompiler


class StepAlgebra(FormulaAlgebra[BoolExpr]):
    """Formula algebra whose atoms are ``var@step = value`` booleans."""

    def __init__(self, step: int):
        self.step = step

    def true(self) -> BoolExpr:
        from ..sat.formula import TRUE

        return TRUE

    def false(self) -> BoolExpr:
        from ..sat.formula import FALSE

        return FALSE

    def conj(self, a, b):
        from ..sat.formula import And

        return And(a, b)

    def disj(self, a, b):
        from ..sat.formula import Or

        return Or(a, b)

    def neg(self, a):
        from ..sat.formula import Not

        return Not(a)

    def atom(self, var: str, value: Hashable) -> BoolExpr:
        return Var(atom_name(var, self.step, value))


def atom_name(var: str, step: int, value) -> str:
    return f"{var}@{step}={value!r}"


class ModuleUnroller:
    """Shared unrolling machinery for BMC and k-induction."""

    def __init__(self, module: SmvModule, max_values: int = 4096):
        check_module(module)
        self.module = module
        self.max_values = max_values
        self.encoder = TseitinEncoder()
        self.solver = CdclSolver()
        self._steps_encoded: set[int] = set()
        self._clause_cursor = 0

    # -- encoding ---------------------------------------------------------------

    def _flush_clauses(self) -> None:
        """Move newly created CNF clauses into the solver."""
        clauses = self.encoder.cnf.clauses
        self.solver.ensure_vars(self.encoder.cnf.num_vars)
        while self._clause_cursor < len(clauses):
            self.solver.add_clause(clauses[self._clause_cursor])
            self._clause_cursor += 1

    def encode_state_skeleton(self, step: int) -> None:
        """Exactly-one value per variable at ``step``."""
        if step in self._steps_encoded:
            return
        self._steps_encoded.add(step)
        for name, spec in self.module.variables.items():
            literals = [
                self.encoder.var_for(atom_name(name, step, value))
                for value in spec.values()
            ]
            self.encoder.cnf.add_clause(literals)
            for i in range(len(literals)):
                for j in range(i + 1, len(literals)):
                    self.encoder.cnf.add_clause([-literals[i], -literals[j]])
        self._flush_clauses()

    def encode_init(self, step: int = 0) -> None:
        """INIT constraints at ``step`` (normally 0)."""
        self.encode_state_skeleton(step)
        compiler = ValueSetCompiler(self.module, StepAlgebra(step), self.max_values)
        for name, expr in self.module.assigns.init.items():
            self._assert_assignment(name, expr, compiler, target_step=step)

    def encode_transition(self, step: int) -> None:
        """TRANS constraints from ``step`` to ``step + 1``."""
        self.encode_state_skeleton(step)
        self.encode_state_skeleton(step + 1)
        compiler = ValueSetCompiler(self.module, StepAlgebra(step), self.max_values)
        for name, expr in self.module.assigns.next.items():
            self._assert_assignment(name, expr, compiler, target_step=step + 1)

    def _assert_assignment(self, name, expr, compiler, target_step: int) -> None:
        from ..sat.formula import And, FALSE, Or, Var as FVar

        spec = self.module.variables[name]
        domain = set(spec.values())
        value_set = compiler.compile(expr)
        # Out-of-domain values (arithmetic overflow behind unreachable
        # guards) are dropped: a state whose only choices overflow has no
        # successor, matching the explicit engine's semantics.
        options = [
            And(FVar(atom_name(name, target_step, value)), guard)
            for value, guard in value_set.items()
            if value in domain
        ]
        self.encoder.assert_expr(Or(*options) if options else FALSE)
        self._flush_clauses()

    def property_literal(self, prop: Expr, step: int, negate: bool) -> int:
        """Tseitin literal for (¬)prop at ``step``."""
        self.encode_state_skeleton(step)
        compiler = ValueSetCompiler(self.module, StepAlgebra(step), self.max_values)
        formula = compiler.compile_bool(prop)
        literal = self.encoder.encode(formula)
        self._flush_clauses()
        return -literal if negate else literal

    def distinct_states(self, step_a: int, step_b: int) -> int:
        """Literal asserting state(step_a) ≠ state(step_b)."""
        from ..sat.formula import And, Not, Or, Var as FVar

        differences = []
        for name, spec in self.module.variables.items():
            for value in spec.values():
                differences.append(
                    And(
                        FVar(atom_name(name, step_a, value)),
                        Not(FVar(atom_name(name, step_b, value))),
                    )
                )
        literal = self.encoder.encode(Or(*differences))
        self._flush_clauses()
        return literal

    # -- decoding ------------------------------------------------------------------

    def decode_trace(self, model: dict[int, bool], length: int) -> Trace:
        states = []
        for step in range(length + 1):
            state: dict[str, object] = {}
            for name, spec in self.module.variables.items():
                for value in spec.values():
                    index = self.encoder.var_map.get(atom_name(name, step, value))
                    if index is not None and model.get(index, False):
                        state[name] = value
                        break
                else:
                    raise ModelCheckingError(
                        f"model assigns no value to {name}@{step}"
                    )
            states.append(state)
        return Trace(states)


class BmcChecker:
    """Iterative-deepening bounded model checker."""

    name = "bmc"

    def __init__(self, max_bound: int = 20, max_values: int = 4096):
        self.max_bound = max_bound
        self.max_values = max_values

    def check_invariant(self, module: SmvModule, prop: Expr) -> CheckResult:
        """Search for a counterexample up to ``max_bound`` steps.

        Returns VIOLATED with a trace, or UNKNOWN when the bound is
        exhausted (BMC alone cannot prove invariants — see
        :class:`KInduction`).
        """
        unroller = ModuleUnroller(module, self.max_values)
        unroller.encode_init(0)
        bound_reached = self.max_bound
        for bound in range(self.max_bound + 1):
            if bound > 0:
                unroller.encode_transition(bound - 1)
            bad_literal = unroller.property_literal(prop, bound, negate=True)
            result = unroller.solver.solve(assumptions=[bad_literal])
            if result.status is SatStatus.SAT:
                return CheckResult(
                    Verdict.VIOLATED,
                    property_text=print_expression(prop),
                    counterexample=unroller.decode_trace(result.model, bound),
                    engine=self.name,
                    bound_reached=bound,
                )
            if (
                result.status is SatStatus.UNSAT
                and result.failed_assumptions is None
            ):
                # The unrolled system itself is unsatisfiable — not merely
                # the bad-state assumption.  Deeper unrollings only add
                # constraints to a poisoned solver, so stop deepening.
                bound_reached = bound
                break
        return CheckResult(
            Verdict.UNKNOWN,
            property_text=print_expression(prop),
            engine=self.name,
            bound_reached=bound_reached,
        )
