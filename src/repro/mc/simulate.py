"""Random and guided simulation of SMV models.

nuXmv's ``pick_state`` / ``simulate`` workflow: execute the FSM
concretely to sanity-check a model before committing to exhaustive
checking.  Used by the examples and handy when writing new models; also
the quickest way to watch the NN noise FSM re-draw noise vectors.
"""

from __future__ import annotations

import random

from ..errors import ModelCheckingError
from ..fsm import TransitionSystem
from ..smv.ast import Expr, SmvModule
from .result import Trace


class Simulator:
    """Concrete executor for an SMV module."""

    def __init__(self, module: SmvModule, seed: int = 0):
        self.system = TransitionSystem(module)
        self.rng = random.Random(seed)

    def random_trace(self, steps: int) -> Trace:
        """One random execution of ``steps`` transitions.

        Raises :class:`ModelCheckingError` on a deadlocked state (a state
        whose every next-choice is out of domain).
        """
        state = self._pick(list(self.system.initial_states()), "initial state")
        states = [self.system.as_dict(state)]
        for _ in range(steps):
            successors = list(self.system.successors(state))
            state = self._pick(successors, "successor (deadlock)")
            states.append(self.system.as_dict(state))
        return Trace(states)

    def random_traces(self, count: int, steps: int) -> list[Trace]:
        """Independent random executions."""
        return [self.random_trace(steps) for _ in range(count)]

    def holds_on_trace(self, prop: Expr, trace: Trace) -> bool:
        """Does the propositional property hold in *every* trace state?"""
        names = self.system.var_names
        for state_dict in trace.states:
            state = tuple(state_dict[name] for name in names)
            if not self.system.holds(prop, state):
                return False
        return True

    def estimate_violation_rate(
        self, prop: Expr, traces: int = 100, steps: int = 5
    ) -> float:
        """Fraction of random traces violating the invariant.

        A statistical smoke test, not a proof — 0.0 here still needs a
        real engine to become a HOLDS verdict; a positive rate is a
        cheaply-found bug.
        """
        if traces <= 0:
            raise ModelCheckingError("traces must be positive")
        violations = sum(
            0 if self.holds_on_trace(prop, self.random_trace(steps)) else 1
            for _ in range(traces)
        )
        return violations / traces

    def _pick(self, options: list, what: str):
        if not options:
            raise ModelCheckingError(f"simulation stuck: no {what}")
        return self.rng.choice(options)
