"""Verdicts, traces and counterexamples shared by all engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Verdict(Enum):
    HOLDS = "holds"
    VIOLATED = "violated"
    UNKNOWN = "unknown"  # bounded engines that exhausted their bound


@dataclass
class Trace:
    """A finite execution: list of states (name → value dicts)."""

    states: list[dict[str, object]] = field(default_factory=list)

    def __len__(self):
        return len(self.states)

    def __getitem__(self, index):
        return self.states[index]

    @property
    def final(self) -> dict[str, object]:
        if not self.states:
            raise IndexError("empty trace")
        return self.states[-1]

    def format(self) -> str:
        """nuXmv-style textual counterexample."""
        lines = []
        previous: dict[str, object] = {}
        for step, state in enumerate(self.states):
            lines.append(f"-> State {step} <-")
            for name, value in state.items():
                if previous.get(name) != value:
                    rendered = "TRUE" if value is True else "FALSE" if value is False else value
                    lines.append(f"  {name} = {rendered}")
            previous = state
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of checking one property."""

    verdict: Verdict
    property_text: str = ""
    counterexample: Trace | None = None
    engine: str = ""
    states_explored: int = 0
    bound_reached: int = 0

    @property
    def holds(self) -> bool:
        return self.verdict is Verdict.HOLDS

    @property
    def violated(self) -> bool:
        return self.verdict is Verdict.VIOLATED

    def __repr__(self):
        return (
            f"CheckResult({self.verdict.value}, engine={self.engine!r}, "
            f"states={self.states_explored})"
        )
