"""CNF container and DIMACS round-trip.

Literals follow the DIMACS convention: variable ``v`` (1-based) appears as
``+v`` or ``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SatError


def _check_literal(literal: int) -> None:
    if not isinstance(literal, int) or isinstance(literal, bool) or literal == 0:
        raise SatError(f"invalid literal {literal!r}; literals are non-zero ints")


@dataclass
class Cnf:
    """A CNF formula: clause list plus variable count."""

    num_vars: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; duplicates are removed, tautologies dropped."""
        seen: set[int] = set()
        clause: list[int] = []
        for literal in literals:
            _check_literal(literal)
            if -literal in seen:
                return  # tautology: x ∨ ¬x
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
                self.num_vars = max(self.num_vars, abs(literal))
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Truth value of the CNF under a *total* assignment."""
        for clause in self.clauses:
            satisfied = False
            for literal in clause:
                var = abs(literal)
                if var not in assignment:
                    raise SatError(f"assignment missing variable {var}")
                if assignment[var] == (literal > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def copy(self) -> "Cnf":
        return Cnf(self.num_vars, [list(c) for c in self.clauses])


def to_dimacs(cnf: Cnf, comment: str = "") -> str:
    """Serialise to DIMACS CNF text."""
    lines = []
    if comment:
        for line in comment.splitlines():
            lines.append(f"c {line}")
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text: str) -> Cnf:
    """Parse DIMACS CNF text (tolerant of comments and blank lines)."""
    cnf = Cnf()
    declared_vars = None
    pending: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"malformed problem line: {line!r}")
            try:
                declared_vars = int(parts[2])
                int(parts[3])
            except ValueError:
                raise SatError(f"malformed problem line: {line!r}") from None
            continue
        for token in line.split():
            try:
                literal = int(token)
            except ValueError:
                raise SatError(f"bad token {token!r} in DIMACS body") from None
            if literal == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(literal)
    if pending:
        raise SatError("clause not terminated by 0")
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf
