"""CDCL SAT solver.

A faithful, pure-Python MiniSat-style solver:

- two-watched-literal unit propagation;
- first-UIP conflict analysis with clause learning;
- VSIDS variable activity with exponential decay;
- phase saving;
- Luby-sequence restarts;
- activity-driven learnt-clause database reduction;
- incremental use: clauses may be added between ``solve`` calls, and
  ``solve`` accepts assumption literals (used by the BMC engine and the
  noise-vector enumerator to block previously found models).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from ..errors import SatError
from .cnf import Cnf


class SatStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatResult:
    """Outcome of a ``solve`` call.

    ``model`` maps every variable index to a bool when ``status`` is SAT.
    ``conflicts`` counts learnt conflicts (a rough effort measure used in
    the engine-comparison benchmarks).

    ``failed_assumptions`` distinguishes the two flavours of UNSAT: when
    it is a tuple, only the conjunction of *these* assumption literals
    (a subset of the ``assumptions`` argument, in prefix order) is
    refuted and the solver stays reusable for other assumption sets;
    when it is ``None``, the formula itself is unsatisfiable and every
    future ``solve`` call will answer UNSAT.
    """

    status: SatStatus
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    failed_assumptions: tuple[int, ...] | None = None

    def __bool__(self) -> bool:
        return self.status is SatStatus.SAT


class _Clause:
    """Mutable clause with watch bookkeeping and an activity score.

    ``removed`` marks a clause dropped by :meth:`CdclSolver._reduce_db`;
    the watch lists prune such entries lazily on their next visit instead
    of rebuilding the whole table eagerly.
    """

    __slots__ = ("literals", "learnt", "activity", "removed")

    def __init__(self, literals: list[int], learnt: bool = False):
        self.literals = literals
        self.learnt = learnt
        self.activity = 0.0
        self.removed = False

    def __iter__(self):
        return iter(self.literals)

    def __len__(self):
        return len(self.literals)

    def __getitem__(self, index):
        return self.literals[index]

    def __setitem__(self, index, value):
        self.literals[index] = value


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    if i < 1:
        raise ValueError("luby is 1-based")
    while True:
        k = i.bit_length()  # 2^(k-1) <= i < 2^k
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class CdclSolver:
    """Conflict-driven clause-learning solver over DIMACS-style literals."""

    RESTART_BASE = 128
    VAR_DECAY = 0.95
    CLAUSE_DECAY = 0.999
    MAX_LEARNTS_START = 4000

    def __init__(self, num_vars: int = 0):
        self._num_vars = 0
        self._assign: list[int] = [0]  # 1 true, -1 false, 0 unassigned
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._watches: dict[int, list[_Clause]] = {}
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._clause_inc = 1.0
        self._order_heap: list[tuple[float, int]] = []
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.removed_clauses = 0
        self.ensure_vars(num_vars)

    # -- variable management ------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable universe to at least ``num_vars``."""
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._assign.append(0)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches[self._num_vars] = []
            self._watches[-self._num_vars] = []
            heapq.heappush(self._order_heap, (0.0, self._num_vars))

    def new_var(self) -> int:
        self.ensure_vars(self._num_vars + 1)
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    # -- clause management -----------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a problem clause; returns False if the formula is now trivially UNSAT."""
        if self._trail_lim:
            raise SatError("add_clause is only allowed at decision level 0")
        seen: set[int] = set()
        clause: list[int] = []
        for literal in literals:
            if (
                not isinstance(literal, int)
                or isinstance(literal, bool)
                or literal == 0
            ):
                raise SatError(f"invalid literal {literal!r}")
            self.ensure_vars(abs(literal))
            if -literal in seen:
                return True  # tautology
            value = self._value(literal)
            if value == 1 and self._level[abs(literal)] == 0:
                return True  # satisfied at top level
            if value == -1 and self._level[abs(literal)] == 0:
                continue  # falsified at top level: drop literal
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        c = _Clause(clause)
        self._clauses.append(c)
        self._watch(c)
        return True

    def add_cnf(self, cnf: Cnf) -> bool:
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    def _watch(self, clause: _Clause) -> None:
        self._watches[-clause[0]].append(clause)
        self._watches[-clause[1]].append(clause)

    # -- assignment primitives ----------------------------------------------------

    def _value(self, literal: int) -> int:
        """1 if literal true, -1 if false, 0 if unassigned."""
        v = self._assign[abs(literal)]
        return v if literal > 0 else -v

    def _enqueue(self, literal: int, reason: _Clause | None) -> bool:
        value = self._value(literal)
        if value == 1:
            return True
        if value == -1:
            return False
        var = abs(literal)
        self._assign[var] = 1 if literal > 0 else -1
        self._level[var] = self.decision_level
        self._reason[var] = reason
        self._phase[var] = literal > 0
        self._trail.append(literal)
        return True

    @property
    def decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _cancel_until(self, level: int) -> None:
        if self.decision_level <= level:
            return
        boundary = self._trail_lim[level]
        for literal in reversed(self._trail[boundary:]):
            var = abs(literal)
            self._assign[var] = 0
            self._reason[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # -- propagation ------------------------------------------------------------------

    def _propagate(self) -> _Clause | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            literal = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            watchers = self._watches[literal]
            false_literal = -literal
            keep: list[_Clause] = []
            conflict: _Clause | None = None
            for position, clause in enumerate(watchers):
                if conflict is not None:
                    keep.append(clause)
                    continue
                if clause.removed:
                    continue  # lazily pruned _reduce_db leftovers
                # Normalise: the falsified watch sits at index 1.
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    keep.append(clause)
                    continue
                moved = False
                literals = clause.literals
                for k in range(2, len(literals)):
                    if self._value(literals[k]) != -1:
                        literals[1], literals[k] = literals[k], literals[1]
                        self._watches[-literals[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
            self._watches[literal] = keep
            if conflict is not None:
                self._qhead = len(self._trail)
                return conflict
        return None

    # -- conflict analysis ------------------------------------------------------------

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learnt clause, backjump level)."""
        learnt: list[int] = [0]  # slot 0 is the asserting literal
        seen = [False] * (self._num_vars + 1)
        path_count = 0
        asserting = None
        index = len(self._trail) - 1
        reason: Sequence[int] = conflict.literals
        self._bump_clause(conflict)

        while True:
            start = 0 if asserting is None else 1
            for literal in reason[start:]:
                var = abs(literal)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= self.decision_level:
                        path_count += 1
                    else:
                        learnt.append(literal)
            while not seen[abs(self._trail[index])]:
                index -= 1
            asserting = self._trail[index]
            index -= 1
            path_count -= 1
            if path_count == 0:
                break
            clause = self._reason[abs(asserting)]
            if clause is None:
                raise SatError("internal: UIP literal without reason")
            self._bump_clause(clause)
            reason = clause.literals
        learnt[0] = -asserting

        # Conflict-clause minimisation (local): drop literals implied by
        # the rest of the clause via their reason clauses.
        minimized = [learnt[0]]
        for literal in learnt[1:]:
            reason_clause = self._reason[abs(literal)]
            if reason_clause is None:
                minimized.append(literal)
                continue
            if any(
                not seen[abs(other)] and self._level[abs(other)] > 0
                for other in reason_clause.literals[1:]
            ):
                minimized.append(literal)
        learnt = minimized

        if len(learnt) == 1:
            return learnt, 0
        # Move the highest-level non-asserting literal to slot 1.
        best = 1
        for k in range(2, len(learnt)):
            if self._level[abs(learnt[k])] > self._level[abs(learnt[best])]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    # -- activity -------------------------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learnt:
            return
        clause.activity += self._clause_inc
        if clause.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self.VAR_DECAY
        self._clause_inc /= self.CLAUSE_DECAY

    # -- decisions ------------------------------------------------------------------

    def _pick_branch_var(self) -> int | None:
        while self._order_heap:
            _, var = heapq.heappop(self._order_heap)
            if self._assign[var] == 0:
                return var
        return None

    # -- assumption-failure analysis ---------------------------------------------------

    def _analyze_final(
        self, failed: int, assumptions: Sequence[int]
    ) -> tuple[int, ...]:
        """Minimal-ish core of assumptions responsible for falsifying ``failed``.

        MiniSat's ``analyzeFinal``: walk the trail backwards from the
        assignment that falsified the next assumption, expanding reason
        clauses; every reason-free trail literal above level 0 reached
        this way is an assumption pseudo-decision (only assumptions are
        established as decisions while ``decision_level <
        len(assumptions)``), so the surviving set — plus ``failed``
        itself — is a refuted subset of the assumption prefix.  Returned
        in assumption order, computed *before* backtracking.
        """
        responsible = {failed}
        if self._trail_lim:
            seen = [False] * (self._num_vars + 1)
            seen[abs(failed)] = True
            for literal in reversed(self._trail[self._trail_lim[0]:]):
                var = abs(literal)
                if not seen[var]:
                    continue
                seen[var] = False
                reason = self._reason[var]
                if reason is None:
                    responsible.add(literal)
                else:
                    for other in reason.literals[1:]:
                        if self._level[abs(other)] > 0:
                            seen[abs(other)] = True
        return tuple(lit for lit in assumptions if lit in responsible)

    # -- learnt DB reduction -----------------------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the lower-activity half of learnt clauses (keep reasons).

        Removal only *marks* the clause: watch-list entries are pruned
        lazily the next time propagation visits them, so a reduction is
        O(learnts) instead of O(total watch entries) — the difference
        matters for long-lived incremental sessions, whose watch tables
        keep growing while reductions keep firing.
        """
        locked = {id(self._reason[abs(lit)]) for lit in self._trail if self._reason[abs(lit)]}
        self._learnts.sort(key=lambda c: c.activity)
        cut = len(self._learnts) // 2
        survivors: list[_Clause] = []
        for position, clause in enumerate(self._learnts):
            if position < cut and id(clause) not in locked and len(clause) > 2:
                clause.removed = True
                self.removed_clauses += 1
            else:
                survivors.append(clause)
        self._learnts = survivors

    # -- main loop ------------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: int | None = None,
    ) -> SatResult:
        """Run CDCL search.  ``assumptions`` are literals fixed for this call."""
        if not self._ok:
            return SatResult(SatStatus.UNSAT, conflicts=self.conflicts)
        for literal in assumptions:
            self.ensure_vars(abs(literal))

        self._cancel_until(0)
        if self._propagate() is not None:
            self._ok = False
            return SatResult(SatStatus.UNSAT, conflicts=self.conflicts)

        max_learnts = self.MAX_LEARNTS_START
        restart_count = 0
        conflicts_until_restart = self.RESTART_BASE * luby(1)
        start_conflicts = self.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_until_restart -= 1
                if self.decision_level == 0:
                    self._ok = False
                    return SatResult(SatStatus.UNSAT, conflicts=self.conflicts)
                learnt, backjump_level = self._analyze(conflict)
                self._cancel_until(backjump_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return SatResult(SatStatus.UNSAT, conflicts=self.conflicts)
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self._watch(clause)
                    self._bump_clause(clause)
                    self._enqueue(learnt[0], clause)
                self._decay_activities()
                if max_conflicts is not None and self.conflicts - start_conflicts >= max_conflicts:
                    self._cancel_until(0)
                    return SatResult(SatStatus.UNKNOWN, conflicts=self.conflicts)
                continue

            if len(self._learnts) > max_learnts:
                self._reduce_db()
                max_learnts = int(max_learnts * 1.5)

            if conflicts_until_restart <= 0:
                restart_count += 1
                conflicts_until_restart = self.RESTART_BASE * luby(restart_count + 1)
                self._cancel_until(0)
                continue

            # Establish assumptions as pseudo-decisions, in order.  Learnt
            # clauses never mention decisions, so they remain valid across
            # calls; an assumption forced false here means UNSAT *under
            # these assumptions* (the formula itself may stay SAT), which
            # the result records as a failed-assumption core — the solver
            # stays reusable, unlike the formula-level UNSAT paths above.
            if self.decision_level < len(assumptions):
                literal = assumptions[self.decision_level]
                value = self._value(literal)
                if value == -1:
                    core = self._analyze_final(literal, assumptions)
                    self._cancel_until(0)
                    return SatResult(
                        SatStatus.UNSAT,
                        conflicts=self.conflicts,
                        failed_assumptions=core,
                    )
                self._new_decision_level()
                if value == 0:
                    self._enqueue(literal, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                model = {
                    v: self._assign[v] == 1 for v in range(1, self._num_vars + 1)
                }
                result = SatResult(
                    SatStatus.SAT,
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                )
                self._cancel_until(0)
                return result
            self.decisions += 1
            self._new_decision_level()
            literal = var if self._phase[var] else -var
            self._enqueue(literal, None)

def solve_cnf(cnf: Cnf, assumptions: Sequence[int] = (), max_conflicts: int | None = None) -> SatResult:
    """One-shot convenience wrapper."""
    solver = CdclSolver()
    if not solver.add_cnf(cnf):
        return SatResult(SatStatus.UNSAT)
    return solver.solve(assumptions=assumptions, max_conflicts=max_conflicts)
