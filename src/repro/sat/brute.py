"""Brute-force SAT oracle.

Exponential, for cross-validating the CDCL solver on small instances in
the property-based tests — never used by the production paths.
"""

from __future__ import annotations

from itertools import product

from ..errors import SatError
from .cnf import Cnf


def brute_force_models(cnf: Cnf, max_vars: int = 20) -> list[dict[int, bool]]:
    """All satisfying total assignments of ``cnf`` (small instances only)."""
    if cnf.num_vars > max_vars:
        raise SatError(f"brute force limited to {max_vars} variables")
    models = []
    variables = list(range(1, cnf.num_vars + 1))
    for values in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if cnf.evaluate(assignment):
            models.append(assignment)
    return models


def brute_force_satisfiable(cnf: Cnf, max_vars: int = 20) -> bool:
    """Satisfiability by exhaustive enumeration (small instances only)."""
    if cnf.num_vars > max_vars:
        raise SatError(f"brute force limited to {max_vars} variables")
    variables = list(range(1, cnf.num_vars + 1))
    for values in product([False, True], repeat=len(variables)):
        if cnf.evaluate(dict(zip(variables, values))):
            return True
    return False
