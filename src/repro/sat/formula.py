"""Propositional formula AST and Tseitin CNF transformation.

The bounded model checker unrolls SMV transition relations into formulas
over named variables; :func:`tseitin` converts them to equisatisfiable
CNF for the CDCL core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import SatError
from .cnf import Cnf


class BoolExpr:
    """Base class for propositional expressions (immutable)."""

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or(self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)

    def variables(self) -> set[str]:
        """All variable names appearing in the expression."""
        return set(_collect_vars(self))

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the named variables."""
        raise NotImplementedError


@dataclass(frozen=True)
class Var(BoolExpr):
    name: str

    def evaluate(self, assignment):
        try:
            return assignment[self.name]
        except KeyError:
            raise SatError(f"assignment missing variable {self.name!r}") from None

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class Const(BoolExpr):
    value: bool

    def evaluate(self, assignment):
        return self.value

    def __repr__(self):
        return "TRUE" if self.value else "FALSE"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Not(BoolExpr):
    operand: BoolExpr

    def evaluate(self, assignment):
        return not self.operand.evaluate(assignment)

    def __repr__(self):
        return f"!({self.operand!r})"


class _Nary(BoolExpr):
    """Shared behaviour for AND/OR with flattened operands."""

    op_name = "?"

    def __init__(self, *operands: BoolExpr):
        flat: list[BoolExpr] = []
        for operand in operands:
            if not isinstance(operand, BoolExpr):
                raise SatError(f"operand {operand!r} is not a BoolExpr")
            if type(operand) is type(self):
                flat.extend(operand.operands)  # type: ignore[attr-defined]
            else:
                flat.append(operand)
        self.operands = tuple(flat)

    def __eq__(self, other):
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self):
        return hash((type(self).__name__, self.operands))

    def __repr__(self):
        inner = f" {self.op_name} ".join(repr(o) for o in self.operands)
        return f"({inner})"


class And(_Nary):
    op_name = "&"

    def evaluate(self, assignment):
        return all(o.evaluate(assignment) for o in self.operands)


class Or(_Nary):
    op_name = "|"

    def evaluate(self, assignment):
        return any(o.evaluate(assignment) for o in self.operands)


@dataclass(frozen=True)
class Implies(BoolExpr):
    antecedent: BoolExpr
    consequent: BoolExpr

    def evaluate(self, assignment):
        return (not self.antecedent.evaluate(assignment)) or self.consequent.evaluate(assignment)

    def __repr__(self):
        return f"({self.antecedent!r} -> {self.consequent!r})"


@dataclass(frozen=True)
class Iff(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def evaluate(self, assignment):
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def __repr__(self):
        return f"({self.left!r} <-> {self.right!r})"


@dataclass(frozen=True)
class Xor(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    def evaluate(self, assignment):
        return self.left.evaluate(assignment) != self.right.evaluate(assignment)

    def __repr__(self):
        return f"({self.left!r} xor {self.right!r})"


def _collect_vars(expr: BoolExpr) -> Iterator[str]:
    if isinstance(expr, Var):
        yield expr.name
    elif isinstance(expr, Const):
        return
    elif isinstance(expr, Not):
        yield from _collect_vars(expr.operand)
    elif isinstance(expr, _Nary):
        for operand in expr.operands:
            yield from _collect_vars(operand)
    elif isinstance(expr, Implies):
        yield from _collect_vars(expr.antecedent)
        yield from _collect_vars(expr.consequent)
    elif isinstance(expr, (Iff, Xor)):
        yield from _collect_vars(expr.left)
        yield from _collect_vars(expr.right)
    else:
        raise SatError(f"unknown expression node {type(expr).__name__}")


class TseitinEncoder:
    """Stateful Tseitin encoder sharing a variable map across formulas.

    Used incrementally by the BMC engine: each unrolling step encodes new
    formulas over a shared :class:`Cnf` and variable table.
    """

    def __init__(self):
        self.cnf = Cnf()
        self.var_map: dict[str, int] = {}
        self._cache: dict[BoolExpr, int] = {}

    def var_for(self, name: str) -> int:
        """DIMACS index of named variable ``name`` (allocated on demand)."""
        if name not in self.var_map:
            self.var_map[name] = self.cnf.new_var()
        return self.var_map[name]

    def encode(self, expr: BoolExpr) -> int:
        """Return a literal equivalent to ``expr``, adding defining clauses."""
        if isinstance(expr, Var):
            return self.var_for(expr.name)
        if isinstance(expr, Const):
            if expr not in self._cache:
                # A variable pinned to the constant value.
                literal = self.cnf.new_var()
                self.cnf.add_clause([literal if expr.value else -literal])
                self._cache[expr] = literal
            return self._cache[expr]
        if expr in self._cache:
            return self._cache[expr]
        literal = self._encode_uncached(expr)
        self._cache[expr] = literal
        return literal

    def _encode_uncached(self, expr: BoolExpr) -> int:
        if isinstance(expr, Not):
            return -self.encode(expr.operand)
        if isinstance(expr, And):
            output = self.cnf.new_var()
            inputs = [self.encode(o) for o in expr.operands]
            for literal in inputs:
                self.cnf.add_clause([-output, literal])
            self.cnf.add_clause([output] + [-l for l in inputs])
            return output
        if isinstance(expr, Or):
            output = self.cnf.new_var()
            inputs = [self.encode(o) for o in expr.operands]
            for literal in inputs:
                self.cnf.add_clause([-literal, output])
            self.cnf.add_clause([-output] + inputs)
            return output
        if isinstance(expr, Implies):
            return self.encode(Or(Not(expr.antecedent), expr.consequent))
        if isinstance(expr, Iff):
            left = self.encode(expr.left)
            right = self.encode(expr.right)
            output = self.cnf.new_var()
            self.cnf.add_clauses(
                [
                    [-output, -left, right],
                    [-output, left, -right],
                    [output, left, right],
                    [output, -left, -right],
                ]
            )
            return output
        if isinstance(expr, Xor):
            return self.encode(Not(Iff(expr.left, expr.right)))
        raise SatError(f"cannot encode expression node {type(expr).__name__}")

    def assert_expr(self, expr: BoolExpr) -> None:
        """Constrain ``expr`` to be true."""
        self.cnf.add_clause([self.encode(expr)])


def tseitin(expr: BoolExpr) -> tuple[Cnf, dict[str, int]]:
    """Encode ``expr`` as CNF; SAT iff ``expr`` is satisfiable.

    Returns the CNF and the name → DIMACS-variable map for decoding models.
    """
    encoder = TseitinEncoder()
    encoder.assert_expr(expr)
    return encoder.cnf, encoder.var_map
