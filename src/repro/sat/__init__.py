"""SAT substrate (system S6 in DESIGN.md).

A from-scratch CDCL solver in the MiniSat lineage: two-watched literals,
first-UIP conflict learning, VSIDS branching, phase saving and Luby
restarts.  nuXmv delegates its bounded model checking to an embedded SAT
core; this package plays that role here.
"""

from .cnf import Cnf, parse_dimacs, to_dimacs
from .formula import (
    FALSE,
    TRUE,
    And,
    BoolExpr,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
    tseitin,
)
from .solver import CdclSolver, SatResult, SatStatus, solve_cnf
from .brute import brute_force_models, brute_force_satisfiable

__all__ = [
    "Cnf",
    "parse_dimacs",
    "to_dimacs",
    "BoolExpr",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Xor",
    "TRUE",
    "FALSE",
    "tseitin",
    "CdclSolver",
    "SatResult",
    "SatStatus",
    "solve_cnf",
    "brute_force_models",
    "brute_force_satisfiable",
]
