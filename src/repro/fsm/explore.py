"""Reachability exploration of a transition system.

Produces the counts the paper quotes in Fig. 3 (states and transitions of
the NN FSM with and without noise) and underlies the explicit-state
invariant checker.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import StateSpaceLimitError
from .transition_system import State, TransitionSystem


@dataclass
class ExplorationResult:
    """Reachable-state summary.

    ``transitions`` counts ordered reachable-state pairs (s, s') with
    s → s', i.e. edges of the reachable sub-graph, matching how Fig. 3
    reports FSM size.
    """

    states: set[State] = field(default_factory=set)
    transitions: int = 0
    initial_count: int = 0
    depth: int = 0

    @property
    def state_count(self) -> int:
        return len(self.states)


def explore(
    system: TransitionSystem,
    max_states: int = 1_000_000,
    count_transitions: bool = True,
) -> ExplorationResult:
    """Breadth-first reachability from all initial states."""
    result = ExplorationResult()
    frontier: deque[tuple[State, int]] = deque()

    for state in system.initial_states():
        if state not in result.states:
            result.states.add(state)
            frontier.append((state, 0))
            result.initial_count += 1
            if len(result.states) > max_states:
                raise StateSpaceLimitError(
                    f"state budget {max_states} exceeded while seeding"
                )

    while frontier:
        state, depth = frontier.popleft()
        result.depth = max(result.depth, depth)
        seen_here: set[State] = set()
        for successor in system.successors(state):
            if successor in seen_here:
                continue
            seen_here.add(successor)
            if count_transitions:
                result.transitions += 1
            if successor not in result.states:
                result.states.add(successor)
                if len(result.states) > max_states:
                    raise StateSpaceLimitError(
                        f"state budget {max_states} exceeded"
                    )
                frontier.append((successor, depth + 1))
    return result


def count_states_and_transitions(
    system: TransitionSystem, max_states: int = 1_000_000
) -> tuple[int, int]:
    """The (states, transitions) pair reported in Fig. 3."""
    result = explore(system, max_states=max_states, count_transitions=True)
    return result.state_count, result.transitions
