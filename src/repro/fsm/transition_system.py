"""Explicit transition system compiled from an SMV module."""

from __future__ import annotations

from itertools import product
from typing import Iterator

from ..errors import ModelCheckingError
from ..smv.ast import Expr, SmvModule
from ..smv.typecheck import check_module
from .evaluator import evaluate_choices, evaluate_expression

#: A state is a tuple of variable values, aligned with the declared order.
State = tuple


class TransitionSystem:
    """FSM semantics of a (type-checked) SMV module.

    States are value tuples in declaration order; ``as_dict`` converts to
    a name → value mapping for property evaluation and reporting.
    """

    def __init__(self, module: SmvModule, typecheck: bool = True):
        if typecheck:
            check_module(module)
        self.module = module
        self.var_names: list[str] = list(module.variables)
        self._domains: dict[str, list] = {
            name: spec.values() for name, spec in module.variables.items()
        }
        self._domain_sets = {name: set(values) for name, values in self._domains.items()}
        for name, domain in self._domains.items():
            if not domain:
                raise ModelCheckingError(f"variable {name!r} has an empty domain")

    # -- state helpers --------------------------------------------------------

    def as_dict(self, state: State) -> dict[str, object]:
        return dict(zip(self.var_names, state))

    def domain(self, name: str) -> list:
        return list(self._domains[name])

    def in_domain(self, name: str, value) -> bool:
        return value in self._domain_sets[name]

    # -- initial states -----------------------------------------------------------

    def initial_states(self) -> Iterator[State]:
        """Enumerate initial states.

        A variable with ``init()`` takes the assigned value(s); without it
        the whole domain is allowed (standard SMV open-initial semantics).
        """
        empty_state: dict[str, object] = {}
        per_var_choices: list[list] = []
        for name in self.var_names:
            init_expr = self.module.assigns.init.get(name)
            if init_expr is None:
                per_var_choices.append(self._domains[name])
            else:
                choices = [
                    value
                    for value in dict.fromkeys(
                        evaluate_choices(init_expr, empty_state, self.module)
                    )
                    if self.in_domain(name, value)
                ]
                if not choices:
                    return  # no legal initial value: empty initial set
                per_var_choices.append(choices)
        for values in product(*per_var_choices):
            yield tuple(values)

    # -- successors ------------------------------------------------------------------

    def successors(self, state: State) -> Iterator[State]:
        """Enumerate successors of ``state`` under the ``next()`` assignments."""
        context = self.as_dict(state)
        per_var_choices: list[list] = []
        for name in self.var_names:
            next_expr = self.module.assigns.next.get(name)
            if next_expr is None:
                per_var_choices.append(self._domains[name])
            else:
                choices = [
                    value
                    for value in dict.fromkeys(
                        evaluate_choices(next_expr, context, self.module)
                    )
                    if self.in_domain(name, value)
                ]
                if not choices:
                    return  # every choice out of range: dead state
                per_var_choices.append(choices)
        for values in product(*per_var_choices):
            yield tuple(values)

    def successor_count(self, state: State) -> int:
        """Number of outgoing transitions without materialising them."""
        context = self.as_dict(state)
        count = 1
        for name in self.var_names:
            next_expr = self.module.assigns.next.get(name)
            if next_expr is None:
                count *= len(self._domains[name])
            else:
                legal = {
                    value
                    for value in evaluate_choices(next_expr, context, self.module)
                    if self.in_domain(name, value)
                }
                count *= len(legal)
        return count

    # -- property evaluation -------------------------------------------------------------

    def holds(self, expr: Expr, state: State) -> bool:
        """Truth of a boolean expression in ``state``."""
        value = evaluate_expression(expr, self.as_dict(state), self.module)
        if not isinstance(value, bool):
            raise ModelCheckingError("property expression is not boolean")
        return value

    # -- static diagnostics ------------------------------------------------------

    def validate(self) -> list[str]:
        """Lint for assignments that can produce out-of-range values.

        Out-of-range choices are dropped at runtime (the state deadlocks if
        nothing legal remains); this check surfaces them statically so a
        modelling bug does not hide behind that semantics.
        """
        from ..smv.ast import RangeType

        warnings = []
        for name, expr in self.module.assigns.next.items():
            spec = self.module.variables[name]
            if not isinstance(spec, RangeType):
                continue
            low, high = self._expression_range(expr, {})
            if low < spec.low or high > spec.high:
                warnings.append(
                    f"next({name}) may produce values in [{low}, {high}] "
                    f"outside {spec.low}..{spec.high}"
                )
        return warnings

    def _guard_refinements(self, guard, refinements: dict) -> dict:
        """Extend variable ranges implied by a simple comparison guard
        (``var < k`` etc. with a literal bound); conjunctions recurse."""
        from ..smv.ast import BinOp, Ident, IntLit

        result = dict(refinements)
        if isinstance(guard, BinOp):
            if guard.op == "&":
                result = self._guard_refinements(guard.left, result)
                result = self._guard_refinements(guard.right, result)
                return result
            if (
                guard.op in ("<", "<=", ">", ">=", "=")
                and isinstance(guard.left, Ident)
                and isinstance(guard.right, IntLit)
            ):
                name = guard.left.name
                bound = guard.right.value
                low, high = result.get(name, self._identifier_range(name))
                if guard.op == "<":
                    high = min(high, bound - 1)
                elif guard.op == "<=":
                    high = min(high, bound)
                elif guard.op == ">":
                    low = max(low, bound + 1)
                elif guard.op == ">=":
                    low = max(low, bound)
                else:
                    low = max(low, bound)
                    high = min(high, bound)
                if low <= high:
                    result[name] = (low, high)
        return result

    def _identifier_range(self, name: str) -> tuple[int, int]:
        from ..smv.ast import RangeType

        spec = self.module.variables.get(name)
        if isinstance(spec, RangeType):
            return spec.low, spec.high
        raise ModelCheckingError("interval analysis over non-integer variable")

    def _expression_range(self, expr, refinements: dict) -> tuple[int, int]:
        """Crude interval analysis over the expression (integers only)."""
        from ..smv.ast import (
            BinOp, Call, CaseExpr, Ident, IntLit, SetExpr, UnaryOp,
        )
        from ..smv.ast import RangeType

        if isinstance(expr, IntLit):
            return expr.value, expr.value
        if isinstance(expr, Ident):
            if expr.name in self.module.variables:
                if expr.name in refinements:
                    return refinements[expr.name]
                return self._identifier_range(expr.name)
            if expr.name in self.module.defines:
                return self._expression_range(self.module.defines[expr.name], refinements)
            raise ModelCheckingError("interval analysis over enum symbol")
        if isinstance(expr, UnaryOp) and expr.op == "-":
            low, high = self._expression_range(expr.operand, refinements)
            return -high, -low
        if isinstance(expr, BinOp) and expr.op in ("+", "-", "*"):
            a, b = self._expression_range(expr.left, refinements)
            c, d = self._expression_range(expr.right, refinements)
            if expr.op == "+":
                return a + c, b + d
            if expr.op == "-":
                return a - d, b - c
            products = [a * c, a * d, b * c, b * d]
            return min(products), max(products)
        if isinstance(expr, Call) and expr.func in ("max", "min", "abs"):
            ranges = [self._expression_range(arg, refinements) for arg in expr.args]
            if expr.func == "abs":
                low, high = ranges[0]
                return (0 if low <= 0 <= high else min(abs(low), abs(high))), max(
                    abs(low), abs(high)
                )
            pick = max if expr.func == "max" else min
            return pick(r[0] for r in ranges), pick(r[1] for r in ranges)
        if isinstance(expr, CaseExpr):
            lows, highs = [], []
            for guard, result in expr.branches:
                branch_refinements = self._guard_refinements(guard, refinements)
                low, high = self._expression_range(result, branch_refinements)
                lows.append(low)
                highs.append(high)
            return min(lows), max(highs)
        if isinstance(expr, SetExpr):
            lows, highs = [], []
            for item in expr.items:
                low, high = self._expression_range(item, refinements)
                lows.append(low)
                highs.append(high)
            return min(lows), max(highs)
        raise ModelCheckingError(
            f"interval analysis cannot handle {type(expr).__name__}"
        )

    # -- metrics ------------------------------------------------------------------------------

    def state_space_bound(self) -> int:
        """Product of domain sizes — the a-priori state-space size."""
        bound = 1
        for domain in self._domains.values():
            bound *= len(domain)
        return bound
