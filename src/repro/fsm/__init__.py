"""FSM semantics for SMV modules.

Compiles a type-checked :class:`repro.smv.SmvModule` into an explicit
transition system: states are assignments of the finite variable domains,
non-determinism comes from ``{…}`` set expressions and unassigned
variables.  This is the object Fig. 3 of the paper counts states and
transitions of.
"""

from .evaluator import evaluate_expression, evaluate_choices
from .transition_system import State, TransitionSystem
from .explore import ExplorationResult, explore, count_states_and_transitions

__all__ = [
    "evaluate_expression",
    "evaluate_choices",
    "TransitionSystem",
    "State",
    "ExplorationResult",
    "explore",
    "count_states_and_transitions",
]
