"""Expression evaluation over concrete states.

SMV integer semantics: division truncates toward zero and ``mod`` is the
matching remainder (``a = (a/b)*b + (a mod b)``), exactly as in nuXmv's
C-style integer arithmetic.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import ModelCheckingError
from ..smv.ast import (
    BinOp,
    BoolLit,
    Call,
    CaseExpr,
    Expr,
    Ident,
    IntLit,
    SetExpr,
    SmvModule,
    UnaryOp,
)


def _truncated_div(a: int, b: int) -> int:
    if b == 0:
        raise ModelCheckingError("division by zero in SMV expression")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def evaluate_expression(expr: Expr, state: Mapping[str, object], module: SmvModule):
    """Evaluate ``expr`` in ``state`` (variable name → value).

    DEFINE symbols are expanded on demand; enum symbols evaluate to their
    own name (enum values are represented as strings).
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, Ident):
        name = expr.name
        if name in state:
            return state[name]
        if name in module.defines:
            return evaluate_expression(module.defines[name], state, module)
        # Enum literal: evaluates to itself.
        return name
    if isinstance(expr, UnaryOp):
        value = evaluate_expression(expr.operand, state, module)
        if expr.op == "-":
            return -value
        return not value
    if isinstance(expr, BinOp):
        left = evaluate_expression(expr.left, state, module)
        # Short-circuit boolean forms.
        if expr.op == "&":
            return bool(left) and bool(evaluate_expression(expr.right, state, module))
        if expr.op == "|":
            return bool(left) or bool(evaluate_expression(expr.right, state, module))
        if expr.op == "->":
            return (not left) or bool(evaluate_expression(expr.right, state, module))
        right = evaluate_expression(expr.right, state, module)
        if expr.op == "<->":
            return bool(left) == bool(right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return _truncated_div(left, right)
        if expr.op == "mod":
            return left - _truncated_div(left, right) * right
        if expr.op == "=":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
        raise ModelCheckingError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Call):
        args = [evaluate_expression(a, state, module) for a in expr.args]
        if expr.func == "max":
            return max(args)
        if expr.func == "min":
            return min(args)
        if expr.func == "abs":
            return abs(args[0])
        raise ModelCheckingError(f"unknown function {expr.func!r}")
    if isinstance(expr, CaseExpr):
        for guard, result in expr.branches:
            if evaluate_expression(guard, state, module):
                return evaluate_expression(result, state, module)
        raise ModelCheckingError("no case branch matched (missing TRUE guard?)")
    if isinstance(expr, SetExpr):
        raise ModelCheckingError(
            "set expression reached value context; use evaluate_choices"
        )
    raise ModelCheckingError(f"unknown expression node {type(expr).__name__}")


def evaluate_choices(expr: Expr, state: Mapping[str, object], module: SmvModule) -> list:
    """Evaluate an assignment right-hand side to its list of choices.

    Set expressions (possibly nested in ``case`` results) produce multiple
    values — the source of non-determinism in the FSM.
    """
    if isinstance(expr, SetExpr):
        choices = []
        for item in expr.items:
            choices.extend(evaluate_choices(item, state, module))
        return choices
    if isinstance(expr, CaseExpr):
        for guard, result in expr.branches:
            if evaluate_expression(guard, state, module):
                return evaluate_choices(result, state, module)
        raise ModelCheckingError("no case branch matched (missing TRUE guard?)")
    return [evaluate_expression(expr, state, module)]
