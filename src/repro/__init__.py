"""FANNet — Formal Analysis of Noise Tolerance, Training Bias and Input
Sensitivity in Neural Networks (DATE 2020) — full reproduction.

Public API highlights:

- :func:`repro.core.run_case_study` — the paper's §V in one call;
- :class:`repro.core.Fannet` — the methodology bound to your own network;
- :mod:`repro.nn` / :mod:`repro.data` — training substrate and the
  synthetic leukemia dataset;
- :mod:`repro.verify` — the noise-query verification engines;
- :mod:`repro.runtime` — the parallel, cache-aware query runner the
  analyses execute on;
- :mod:`repro.smv`, :mod:`repro.fsm`, :mod:`repro.mc` — the SMV language
  and model-checking stack (the nuXmv role);
- :mod:`repro.sat`, :mod:`repro.bdd`, :mod:`repro.smt` — the solver
  substrates underneath.
"""

from .config import (
    FannetConfig,
    NoiseConfig,
    RuntimeConfig,
    TrainConfig,
    VerifierConfig,
)
from .errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "FannetConfig",
    "NoiseConfig",
    "RuntimeConfig",
    "TrainConfig",
    "VerifierConfig",
    "ReproError",
    "__version__",
]
