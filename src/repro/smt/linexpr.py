"""Linear expressions and constraints over exact rationals.

Only *non-strict* relations are supported.  Every constraint the NN
verification pipeline produces is non-strict by construction: the
misclassification condition mirrors the argmax tie-break (``L1 ≥ L0``),
ReLU phase splits are ``n ≥ 0`` / ``n ≤ 0``, and the noise variables are
integers, where a strict bound can always be tightened to a non-strict
one.  Refusing strict relations keeps the simplex free of infinitesimals.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Mapping

from ..errors import SmtError
from ..rational import to_fraction


class Relation(Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


class LinExpr:
    """Immutable linear expression ``Σ coeff_i · var_i + constant``.

    Variables are opaque hashable keys (the verifier uses strings such as
    ``"p0"`` or ``"n1_7"``).
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping | None = None, constant=0):
        clean: dict = {}
        if coeffs:
            for var, coeff in coeffs.items():
                value = to_fraction(coeff)
                if value != 0:
                    clean[var] = value
        self.coeffs: dict = clean
        self.constant: Fraction = to_fraction(constant)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def var(name, coeff=1) -> "LinExpr":
        return LinExpr({name: coeff})

    @staticmethod
    def const(value) -> "LinExpr":
        return LinExpr({}, value)

    # -- algebra ----------------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = _as_expr(other)
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, Fraction(0)) + coeff
        return LinExpr(coeffs, self.constant + other.constant)

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        return self + (_as_expr(other) * -1)

    def __rsub__(self, other) -> "LinExpr":
        return _as_expr(other) - self

    def __mul__(self, scalar) -> "LinExpr":
        k = to_fraction(scalar)
        return LinExpr({v: c * k for v, c in self.coeffs.items()}, self.constant * k)

    def __rmul__(self, scalar) -> "LinExpr":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinExpr":
        return self * -1

    # -- relations ------------------------------------------------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint(self - _as_expr(other), Relation.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - _as_expr(other), Relation.GE)

    def eq(self, other) -> "Constraint":
        """Equality constraint (named method: ``==`` must stay Python equality)."""
        return Constraint(self - _as_expr(other), Relation.EQ)

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self, assignment: Mapping) -> Fraction:
        total = self.constant
        for var, coeff in self.coeffs.items():
            if var not in assignment:
                raise SmtError(f"assignment missing variable {var!r}")
            total += coeff * to_fraction(assignment[var])
        return total

    def variables(self) -> set:
        return set(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __eq__(self, other):
        return (
            isinstance(other, LinExpr)
            and self.coeffs == other.coeffs
            and self.constant == other.constant
        )

    def __hash__(self):
        return hash((frozenset(self.coeffs.items()), self.constant))

    def __repr__(self):
        if not self.coeffs:
            return f"LinExpr({self.constant})"
        terms = " + ".join(f"{c}*{v}" for v, c in sorted(self.coeffs.items(), key=lambda kv: str(kv[0])))
        if self.constant:
            terms += f" + {self.constant}"
        return f"LinExpr({terms})"


def _as_expr(value) -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.const(value)


@dataclass(frozen=True)
class Constraint:
    """Normal-form constraint: ``expr REL 0``."""

    expr: LinExpr
    relation: Relation

    def satisfied_by(self, assignment: Mapping) -> bool:
        value = self.expr.evaluate(assignment)
        if self.relation is Relation.LE:
            return value <= 0
        if self.relation is Relation.GE:
            return value >= 0
        return value == 0

    def negated(self) -> "Constraint":
        """Negation, exact only for integer-valued expressions.

        ``¬(e ≤ 0)`` is ``e > 0``; when every variable is integer-valued
        and all coefficients are integers this equals ``e ≥ 1``.  The
        caller is responsible for integrality (checked loosely here).
        """
        if self.relation is Relation.EQ:
            raise SmtError("cannot negate an equality into a single constraint")
        if any(c.denominator != 1 for c in self.expr.coeffs.values()) or (
            self.expr.constant.denominator != 1
        ):
            raise SmtError("exact negation requires integer coefficients")
        if self.relation is Relation.LE:
            # ¬(e <= 0)  ==  e >= 1
            return Constraint(self.expr - 1, Relation.GE)
        # ¬(e >= 0)  ==  e <= -1
        return Constraint(self.expr + 1, Relation.LE)

    def __repr__(self):
        return f"{self.expr!r} {self.relation.value} 0"
