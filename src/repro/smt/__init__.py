"""SMT substrate (system S8 in DESIGN.md).

Exact linear arithmetic over the rationals:

- :mod:`repro.smt.linexpr` — linear expressions and constraints;
- :mod:`repro.smt.simplex` — incremental Dutertre–de Moura general
  simplex with exact ``Fraction`` pivoting and conflict extraction;
- :mod:`repro.smt.branch_bound` — integer feasibility via branch & bound;
- :mod:`repro.smt.dpllt` — lazy DPLL(T): the CDCL core from
  :mod:`repro.sat` combined with the simplex as theory solver.

nuXmv reaches its SMT backend (MathSAT) for exactly this role; here the
stack is self-contained.
"""

from .linexpr import Constraint, LinExpr, Relation
from .simplex import BoundKind, Simplex, SimplexResult
from .branch_bound import IntegerFeasibilityResult, solve_integer_feasibility
from .dpllt import DpllTSolver, TheoryAtom, TheoryResult

__all__ = [
    "LinExpr",
    "Constraint",
    "Relation",
    "Simplex",
    "SimplexResult",
    "BoundKind",
    "solve_integer_feasibility",
    "IntegerFeasibilityResult",
    "DpllTSolver",
    "TheoryAtom",
    "TheoryResult",
]
