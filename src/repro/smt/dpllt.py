"""Lazy DPLL(T): CDCL boolean search + exact simplex theory checks.

The classic lazy architecture (the one nuXmv inherits from MathSAT):

1. each linear-arithmetic *atom* is abstracted to a boolean variable;
2. CDCL enumerates boolean models of the abstraction;
3. the simplex checks the conjunction of asserted atoms; a theory
   conflict yields a blocking clause built from the simplex conflict
   core, and the loop repeats.

Atoms may appear under negation.  The negative polarity of an atom is
either supplied explicitly (``neg=``, used by ReLU phases where the two
polarities deliberately overlap at 0) or derived exactly when all
coefficients are integral and the variables are declared integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction

from ..errors import SmtError
from ..sat import CdclSolver, SatStatus
from .branch_bound import solve_integer_feasibility
from .linexpr import Constraint, Relation
from .simplex import BoundKind, BoundRef, Simplex


class TheoryResult(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class TheoryAtom:
    """A boolean abstraction variable tied to a linear constraint.

    ``pos`` holds when the atom is assigned true; ``neg`` (if given) holds
    when it is assigned false.  With ``neg=None`` the negation is derived
    via :meth:`Constraint.negated`, which requires integral coefficients.
    """

    boolean_var: int
    pos: Constraint
    neg: Constraint | None = None


@dataclass
class DpllTModel:
    values: dict[object, Fraction]
    booleans: dict[int, bool]


class DpllTSolver:
    """Lazy DPLL(T) over linear rational/integer arithmetic."""

    def __init__(self, node_budget: int = 100_000, max_conflicts: int | None = None):
        self.sat = CdclSolver()
        self.simplex = Simplex()
        self._atoms: dict[int, TheoryAtom] = {}
        self._var_ids: dict[object, int] = {}
        self._integer_vars: set[object] = set()
        self._slack_cache: dict[frozenset, int] = {}
        self.node_budget = node_budget
        #: Total CDCL conflict budget across the whole lazy loop (None =
        #: unbounded).  Exhaustion yields ``TheoryResult.UNKNOWN`` — never
        #: a verdict.
        self.max_conflicts = max_conflicts
        self.theory_conflicts = 0

    # -- problem construction ------------------------------------------------

    def new_bool(self) -> int:
        return self.sat.new_var()

    def theory_var(self, name, integer: bool = False) -> int:
        """Simplex id of the named arithmetic variable."""
        if name not in self._var_ids:
            self._var_ids[name] = self.simplex.new_var()
        if integer:
            self._integer_vars.add(name)
        return self._var_ids[name]

    def set_bounds(self, name, lower=None, upper=None) -> None:
        """Permanent (level-0) bounds on a theory variable."""
        var = self.theory_var(name)
        if lower is not None and self.simplex.assert_lower(var, lower) is not None:
            raise SmtError(f"contradictory permanent bounds on {name!r}")
        if upper is not None and self.simplex.assert_upper(var, upper) is not None:
            raise SmtError(f"contradictory permanent bounds on {name!r}")

    def make_atom(self, constraint: Constraint, neg: Constraint | None = None) -> TheoryAtom:
        """Register a constraint as a boolean atom; returns the atom."""
        boolean = self.sat.new_var()
        atom = TheoryAtom(boolean, constraint, neg)
        self._atoms[boolean] = atom
        return atom

    def add_clause(self, literals: list[int]) -> None:
        """Boolean clause over atom variables and plain booleans."""
        self.sat.add_clause(literals)

    # -- internals ---------------------------------------------------------------

    def _slack_for(self, constraint: Constraint) -> int:
        """Simplex slack variable for the linear part of ``constraint``."""
        key = frozenset(
            (self._var_ids_checked(var), coeff)
            for var, coeff in constraint.expr.coeffs.items()
        )
        if key not in self._slack_cache:
            combination = {
                self._var_ids_checked(var): coeff
                for var, coeff in constraint.expr.coeffs.items()
            }
            self._slack_cache[key] = self.simplex.define(combination)
        return self._slack_cache[key]

    def _var_ids_checked(self, name) -> int:
        if name not in self._var_ids:
            raise SmtError(f"atom references undeclared theory variable {name!r}")
        return self._var_ids[name]

    def _assert_constraint(self, constraint: Constraint, origin: int, bound_origin: dict):
        """Push ``constraint`` into the simplex, recording the atom literal
        responsible for each *active* bound.  Returns a conflict or None."""
        slack = self._slack_for(constraint)
        threshold = -constraint.expr.constant

        def attempt(kind: BoundKind):
            ref = BoundRef(slack, kind)
            index = 0 if kind is BoundKind.LOWER else 1
            before = self.simplex.bounds(slack)[index]
            if kind is BoundKind.LOWER:
                conflict = self.simplex.assert_lower(slack, threshold)
            else:
                conflict = self.simplex.assert_upper(slack, threshold)
            if conflict is not None:
                # The attempted bound participates in the conflict even
                # though it was never installed.
                bound_origin[ref] = origin
                return conflict
            if self.simplex.bounds(slack)[index] != before:
                bound_origin[ref] = origin  # this atom now owns the bound
            return None

        if constraint.relation in (Relation.LE, Relation.EQ):
            conflict = attempt(BoundKind.UPPER)
            if conflict is not None:
                return conflict
        if constraint.relation in (Relation.GE, Relation.EQ):
            conflict = attempt(BoundKind.LOWER)
            if conflict is not None:
                return conflict
        return None

    # -- solving --------------------------------------------------------------------

    def solve(self) -> tuple[TheoryResult, DpllTModel | None]:
        """Run the lazy loop to a verdict."""
        # All slack rows must exist before any push (simplex restriction),
        # so pre-create them for every registered atom.
        for atom in self._atoms.values():
            self._slack_for(atom.pos)
            negation = atom.neg if atom.neg is not None else self._derived_neg(atom)
            if negation is not None:
                self._slack_for(negation)

        conflict_floor = self.sat.conflicts
        while True:
            remaining = None
            if self.max_conflicts is not None:
                remaining = self.max_conflicts - (self.sat.conflicts - conflict_floor)
                if remaining <= 0:
                    return TheoryResult.UNKNOWN, None
            sat_result = self.sat.solve(max_conflicts=remaining)
            if sat_result.status is SatStatus.UNKNOWN:
                # Conflict budget exhausted: resource limit, not a proof.
                # (A bare "not SAT" test here would silently promote this
                # to UNSAT — the three statuses must stay distinguished.)
                return TheoryResult.UNKNOWN, None
            if sat_result.status is not SatStatus.SAT:
                return TheoryResult.UNSAT, None

            self.simplex.push()
            bound_origin: dict[BoundRef, int] = {}
            conflict = None
            for boolean, atom in self._atoms.items():
                assigned_true = sat_result.model.get(boolean, False)
                if assigned_true:
                    conflict = self._assert_constraint(atom.pos, boolean, bound_origin)
                else:
                    negation = atom.neg if atom.neg is not None else self._derived_neg(atom)
                    if negation is None:
                        continue
                    conflict = self._assert_constraint(negation, -boolean, bound_origin)
                if conflict is not None:
                    break

            if conflict is None:
                check = self.simplex.check()
                if check.feasible:
                    integer_ids = [self._var_ids[name] for name in self._integer_vars]
                    fractional = [
                        v for v in integer_ids if check.assignment[v].denominator != 1
                    ]
                    if fractional:
                        bb = solve_integer_feasibility(
                            self.simplex, integer_ids, self.node_budget
                        )
                        if bb.feasible:
                            model = self._extract_model(bb.assignment, sat_result.model)
                            self.simplex.pop()
                            return TheoryResult.SAT, model
                        # Integer-infeasible: block this exact boolean model.
                        blocking = [
                            -b if sat_result.model.get(b, False) else b
                            for b in self._atoms
                        ]
                        self.simplex.pop()
                        self.theory_conflicts += 1
                        self.sat.add_clause(blocking)
                        continue
                    model = self._extract_model(check.assignment, sat_result.model)
                    self.simplex.pop()
                    return TheoryResult.SAT, model
                conflict = check

            # Theory conflict: learn the blocking clause from the core.
            literals = set()
            for ref in conflict.conflict:
                origin = bound_origin.get(ref)
                if origin is not None:
                    literals.add(-origin)
            self.simplex.pop()
            self.theory_conflicts += 1
            if not literals:
                # Conflict among permanent bounds: unsatisfiable outright.
                return TheoryResult.UNSAT, None
            self.sat.add_clause(sorted(literals))

    def _derived_neg(self, atom: TheoryAtom) -> Constraint | None:
        if atom.pos.relation is Relation.EQ:
            return None
        integral = all(
            var in self._integer_vars for var in atom.pos.expr.coeffs
        ) and all(c.denominator == 1 for c in atom.pos.expr.coeffs.values())
        if not integral or atom.pos.expr.constant.denominator != 1:
            return None
        return atom.pos.negated()

    def _extract_model(self, assignment, boolean_model) -> DpllTModel:
        values = {
            name: assignment[var_id] for name, var_id in self._var_ids.items()
        }
        return DpllTModel(values=values, booleans=dict(boolean_model))
