"""Integer feasibility by branch & bound over the exact simplex.

The noise variables of the FANNet query are integer percentages; the LP
relaxation may answer with fractional values.  Branch & bound splits on a
fractional integer variable (``x ≤ ⌊v⌋`` / ``x ≥ ⌈v⌉``) and recurses.
Because every integer variable in our encodings carries finite bounds,
the search tree is finite and the procedure is a decision procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor

from ..errors import BudgetExceededError
from .simplex import Simplex, SimplexResult


@dataclass
class IntegerFeasibilityResult:
    feasible: bool
    assignment: dict[int, Fraction] | None = None
    nodes: int = 0

    def __bool__(self):
        return self.feasible


def solve_integer_feasibility(
    simplex: Simplex,
    integer_vars: list[int],
    node_budget: int = 100_000,
) -> IntegerFeasibilityResult:
    """Decide whether the current simplex constraints admit a solution
    with every variable in ``integer_vars`` integral.

    The simplex is restored to its entry state before returning.
    """
    counter = {"nodes": 0}

    def recurse() -> dict[int, Fraction] | None:
        counter["nodes"] += 1
        if counter["nodes"] > node_budget:
            raise BudgetExceededError(
                f"branch & bound exceeded {node_budget} nodes", budget=node_budget
            )
        result: SimplexResult = simplex.check()
        if not result.feasible:
            return None
        assignment = result.assignment
        branch_var = None
        branch_value = None
        for var in integer_vars:
            value = assignment[var]
            if value.denominator != 1:
                branch_var, branch_value = var, value
                break
        if branch_var is None:
            return assignment

        # Branch down: x <= floor(v).
        simplex.push()
        conflict = simplex.assert_upper(branch_var, Fraction(floor(branch_value)))
        if conflict is None:
            solution = recurse()
            if solution is not None:
                simplex.pop()
                return solution
        simplex.pop()

        # Branch up: x >= ceil(v).
        simplex.push()
        conflict = simplex.assert_lower(branch_var, Fraction(ceil(branch_value)))
        if conflict is None:
            solution = recurse()
            if solution is not None:
                simplex.pop()
                return solution
        simplex.pop()
        return None

    solution = recurse()
    return IntegerFeasibilityResult(
        feasible=solution is not None,
        assignment=solution,
        nodes=counter["nodes"],
    )
