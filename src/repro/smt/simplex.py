"""Incremental general simplex over exact rationals.

The Dutertre–de Moura "general simplex" (the algorithm inside Yices,
Z3 and MathSAT theory cores): variables carry optional lower/upper
bounds, tableau rows define *basic* variables as linear combinations of
*non-basic* ones, and feasibility is restored by Bland-rule pivoting —
guaranteed to terminate.  All arithmetic is :class:`fractions.Fraction`,
so a SAT/UNSAT verdict is a theorem about the model, not a float guess.

Supports ``push`` / ``pop`` of bound assertions, which is what both the
lazy DPLL(T) loop and the ReLU phase-splitting verifier need, and returns
*conflict sets* (the subset of asserted bounds proving infeasibility) so
callers can learn small blocking clauses.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Mapping

from ..errors import SmtError
from ..rational import to_fraction


class BoundKind(Enum):
    LOWER = "lower"
    UPPER = "upper"


@dataclass(frozen=True)
class BoundRef:
    """Identifies one asserted bound: (variable, kind).  Conflict sets are
    frozensets of these."""

    var: int
    kind: BoundKind


@dataclass
class SimplexResult:
    feasible: bool
    assignment: dict[int, Fraction] | None = None
    conflict: frozenset[BoundRef] | None = None
    pivots: int = 0

    def __bool__(self):
        return self.feasible


class Simplex:
    """Exact incremental simplex.  Variables are integer ids."""

    def __init__(self):
        self._num_vars = 0
        self._lower: list[Fraction | None] = []
        self._upper: list[Fraction | None] = []
        # Which asserted bound produced the current lower/upper (for cores).
        self._value: list[Fraction] = []
        # rows: basic var -> {nonbasic var: coeff}
        self._rows: dict[int, dict[int, Fraction]] = {}
        self._basic_of: dict[int, int] = {}  # var -> var (identity for basics)
        # columns: nonbasic var -> set of basic vars whose row mentions it
        self._cols: dict[int, set[int]] = {}
        self._trail: list[tuple[int, BoundKind, Fraction | None]] = []
        self._trail_lim: list[int] = []
        self.total_pivots = 0

    # -- variables and rows ----------------------------------------------------

    def new_var(self) -> int:
        var = self._num_vars
        self._num_vars += 1
        self._lower.append(None)
        self._upper.append(None)
        self._value.append(Fraction(0))
        self._cols[var] = set()
        return var

    def define(self, combination: Mapping[int, object]) -> int:
        """Create a *basic* variable equal to ``Σ coeff · var``.

        Must be called before any ``push``; the definition is permanent.
        Referenced variables may themselves be defined (rows are expanded
        so the tableau only mentions non-basic variables).
        """
        if self._trail_lim:
            raise SmtError("define() only allowed at decision level 0")
        expansion: dict[int, Fraction] = {}
        for var, raw_coeff in combination.items():
            coeff = to_fraction(raw_coeff)
            if coeff == 0:
                continue
            if var in self._rows:
                for inner, inner_coeff in self._rows[var].items():
                    expansion[inner] = expansion.get(inner, Fraction(0)) + coeff * inner_coeff
            else:
                expansion[var] = expansion.get(var, Fraction(0)) + coeff
        expansion = {v: c for v, c in expansion.items() if c != 0}
        slack = self.new_var()
        self._rows[slack] = expansion
        for var in expansion:
            self._cols[var].add(slack)
        self._value[slack] = sum(
            (c * self._value[v] for v, c in expansion.items()), Fraction(0)
        )
        return slack

    # -- bound assertion with backtracking ------------------------------------------

    def push(self) -> None:
        self._trail_lim.append(len(self._trail))

    def pop(self) -> None:
        if not self._trail_lim:
            raise SmtError("pop without matching push")
        boundary = self._trail_lim.pop()
        while len(self._trail) > boundary:
            var, kind, old = self._trail.pop()
            if kind is BoundKind.LOWER:
                self._lower[var] = old
            else:
                self._upper[var] = old

    def assert_lower(self, var: int, bound) -> SimplexResult | None:
        """Tighten the lower bound of ``var``; returns a conflict result or None."""
        bound = to_fraction(bound)
        current = self._lower[var]
        if current is not None and bound <= current:
            return None  # no tightening
        upper = self._upper[var]
        if upper is not None and bound > upper:
            return SimplexResult(
                False,
                conflict=frozenset(
                    {BoundRef(var, BoundKind.LOWER), BoundRef(var, BoundKind.UPPER)}
                ),
            )
        self._trail.append((var, BoundKind.LOWER, current))
        self._lower[var] = bound
        if var not in self._rows and self._value[var] < bound:
            self._update_nonbasic(var, bound)
        return None

    def assert_upper(self, var: int, bound) -> SimplexResult | None:
        """Tighten the upper bound of ``var``; returns a conflict result or None."""
        bound = to_fraction(bound)
        current = self._upper[var]
        if current is not None and bound >= current:
            return None
        lower = self._lower[var]
        if lower is not None and bound < lower:
            return SimplexResult(
                False,
                conflict=frozenset(
                    {BoundRef(var, BoundKind.LOWER), BoundRef(var, BoundKind.UPPER)}
                ),
            )
        self._trail.append((var, BoundKind.UPPER, current))
        self._upper[var] = bound
        if var not in self._rows and self._value[var] > bound:
            self._update_nonbasic(var, bound)
        return None

    def bounds(self, var: int) -> tuple[Fraction | None, Fraction | None]:
        return self._lower[var], self._upper[var]

    # -- assignment maintenance ---------------------------------------------------------

    def _update_nonbasic(self, var: int, new_value: Fraction) -> None:
        delta = new_value - self._value[var]
        if delta == 0:
            return
        for basic in self._cols.get(var, ()):
            self._value[basic] += self._rows[basic][var] * delta
        self._value[var] = new_value

    # -- pivoting -------------------------------------------------------------------------

    def _pivot(self, basic: int, nonbasic: int) -> None:
        """Swap roles: ``nonbasic`` becomes basic, ``basic`` becomes non-basic."""
        row = self._rows.pop(basic)
        coeff = row.pop(nonbasic)
        for var in row:
            self._cols[var].discard(basic)
        self._cols[nonbasic].discard(basic)

        # nonbasic = (basic - Σ others) / coeff
        new_row: dict[int, Fraction] = {basic: Fraction(1) / coeff}
        for var, c in row.items():
            new_row[var] = -c / coeff
        self._rows[nonbasic] = new_row
        self._cols.setdefault(basic, set()).add(nonbasic)
        for var in row:
            self._cols[var].add(nonbasic)

        # Substitute into every other row that mentions `nonbasic`.
        for other in list(self._cols[nonbasic]):
            if other == nonbasic:
                continue
            other_row = self._rows[other]
            factor = other_row.pop(nonbasic, None)
            if factor is None:
                self._cols[nonbasic].discard(other)
                continue
            for var, c in new_row.items():
                updated = other_row.get(var, Fraction(0)) + factor * c
                if updated == 0:
                    if var in other_row:
                        del other_row[var]
                    self._cols[var].discard(other)
                else:
                    other_row[var] = updated
                    self._cols[var].add(other)
        # Every remaining mention of `nonbasic` was substituted away.
        self._cols[nonbasic] = set()
        self.total_pivots += 1

    def _pivot_and_update(self, basic: int, nonbasic: int, target: Fraction) -> None:
        coeff = self._rows[basic][nonbasic]
        theta = (target - self._value[basic]) / coeff
        self._value[basic] = target
        self._value[nonbasic] += theta
        for other in self._cols[nonbasic]:
            if other != basic:
                self._value[other] += self._rows[other][nonbasic] * theta
        self._pivot(basic, nonbasic)

    # -- feasibility -----------------------------------------------------------------------

    def check(self, max_pivots: int = 100_000) -> SimplexResult:
        """Restore feasibility (Bland's rule).  Exact and terminating."""
        pivots = 0
        while True:
            violated = None
            needs_increase = False
            for basic in sorted(self._rows):
                value = self._value[basic]
                lower, upper = self._lower[basic], self._upper[basic]
                if lower is not None and value < lower:
                    violated, needs_increase, target = basic, True, lower
                    break
                if upper is not None and value > upper:
                    violated, needs_increase, target = basic, False, upper
                    break
            if violated is None:
                return SimplexResult(
                    True,
                    assignment={v: self._value[v] for v in range(self._num_vars)},
                    pivots=pivots,
                )
            if pivots >= max_pivots:
                raise SmtError(f"simplex exceeded {max_pivots} pivots")

            row = self._rows[violated]
            candidate = None
            for nonbasic in sorted(row):
                coeff = row[nonbasic]
                if needs_increase:
                    can_move = (
                        coeff > 0
                        and (
                            self._upper[nonbasic] is None
                            or self._value[nonbasic] < self._upper[nonbasic]
                        )
                    ) or (
                        coeff < 0
                        and (
                            self._lower[nonbasic] is None
                            or self._value[nonbasic] > self._lower[nonbasic]
                        )
                    )
                else:
                    can_move = (
                        coeff > 0
                        and (
                            self._lower[nonbasic] is None
                            or self._value[nonbasic] > self._lower[nonbasic]
                        )
                    ) or (
                        coeff < 0
                        and (
                            self._upper[nonbasic] is None
                            or self._value[nonbasic] < self._upper[nonbasic]
                        )
                    )
                if can_move:
                    candidate = nonbasic
                    break
            if candidate is None:
                # Infeasible: the row plus the blocking bounds form the core.
                conflict = {
                    BoundRef(violated, BoundKind.LOWER if needs_increase else BoundKind.UPPER)
                }
                for nonbasic in row:
                    coeff = row[nonbasic]
                    if needs_increase:
                        conflict.add(
                            BoundRef(
                                nonbasic,
                                BoundKind.UPPER if coeff > 0 else BoundKind.LOWER,
                            )
                        )
                    else:
                        conflict.add(
                            BoundRef(
                                nonbasic,
                                BoundKind.LOWER if coeff > 0 else BoundKind.UPPER,
                            )
                        )
                return SimplexResult(False, conflict=frozenset(conflict), pivots=pivots)

            self._pivot_and_update(violated, candidate, target)
            pivots += 1

    # -- introspection ------------------------------------------------------------------------

    def value(self, var: int) -> Fraction:
        return self._value[var]

    @property
    def num_vars(self) -> int:
        return self._num_vars
