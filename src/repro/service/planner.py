"""Deterministic batch planning: specs → picklable task units → shards.

The planner expands a :class:`~repro.service.spec.BatchSpec` into the
global list of self-contained work units the runtime already knows how
to execute (:class:`~repro.runtime.tasks.ToleranceSearchTask` /
:class:`ExtractionTask` / :class:`ProbeTask`), each wrapped with a
stable *identity* string.  Sharding is a pure function of that identity
(:func:`shard_of` — SHA-256, not Python's salted ``hash``), so every
shard invocation, on any machine, re-plans the identical task list and
agrees on who owns what without any coordination.  Results are keyed by
identity, which is what lets the merge step fold any shard layout into
one bit-identical report.

Planning is deterministic end to end: the case-study data generator and
the trainer are seeded, quantisation is exact, and jobs are planned in
sorted-name order.  The planner dedupes expensive resources (the case
study, trained networks) across jobs that share them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..config import TrainConfig
from ..data import load_leukemia_case_study
from ..data.dataset import Dataset
from ..errors import ConfigError
from ..nn import load_network, quantize_network, train_paper_network
from ..runtime import (
    ExtractionTask,
    ProbeTask,
    ToleranceSearchTask,
    runtime_context,
)
from .spec import BatchSpec, JobSpec, NetworkSpec


def shard_of(identity: str, shard_count: int) -> int:
    """Stable shard index for one task identity (0-based).

    SHA-256 of the identity string — invariant across processes, hosts
    and Python hash randomisation, so any ``--shard i/N`` invocation
    computes the same partition of the global task list.
    """
    if shard_count < 1:
        raise ConfigError("shard count must be >= 1")
    digest = hashlib.sha256(identity.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


@dataclass(frozen=True)
class PlannedTask:
    """One schedulable unit: a runtime task plus its global identity."""

    job: str
    identity: str
    task: Any  # ToleranceSearchTask | ExtractionTask | ProbeTask

    def shard(self, shard_count: int) -> int:
        return shard_of(self.identity, shard_count)


@dataclass
class PlannedJob:
    """A job expanded against its built network and dataset slice."""

    spec: JobSpec
    network: Any  # QuantizedNetwork
    dataset: Dataset  # the selected slice (rows in index order)
    indices: tuple[int, ...]  # split-absolute row indices of the slice
    tasks: list[PlannedTask] = field(default_factory=list)
    meta: dict = field(default_factory=dict)  # JSON-ready shard-file header

    @property
    def name(self) -> str:
        return self.spec.name

    def shard_tasks(self, shard_index: int, shard_count: int) -> list[PlannedTask]:
        """This job's tasks owned by ``shard_index`` (0-based) of ``shard_count``."""
        return [t for t in self.tasks if t.shard(shard_count) == shard_index]


class BatchPlanner:
    """Expands a spec into :class:`PlannedJob` lists, deduping resources."""

    def __init__(self, spec: BatchSpec):
        self.spec = spec
        self._case_study = None
        self._networks: dict[tuple, Any] = {}

    # -- resource construction -------------------------------------------------

    def _case_study_data(self):
        if self._case_study is None:
            self._case_study = load_leukemia_case_study()
        return self._case_study

    def _network_for(self, network_spec: NetworkSpec):
        """The quantised network a spec names (cached per distinct source)."""
        key = (network_spec.kind, network_spec.train_seed, network_spec.path)
        quantized = self._networks.get(key)
        if quantized is None:
            if network_spec.kind == "case-study":
                data = self._case_study_data()
                result = train_paper_network(
                    data.train.features,
                    data.train.labels,
                    TrainConfig(seed=network_spec.train_seed),
                )
                quantized = quantize_network(result.network)
            else:  # "file"
                quantized = quantize_network(load_network(network_spec.path))
            self._networks[key] = quantized
        return quantized

    def _dataset_for(self, job: JobSpec) -> tuple[Dataset, tuple[int, ...]]:
        data = self._case_study_data()
        split = data.test if job.dataset.split == "test" else data.train
        indices = job.dataset.resolve(split.num_samples)
        return split.subset(indices), indices

    # -- planning ---------------------------------------------------------------

    def plan(self) -> list[PlannedJob]:
        """Every job expanded to tasks, in sorted job-name order."""
        return [
            self._plan_job(job)
            for job in sorted(self.spec.jobs, key=lambda job: job.name)
        ]

    def _plan_job(self, job: JobSpec) -> PlannedJob:
        quantized = self._network_for(job.network)
        dataset, indices = self._dataset_for(job)
        if quantized.num_inputs != dataset.num_features:
            raise ConfigError(
                f"job {job.name!r}: network takes {quantized.num_inputs} inputs "
                f"but the dataset has {dataset.num_features} features"
            )
        planned = PlannedJob(
            spec=job, network=quantized, dataset=dataset, indices=indices
        )

        # The paper's convention everywhere: only correctly-classified
        # inputs carry noise-tolerance information.
        triples = []
        for position, index in enumerate(indices):
            x = np.asarray(dataset.features[position])
            true_label = int(dataset.labels[position])
            if quantized.predict(x) != true_label:
                continue
            triples.append((int(index), tuple(int(v) for v in x), true_label))

        name = job.name
        if job.tolerance is not None:
            for index, x, true_label in triples:
                planned.tasks.append(
                    PlannedTask(
                        job=name,
                        identity=f"{name}/tolerance/i{index}",
                        task=ToleranceSearchTask(
                            index=index,
                            x=x,
                            true_label=true_label,
                            ceiling=job.tolerance.ceiling,
                            schedule=job.tolerance.schedule,
                        ),
                    )
                )
        if job.extraction is not None:
            for index, x, true_label in triples:
                planned.tasks.append(
                    PlannedTask(
                        job=name,
                        identity=f"{name}/extract/i{index}@p{job.extraction.percent}",
                        task=ExtractionTask(
                            index=index,
                            x=x,
                            true_label=true_label,
                            percent=job.extraction.percent,
                            limit=job.extraction.limit,
                            exhaustive_cutoff=job.extraction.exhaustive_cutoff,
                        ),
                    )
                )
        if job.probe is not None:
            inputs = tuple(triples)
            for node in range(quantized.num_inputs):
                for sign, tag in ((+1, "pos"), (-1, "neg")):
                    planned.tasks.append(
                        PlannedTask(
                            job=name,
                            identity=f"{name}/probe/n{node}.{tag}",
                            task=ProbeTask(
                                node=node,
                                sign=sign,
                                ceiling=job.probe.ceiling,
                                inputs=inputs,
                            ),
                        )
                    )

        train_counts = self._case_study_data().train.class_counts()
        planned.meta = {
            "job": name,
            "context": runtime_context(quantized, job.verifier),
            "correctly_classified": len(triples),
            "sliced_inputs": len(indices),
            "indices": [int(i) for i in indices],
            "train_class_counts": {
                str(label): int(count) for label, count in sorted(train_counts.items())
            },
            "spec": _job_spec_dict(self.spec, job),
        }
        return planned


def _job_spec_dict(spec: BatchSpec, job: JobSpec) -> dict:
    """The manifest fragment describing one job (for shard-file headers)."""
    for entry in spec.to_dict()["jobs"]:
        if entry["name"] == job.name:
            return entry
    raise ConfigError(f"job {job.name!r} is not part of batch {spec.name!r}")
