"""Deterministic batch planning: specs → picklable task units → shards.

The planner expands a :class:`~repro.service.spec.BatchSpec` into the
global list of self-contained work units the runtime already knows how
to execute (:class:`~repro.runtime.tasks.ToleranceSearchTask` /
:class:`ExtractionTask` / :class:`ProbeTask`), each wrapped with a
stable *identity* string.  Sharding is a pure function of that identity
(:func:`shard_of` — SHA-256, not Python's salted ``hash``), so every
shard invocation, on any machine, re-plans the identical task list and
agrees on who owns what without any coordination.  Results are keyed by
identity, which is what lets the merge step fold any shard layout into
one bit-identical report.

Planning is deterministic end to end: the case-study data generator and
the trainer are seeded, quantisation is exact, and jobs are planned in
sorted-name order.  The planner dedupes expensive resources (the case
study, trained networks) across jobs that share them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..config import TrainConfig
from ..data import load_leukemia_case_study
from ..data.dataset import Dataset
from ..errors import ConfigError
from ..nn import load_network, quantize_network, train_paper_network
from ..runtime import (
    ExtractionTask,
    ProbeTask,
    ToleranceSearchTask,
    runtime_context,
)
from .spec import BatchSpec, JobSpec, NetworkSpec


def shard_of(identity: str, shard_count: int) -> int:
    """Stable shard index for one task identity (0-based).

    SHA-256 of the identity string — invariant across processes, hosts
    and Python hash randomisation, so any ``--shard i/N`` invocation
    computes the same partition of the global task list.
    """
    if shard_count < 1:
        raise ConfigError("shard count must be >= 1")
    digest = hashlib.sha256(identity.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


@dataclass(frozen=True)
class PlannedTask:
    """One schedulable unit: a runtime task plus its global identity."""

    job: str
    identity: str
    task: Any  # ToleranceSearchTask | ExtractionTask | ProbeTask

    def shard(self, shard_count: int) -> int:
        return shard_of(self.identity, shard_count)


@dataclass
class PlannedJob:
    """A job expanded against its built network and dataset slice."""

    spec: JobSpec
    network: Any  # QuantizedNetwork
    dataset: Dataset  # the selected slice (rows in index order)
    indices: tuple[int, ...]  # dataset-absolute row indices of the slice
    data_digest: str | None = None  # external-source content digest
    tasks: list[PlannedTask] = field(default_factory=list)
    meta: dict = field(default_factory=dict)  # JSON-ready shard-file header

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def identity_prefix(self) -> str:
        """Leading component of every task identity of this job.

        External-source jobs embed the source's content digest, so a
        changed file (or a different parse of the same file) changes
        every identity — stale shard results then surface as missing/
        stray at merge and status time instead of silently blending in.
        """
        if self.data_digest is None:
            return self.spec.name
        return f"{self.spec.name}@d{self.data_digest[:12]}"

    def shard_tasks(self, shard_index: int, shard_count: int) -> list[PlannedTask]:
        """This job's tasks owned by ``shard_index`` (0-based) of ``shard_count``."""
        return [t for t in self.tasks if t.shard(shard_count) == shard_index]


class BatchPlanner:
    """Expands a spec into :class:`PlannedJob` lists, deduping resources."""

    def __init__(self, spec: BatchSpec):
        self.spec = spec
        self._case_study = None
        self._networks: dict[tuple, Any] = {}
        self._sources: dict[Any, tuple] = {}  # DataSourceSpec -> (data, digest, desc)

    # -- resource construction -------------------------------------------------

    def _case_study_data(self):
        if self._case_study is None:
            self._case_study = load_leukemia_case_study()
        return self._case_study

    def _network_for(self, network_spec: NetworkSpec):
        """The quantised network a spec names (cached per distinct source)."""
        key = (network_spec.kind, network_spec.train_seed, network_spec.path)
        quantized = self._networks.get(key)
        if quantized is None:
            if network_spec.kind == "case-study":
                data = self._case_study_data()
                result = train_paper_network(
                    data.train.features,
                    data.train.labels,
                    TrainConfig(seed=network_spec.train_seed),
                )
                quantized = quantize_network(result.network)
            else:  # "file"
                quantized = quantize_network(load_network(network_spec.path))
            self._networks[key] = quantized
        return quantized

    def _dataset_for(
        self, job: JobSpec
    ) -> tuple[Dataset, tuple[int, ...], str | None, dict | None]:
        """The job's sliced dataset plus the source digest/description.

        Case-study jobs return ``(slice, indices, None, None)``; external
        sources additionally carry their content digest (folded into
        task identities and the cache context) and a JSON-ready
        description for the shard-file header.
        """
        if job.dataset.source is not None:
            full, digest, described = self._source_dataset(job.dataset.source)
            indices = job.dataset.resolve(full.num_samples)
            return full.subset(indices), indices, digest, described
        data = self._case_study_data()
        split = data.test if job.dataset.split == "test" else data.train
        indices = job.dataset.resolve(split.num_samples)
        return split.subset(indices), indices, None, None

    def _source_dataset(self, spec) -> tuple[Dataset, str, dict]:
        """Load (once per distinct source spec) an external feature file."""
        loaded = self._sources.get(spec)
        if loaded is None:
            source = spec.build()
            loaded = (source.load(), source.digest(), source.describe())
            self._sources[spec] = loaded
        return loaded

    # -- planning ---------------------------------------------------------------

    def plan(self) -> list[PlannedJob]:
        """Every job expanded to tasks, in sorted job-name order."""
        return [
            self._plan_job(job)
            for job in sorted(self.spec.jobs, key=lambda job: job.name)
        ]

    def _plan_job(self, job: JobSpec) -> PlannedJob:
        quantized = self._network_for(job.network)
        dataset, indices, digest, source_desc = self._dataset_for(job)
        if quantized.num_inputs != dataset.num_features:
            raise ConfigError(
                f"job {job.name!r}: network takes {quantized.num_inputs} inputs "
                f"but the dataset has {dataset.num_features} features"
            )
        planned = PlannedJob(
            spec=job,
            network=quantized,
            dataset=dataset,
            indices=indices,
            data_digest=digest,
        )

        # The paper's convention everywhere: only correctly-classified
        # inputs carry noise-tolerance information.
        triples = []
        for position, index in enumerate(indices):
            x = np.asarray(dataset.features[position])
            true_label = int(dataset.labels[position])
            if quantized.predict(x) != true_label:
                continue
            triples.append((int(index), tuple(int(v) for v in x), true_label))

        name = job.name
        prefix = planned.identity_prefix
        if job.tolerance is not None:
            for index, x, true_label in triples:
                planned.tasks.append(
                    PlannedTask(
                        job=name,
                        identity=f"{prefix}/tolerance/i{index}",
                        task=ToleranceSearchTask(
                            index=index,
                            x=x,
                            true_label=true_label,
                            ceiling=job.tolerance.ceiling,
                            schedule=job.tolerance.schedule,
                        ),
                    )
                )
        if job.extraction is not None:
            for index, x, true_label in triples:
                planned.tasks.append(
                    PlannedTask(
                        job=name,
                        identity=f"{prefix}/extract/i{index}@p{job.extraction.percent}",
                        task=ExtractionTask(
                            index=index,
                            x=x,
                            true_label=true_label,
                            percent=job.extraction.percent,
                            limit=job.extraction.limit,
                            exhaustive_cutoff=job.extraction.exhaustive_cutoff,
                        ),
                    )
                )
        if job.probe is not None:
            inputs = tuple(triples)
            for node in range(quantized.num_inputs):
                for sign, tag in ((+1, "pos"), (-1, "neg")):
                    planned.tasks.append(
                        PlannedTask(
                            job=name,
                            identity=f"{prefix}/probe/n{node}.{tag}",
                            task=ProbeTask(
                                node=node,
                                sign=sign,
                                ceiling=job.probe.ceiling,
                                inputs=inputs,
                            ),
                        )
                    )

        # Bias census (Eq. 4): the trained network's class distribution.
        # Case-study networks trained on the case-study split keep the
        # paper's census even when they analyse external data; a file
        # network over an external source falls back to that source's
        # own distribution (the best census available without the
        # original training set).
        if job.network.kind == "case-study" or job.dataset.source is None:
            train_counts = self._case_study_data().train.class_counts()
        else:
            full, _, _ = self._source_dataset(job.dataset.source)
            train_counts = full.class_counts()
        planned.meta = {
            "job": name,
            "context": runtime_context(quantized, job.verifier, digest),
            "correctly_classified": len(triples),
            "sliced_inputs": len(indices),
            "indices": [int(i) for i in indices],
            "dataset_digest": digest,
            "dataset_source": source_desc,
            "train_class_counts": {
                str(label): int(count) for label, count in sorted(train_counts.items())
            },
            "spec": _job_spec_dict(self.spec, job),
        }
        return planned


def _job_spec_dict(spec: BatchSpec, job: JobSpec) -> dict:
    """The manifest fragment describing one job (for shard-file headers)."""
    for entry in spec.to_dict()["jobs"]:
        if entry["name"] == job.name:
            return entry
    raise ConfigError(f"job {job.name!r} is not part of batch {spec.name!r}")
