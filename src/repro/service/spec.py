"""Batch specifications: many (network, dataset slice, analyses, budget) jobs.

A :class:`BatchSpec` names the workload of one batch campaign — every
job pairs a network source with a dataset slice, a verifier budget and
the analyses to run on it.  Specs are plain frozen dataclasses, built
either in Python or from a JSON/TOML *manifest* file::

    {
      "version": 1,
      "name": "seed-sweep",
      "runtime": {"workers": 2, "cache_dir": ".qcache"},
      "jobs": [
        {
          "name": "seed7",
          "network": {"kind": "case-study", "train_seed": 7},
          "dataset": {"split": "test", "stop": 8},
          "verifier": {"seed": 0},
          "analyses": {
            "tolerance": {"ceiling": 20, "schedule": "binary"},
            "extraction": {"percent": 8, "limit": 5},
            "probe": {"ceiling": 15}
          }
        }
      ]
    }

Validation is strict and loud: unknown keys, duplicate job names, bad
kinds and malformed sections all raise :class:`~repro.errors.ConfigError`
with the offending field named — a typo in a manifest must never
silently change what a campaign measures.  Unreadable or syntactically
broken files raise :class:`~repro.errors.DataError`.

``to_dict`` / ``from_dict`` round-trip exactly, so a spec constructed in
Python can be written out as the manifest of the run that executed it.
"""

from __future__ import annotations

import json
import re
import tomllib
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..config import RuntimeConfig, VerifierConfig
from ..data.sources import SOURCE_DTYPES, DatasetSource, build_source, source_kinds
from ..errors import ConfigError, DataError

#: Manifest schema version this module reads and writes.
MANIFEST_VERSION = 1

#: Job and batch names become file names and task identities.
#: \Z, not $: '$' would admit a trailing newline into file names.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*\Z")

NETWORK_KINDS = ("case-study", "file")
DATASET_SPLITS = ("test", "train")
SCHEDULES = ("binary", "paper")


def _check_name(name, what: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ConfigError(
            f"{what} name {name!r} is invalid: use letters, digits, '.', '_' "
            "or '-' (names become file names and task identities)"
        )
    return name


def _section(payload: dict, key: str, what: str) -> dict:
    value = payload.get(key)
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise ConfigError(f"{what} '{key}' section must be a mapping")
    return value


def _reject_unknown(payload: dict, allowed: tuple[str, ...], what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ConfigError(
            f"unknown {what} key(s): {', '.join(unknown)} "
            f"(expected a subset of: {', '.join(allowed)})"
        )


def _build(cls, payload: dict, what: str):
    """Construct a spec dataclass, turning type mismatches into ConfigError."""
    try:
        return cls(**payload)
    except (TypeError, ValueError) as err:
        raise ConfigError(f"bad {what} section: {err}") from None


@dataclass(frozen=True)
class NetworkSpec:
    """Where a job's network comes from.

    ``case-study`` trains the paper's 5-20-2 network on the case-study
    training split with ``train_seed`` (different seeds give genuinely
    different networks — the cross-model comparison axis).  ``file``
    loads a network previously saved with ``fannet train`` /
    :func:`repro.nn.save_network` from ``path``.
    """

    kind: str = "case-study"
    train_seed: int = 7
    path: str | None = None

    def __post_init__(self):
        if self.kind not in NETWORK_KINDS:
            raise ConfigError(
                f"network kind {self.kind!r} is not one of {NETWORK_KINDS}"
            )
        if self.kind == "file" and not self.path:
            raise ConfigError("network kind 'file' requires a 'path'")

    @classmethod
    def from_dict(cls, payload: dict) -> "NetworkSpec":
        _reject_unknown(payload, ("kind", "train_seed", "path"), "network")
        return _build(cls, payload, "network")


@dataclass(frozen=True)
class DataSourceSpec:
    """An external feature file a job analyses (see :mod:`repro.data.sources`).

    ``kind`` selects the registered loader (``csv`` or ``npz``); the
    remaining fields are that loader's parse parameters.  Fields that do
    not belong to the chosen kind must stay at their defaults — a
    manifest naming ``features_key`` on a CSV source is a typo, not a
    preference.  Construction validates eagerly by building the source
    (the file itself is only read at planning time).
    """

    kind: str = "csv"
    path: str = ""
    label_column: str | int | None = None  # csv: name, index, or None = last
    delimiter: str = ","  # csv
    features_key: str = "features"  # npz
    labels_key: str = "labels"  # npz
    dtype: str = "int64"

    #: Manifest keys each kind accepts (strict: anything else is a typo).
    _KIND_KEYS = {
        "csv": ("kind", "path", "label_column", "delimiter", "dtype"),
        "npz": ("kind", "path", "features_key", "labels_key", "dtype"),
    }

    def __post_init__(self):
        if self.kind not in source_kinds():
            raise ConfigError(
                f"dataset source kind {self.kind!r} is not one of {source_kinds()}"
            )
        if not self.path or not isinstance(self.path, str):
            raise ConfigError(f"{self.kind} dataset source requires a 'path'")
        foreign = {
            "csv": (("features_key", "features"), ("labels_key", "labels")),
            "npz": (("label_column", None), ("delimiter", ",")),
        }[self.kind]
        for name, default in foreign:
            if getattr(self, name) != default:
                raise ConfigError(
                    f"{self.kind} dataset source does not take {name!r}"
                )
        self.build()  # parameter validation (no file I/O)

    def source_params(self) -> dict:
        keys = [k for k in self._KIND_KEYS[self.kind] if k != "kind"]
        return {key: getattr(self, key) for key in keys}

    def build(self) -> DatasetSource:
        """The live :class:`DatasetSource` this spec names."""
        return build_source(self.kind, **self.source_params())

    def to_dict(self) -> dict:
        return {"kind": self.kind, **self.source_params()}

    @classmethod
    def from_dict(cls, payload: dict) -> "DataSourceSpec":
        if not isinstance(payload, dict):
            raise ConfigError("dataset 'source' section must be a mapping")
        kind = payload.get("kind")
        if kind not in cls._KIND_KEYS:
            raise ConfigError(
                f"dataset source kind {kind!r} is not one of {source_kinds()}"
            )
        _reject_unknown(payload, cls._KIND_KEYS[kind], f"{kind} dataset source")
        if "dtype" in payload and payload["dtype"] not in SOURCE_DTYPES:
            raise ConfigError(
                f"dataset source dtype {payload['dtype']!r} is not one of "
                f"{SOURCE_DTYPES}"
            )
        return _build(cls, payload, "dataset source")


@dataclass(frozen=True)
class DatasetSpec:
    """Which data a job analyses: a case-study split or an external source.

    Without ``source``, ``split`` selects one of the built-in case-study
    splits (default ``test``).  With ``source``, the job reads an
    external feature file (see :class:`DataSourceSpec`) and ``split``
    must be omitted.  Either way the slice is an explicit ``indices``
    tuple or a ``start``/``stop`` range (half-open, like Python
    slicing).  Indices are *dataset-absolute*: task identities and
    per-input results keep them, so the same input keeps the same
    identity across slice definitions.
    """

    split: str | None = None
    start: int | None = None
    stop: int | None = None
    indices: tuple[int, ...] | None = None
    source: DataSourceSpec | None = None

    def __post_init__(self):
        if self.source is not None:
            if self.split is not None:
                raise ConfigError(
                    "a dataset takes either a case-study 'split' or an "
                    "external 'source', not both"
                )
        elif self.split is None:
            object.__setattr__(self, "split", "test")
        if self.split is not None and self.split not in DATASET_SPLITS:
            raise ConfigError(
                f"dataset split {self.split!r} is not one of {DATASET_SPLITS}"
            )
        if self.indices is not None:
            if self.start is not None or self.stop is not None:
                raise ConfigError(
                    "dataset slice takes either 'indices' or 'start'/'stop', not both"
                )
            object.__setattr__(
                self, "indices", tuple(int(i) for i in self.indices)
            )
            if any(i < 0 for i in self.indices):
                raise ConfigError("dataset indices must be non-negative")
            if len(set(self.indices)) != len(self.indices):
                raise ConfigError("dataset indices must be unique")
        for bound in (self.start, self.stop):
            if bound is not None and bound < 0:
                raise ConfigError("dataset start/stop must be non-negative")

    def resolve(self, num_samples: int) -> tuple[int, ...]:
        """The dataset-absolute row indices this slice selects."""
        if self.indices is not None:
            bad = [i for i in self.indices if i >= num_samples]
            if bad:
                raise ConfigError(
                    f"dataset indices {bad} out of range for a "
                    f"{num_samples}-sample dataset"
                    + (f" ({self.split} split)" if self.split else "")
                )
            return self.indices
        return tuple(range(num_samples))[self.start:self.stop]

    def to_dict(self) -> dict:
        payload: dict = {}
        if self.source is not None:
            payload["source"] = self.source.to_dict()
        else:
            payload["split"] = self.split
        payload.update(start=self.start, stop=self.stop)
        payload["indices"] = list(self.indices) if self.indices is not None else None
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DatasetSpec":
        _reject_unknown(
            payload, ("split", "start", "stop", "indices", "source"), "dataset"
        )
        if payload.get("split") is not None and payload.get("source") is not None:
            raise ConfigError(
                "a dataset takes either a case-study 'split' or an external "
                "'source', not both"
            )
        if "indices" in payload and payload["indices"] is not None:
            if not isinstance(payload["indices"], (list, tuple)):
                raise ConfigError("dataset 'indices' must be a list")
            payload = dict(payload, indices=tuple(payload["indices"]))
        if payload.get("source") is not None:
            payload = dict(payload, source=DataSourceSpec.from_dict(payload["source"]))
        return _build(cls, payload, "dataset")


@dataclass(frozen=True)
class ToleranceSpec:
    """P2 search parameters (noise budget = the search ceiling)."""

    ceiling: int = 60
    schedule: str = "binary"

    def __post_init__(self):
        if self.ceiling < 1:
            raise ConfigError("tolerance ceiling must be >= 1")
        if self.schedule not in SCHEDULES:
            raise ConfigError(f"schedule {self.schedule!r} is not one of {SCHEDULES}")

    @classmethod
    def from_dict(cls, payload: dict) -> "ToleranceSpec":
        _reject_unknown(payload, ("ceiling", "schedule"), "tolerance")
        return _build(cls, payload, "tolerance")


@dataclass(frozen=True)
class ExtractionSpec:
    """P3 extraction parameters at a fixed noise range."""

    percent: int = 8
    limit: int | None = None
    exhaustive_cutoff: int = 8_000_000

    def __post_init__(self):
        if self.percent < 1:
            raise ConfigError("extraction percent must be >= 1")
        if self.limit is not None and self.limit < 1:
            raise ConfigError("extraction limit must be >= 1 (or null)")
        if self.exhaustive_cutoff < 1:
            raise ConfigError("exhaustive_cutoff must be >= 1")

    @classmethod
    def from_dict(cls, payload: dict) -> "ExtractionSpec":
        _reject_unknown(
            payload, ("percent", "limit", "exhaustive_cutoff"), "extraction"
        )
        return _build(cls, payload, "extraction")


@dataclass(frozen=True)
class ProbeSpec:
    """Eq.-3 single-node probe parameters."""

    ceiling: int = 60

    def __post_init__(self):
        if self.ceiling < 1:
            raise ConfigError("probe ceiling must be >= 1")

    @classmethod
    def from_dict(cls, payload: dict) -> "ProbeSpec":
        _reject_unknown(payload, ("ceiling",), "probe")
        return _build(cls, payload, "probe")


@dataclass(frozen=True)
class JobSpec:
    """One (network, dataset slice, analyses, budget) tuple of a batch."""

    name: str
    network: NetworkSpec = field(default_factory=NetworkSpec)
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    verifier: VerifierConfig = field(default_factory=VerifierConfig)
    tolerance: ToleranceSpec | None = None
    extraction: ExtractionSpec | None = None
    probe: ProbeSpec | None = None

    def __post_init__(self):
        _check_name(self.name, "job")
        if self.tolerance is None and self.extraction is None and self.probe is None:
            raise ConfigError(
                f"job {self.name!r} requests no analyses; give it at least one "
                "of 'tolerance', 'extraction' or 'probe'"
            )

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ConfigError("each job must be a mapping")
        _reject_unknown(
            payload, ("name", "network", "dataset", "verifier", "analyses"), "job"
        )
        if "name" not in payload:
            raise ConfigError("every job needs a 'name'")
        analyses = _section(payload, "analyses", "job")
        _reject_unknown(analyses, ("tolerance", "extraction", "probe"), "analyses")

        def sub(spec_cls, key):
            if key not in analyses or analyses[key] is None:
                return None
            section = analyses[key]
            if section is True:  # bare opt-in: defaults
                section = {}
            if not isinstance(section, dict):
                raise ConfigError(f"analysis '{key}' section must be a mapping")
            return spec_cls.from_dict(section)

        return cls(
            name=payload["name"],
            network=NetworkSpec.from_dict(_section(payload, "network", "job")),
            dataset=DatasetSpec.from_dict(_section(payload, "dataset", "job")),
            verifier=VerifierConfig.from_dict(_section(payload, "verifier", "job")),
            tolerance=sub(ToleranceSpec, "tolerance"),
            extraction=sub(ExtractionSpec, "extraction"),
            probe=sub(ProbeSpec, "probe"),
        )


@dataclass(frozen=True)
class BatchSpec:
    """A whole batch campaign: jobs plus the shared runtime policy."""

    name: str
    jobs: tuple[JobSpec, ...] = ()
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def __post_init__(self):
        _check_name(self.name, "batch")
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.jobs:
            raise ConfigError("a batch needs at least one job")
        names = [job.name for job in self.jobs]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigError(f"duplicate job name(s): {', '.join(dupes)}")

    def job(self, name: str) -> JobSpec:
        for job in self.jobs:
            if job.name == name:
                return job
        raise ConfigError(f"batch {self.name!r} has no job {name!r}")

    # -- (de)serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Manifest-shaped plain dict (round-trips through from_dict)."""
        jobs = []
        for job in self.jobs:
            analyses: dict = {}
            for key in ("tolerance", "extraction", "probe"):
                section = getattr(job, key)
                if section is not None:
                    analyses[key] = asdict(section)
            jobs.append(
                {
                    "name": job.name,
                    "network": asdict(job.network),
                    "dataset": job.dataset.to_dict(),
                    "verifier": asdict(job.verifier),
                    "analyses": analyses,
                }
            )
        return {
            "version": MANIFEST_VERSION,
            "name": self.name,
            "runtime": asdict(self.runtime),
            "jobs": jobs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BatchSpec":
        if not isinstance(payload, dict):
            raise ConfigError("a batch manifest must be a mapping at top level")
        _reject_unknown(payload, ("version", "name", "runtime", "jobs"), "manifest")
        version = payload.get("version")
        if version != MANIFEST_VERSION:
            raise ConfigError(
                f"manifest version {version!r} is unsupported "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        if "name" not in payload:
            raise ConfigError("a batch manifest needs a 'name'")
        jobs = payload.get("jobs")
        if not isinstance(jobs, list):
            raise ConfigError("manifest 'jobs' must be a list")
        return cls(
            name=payload["name"],
            jobs=tuple(JobSpec.from_dict(job) for job in jobs),
            runtime=RuntimeConfig.from_dict(_section(payload, "runtime", "manifest")),
        )

    @classmethod
    def from_manifest(cls, path: str | Path) -> "BatchSpec":
        """Load a JSON (default) or TOML (``.toml``) manifest file."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as err:
            raise DataError(f"cannot read manifest {path}: {err}") from None
        if path.suffix.lower() == ".toml":
            try:
                payload = tomllib.loads(raw.decode("utf-8"))
            except (tomllib.TOMLDecodeError, UnicodeDecodeError) as err:
                raise DataError(f"manifest {path} is not valid TOML: {err}") from None
        else:
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError) as err:
                raise DataError(f"manifest {path} is not valid JSON: {err}") from None
        return cls.from_dict(payload)
