"""Batch orchestration plane: many networks/datasets per run, shardable.

The FANNet analyses compare tolerance profiles *across* trained
networks and dataset slices (the paper per network; Duddu et al. and
Jonasson et al. across architectures and training regimes).  This
package turns that workload shape into a service on top of the analysis
runtime:

- :mod:`repro.service.spec` — :class:`BatchSpec` / :class:`JobSpec`:
  the declarative campaign description, loadable from a JSON or TOML
  manifest (``BatchSpec.from_manifest``) or built in Python;
- :mod:`repro.service.planner` — deterministic expansion into the
  runtime's picklable task units, each with a stable identity string;
  :func:`shard_of` partitions the global task list by SHA-256 of that
  identity, so independent ``--shard i/N`` invocations agree on the
  partition with zero coordination;
- :mod:`repro.service.service` — :class:`BatchService`: executes one
  shard through per-context :class:`~repro.runtime.QueryRunner`s (one
  cache context per network × verifier config × dataset digest,
  persisted via the existing :class:`~repro.runtime.store.CacheStore`),
  writes per-job JSON shard files, and merges any complete shard set
  into one aggregate :class:`~repro.analysis.records.ExperimentRecord`
  — **bit-identical for every shard layout**;
- :mod:`repro.service.ledger` — :class:`CampaignLedger`: per-shard
  completion bookkeeping (outcome digests + context fingerprints) that
  makes campaigns crash-tolerant: ``BatchService.status`` names exactly
  the missing/corrupt/stale task identities in an output directory and
  ``run_shard(resume=True)`` re-executes only that gap, with the
  resumed merge byte-identical to an uninterrupted run.

Manifests name datasets beyond the case-study splits through the
:class:`~repro.service.spec.DataSourceSpec` section (CSV/NPZ feature
files, see :mod:`repro.data.sources`); the source's content digest is
folded into every task identity and cache context.

CLI: ``fannet batch plan | run [--resume] | status | merge``
(see :mod:`repro.cli`).
"""

from .ledger import (
    LEDGER_FORMAT_VERSION,
    CampaignLedger,
    ledger_file_name,
    outcome_digest,
)
from .planner import BatchPlanner, PlannedJob, PlannedTask, shard_of
from .service import (
    SHARD_FORMAT_VERSION,
    BatchService,
    CampaignStatus,
    JobStatus,
    ShardRunReport,
    shard_file_name,
)
from .spec import (
    MANIFEST_VERSION,
    BatchSpec,
    DataSourceSpec,
    DatasetSpec,
    ExtractionSpec,
    JobSpec,
    NetworkSpec,
    ProbeSpec,
    ToleranceSpec,
)

__all__ = [
    "BatchPlanner",
    "BatchService",
    "BatchSpec",
    "CampaignLedger",
    "CampaignStatus",
    "DataSourceSpec",
    "DatasetSpec",
    "ExtractionSpec",
    "JobSpec",
    "JobStatus",
    "LEDGER_FORMAT_VERSION",
    "MANIFEST_VERSION",
    "NetworkSpec",
    "PlannedJob",
    "PlannedTask",
    "ProbeSpec",
    "SHARD_FORMAT_VERSION",
    "ShardRunReport",
    "ToleranceSpec",
    "ledger_file_name",
    "outcome_digest",
    "shard_file_name",
    "shard_of",
]
