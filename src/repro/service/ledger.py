"""The campaign ledger: per-shard bookkeeping that makes campaigns resumable.

On real fleets shards die — OOM-killed workers, pre-empted machines,
truncated writes.  The shard result files alone cannot distinguish "this
task was never attempted" from "this result survived intact", so every
``fannet batch run`` invocation additionally maintains one **ledger**
file per (batch, shard) under the output directory::

    <batch>.shard-<i>-of-<N>.ledger.json
    {
      "format": 1,
      "batch": "seed-sweep",
      "shard": [1, 2],
      "contexts": {"seed7": "<network:verifier[:data] fingerprint>"},
      "tasks": {
        "seed7/tolerance/i10": {"job": "seed7", "digest": "<sha-256>"}
      }
    }

Each task entry records the SHA-256 of the *canonical JSON rendering* of
its outcome — the exact bytes-level form the shard result file stores —
plus the job's runtime-context fingerprint.  That gives the resume and
status planes three independent checks per identity:

- **missing** — planned, but no readable result in the directory;
- **corrupt** — a result exists but its digest does not match the
  ledger (bit-rot, a torn write, or a hand-edited file);
- **stale** — the recorded context fingerprint differs from the current
  plan's (the network file, verifier budget or dataset source changed
  under the same manifest).

``fannet batch run --resume`` re-executes exactly the union of those
three sets and trusts the rest, which is what makes an interrupted →
resumed campaign merge *bit-identical* to an uninterrupted one.  The
ledger is advisory, never authority: a missing or unreadable ledger
simply means nothing can be trusted, and resume re-executes everything
(correct, just slower).  Writes are atomic and happen after every job,
so a shard killed mid-campaign keeps the ledger for every job it
finished.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import DataError
from ..ioutils import atomic_write_bytes

#: Version stamp of the ledger files.
LEDGER_FORMAT_VERSION = 1


def ledger_file_name(batch: str, shard_index: int, shard_count: int) -> str:
    """Ledger file for one shard invocation (1-based display, like shards)."""
    return f"{batch}.shard-{shard_index + 1}-of-{shard_count}.ledger.json"


def outcome_digest(outcome) -> str:
    """SHA-256 over the canonical JSON rendering of one task outcome.

    Computed on the JSON-shaped value (tuples already turned to lists),
    so digesting a freshly-computed outcome and digesting the same
    outcome re-parsed from a shard file agree byte for byte.
    """
    canon = json.dumps(outcome, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class CampaignLedger:
    """Completion bookkeeping of one (batch, shard) invocation."""

    batch: str
    shard: tuple[int, int]  # 1-based (index, count), matching shard files
    contexts: dict[str, str] = field(default_factory=dict)  # job -> context
    tasks: dict[str, dict] = field(default_factory=dict)  # identity -> entry

    def record(self, job: str, context: str, identity: str, outcome) -> None:
        """Note one completed task (outcome in its JSON-shaped form)."""
        self.contexts[job] = context
        self.tasks[identity] = {"job": job, "digest": outcome_digest(outcome)}

    def verdict(self, identity: str, job: str, context: str, outcome) -> str:
        """Classify a recorded result: ``ok`` | ``corrupt`` | ``stale`` | ``unknown``.

        ``outcome`` is the JSON-shaped result found in the shard file;
        ``context`` is the *current plan's* fingerprint for ``job``.
        ``unknown`` means the ledger has no entry for the identity (it
        cannot vouch either way — resume re-executes).
        """
        entry = self.tasks.get(identity)
        if not isinstance(entry, dict) or "digest" not in entry:
            return "unknown"
        if self.contexts.get(job) != context:
            return "stale"
        if entry["digest"] != outcome_digest(outcome):
            return "corrupt"
        return "ok"

    # -- (de)serialisation -------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "format": LEDGER_FORMAT_VERSION,
            "batch": self.batch,
            "shard": list(self.shard),
            "contexts": dict(sorted(self.contexts.items())),
            "tasks": {k: self.tasks[k] for k in sorted(self.tasks)},
        }

    def save(self, out_dir: str | os.PathLike) -> Path:
        """Atomically (re)write this shard's ledger file."""
        out_dir = Path(out_dir)
        path = out_dir / ledger_file_name(self.batch, self.shard[0] - 1, self.shard[1])
        blob = json.dumps(self.to_payload(), indent=2, sort_keys=True)
        return atomic_write_bytes(path, blob.encode("utf-8"))

    @classmethod
    def from_payload(cls, payload) -> "CampaignLedger":
        """Strictly validate a parsed ledger payload (raises DataError)."""
        if not isinstance(payload, dict):
            raise DataError("ledger payload is not a mapping")
        if payload.get("format") != LEDGER_FORMAT_VERSION:
            raise DataError(
                f"ledger format {payload.get('format')!r} is unsupported "
                f"(this build reads {LEDGER_FORMAT_VERSION})"
            )
        batch = payload.get("batch")
        shard = payload.get("shard")
        contexts = payload.get("contexts")
        tasks = payload.get("tasks")
        if not isinstance(batch, str) or not batch:
            raise DataError("ledger has no batch name")
        if (
            not isinstance(shard, list)
            or len(shard) != 2
            # bool is an int subclass: "shard": [true, true] must not
            # parse as shard (1, 1) and silently vouch for shard 1/1.
            or not all(isinstance(v, int) and not isinstance(v, bool) for v in shard)
        ):
            raise DataError("ledger shard must be [index, count]")
        if not isinstance(contexts, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in contexts.items()
        ):
            raise DataError("ledger contexts must map job names to fingerprints")
        if not isinstance(tasks, dict):
            raise DataError("ledger tasks must be a mapping")
        for identity, entry in tasks.items():
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("job"), str)
                or not isinstance(entry.get("digest"), str)
            ):
                raise DataError(
                    f"ledger entry for task {identity!r} is malformed"
                )
        return cls(
            batch=batch,
            shard=(shard[0], shard[1]),
            contexts=dict(contexts),
            tasks=dict(tasks),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CampaignLedger | None":
        """Read a ledger file; ``None`` when absent or unusable.

        The ledger is an optimisation: any unreadable, unparsable or
        malformed file degrades to "no ledger" (resume trusts nothing),
        never to an exception on the resume path.
        """
        path = Path(path)
        try:
            # Explicit encoding: ledgers are written as UTF-8 (json.dumps
            # output), and a locale-dependent read on another machine
            # must not silently degrade a resume into full re-execution.
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        try:
            return cls.from_payload(payload)
        except DataError:
            return None
