"""The batch service: plan → run shards → merge to one aggregate report.

:class:`BatchService` executes a :class:`~repro.service.spec.BatchSpec`
in three decoupled steps, each a plain CLI invocation — which is what
makes multi-machine scale-out trivial (a shard is just a process):

- :meth:`plan` expands the spec into the global task list (see
  :mod:`repro.service.planner`) — deterministic, so every shard
  re-plans identically;
- :meth:`run_shard` executes the slice of the task list a ``--shard
  i/N`` invocation owns, one per-context
  :class:`~repro.runtime.QueryRunner` per job (each runner's cache is
  keyed — and, with ``cache_dir`` set, persisted — under its own
  (network, verifier-config) fingerprint), and writes one JSON result
  file per job per shard;
- :meth:`merge` folds any complete set of shard files back into one
  aggregate :class:`~repro.analysis.records.ExperimentRecord` with
  per-job summaries and cross-network comparison series.

Results are keyed by task identity and merged in sorted order, so the
merged report is **bit-identical for every shard layout**: one shard,
N shards, shuffled manifest job order — same bytes.  (Task outcomes
themselves are shard-invariant by the runtime's determinism contract:
every stochastic engine seeds from ``(verifier seed, input index)``,
and the cache can never move a result.)
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import median

from ..analysis.records import ExperimentRecord
from ..errors import ConfigError, DataError
from ..runtime import QueryRunner
from .planner import BatchPlanner, PlannedJob
from .spec import BatchSpec

#: Version stamp of the per-job shard result files.
SHARD_FORMAT_VERSION = 1


def shard_file_name(job: str, shard_index: int, shard_count: int) -> str:
    """File name for one job's results from one shard (1-based display)."""
    return f"{job}.shard-{shard_index + 1}-of-{shard_count}.json"


def _jsonable(value):
    """Task outcomes as JSON-stable plain data (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


class BatchService:
    """Plan, execute and merge one batch campaign."""

    def __init__(self, spec: BatchSpec):
        self.spec = spec
        self._planner = BatchPlanner(spec)
        self._plan: list[PlannedJob] | None = None

    @classmethod
    def from_manifest(cls, path) -> "BatchService":
        return cls(BatchSpec.from_manifest(path))

    def plan(self) -> list[PlannedJob]:
        """The expanded job list (cached — planning trains networks)."""
        if self._plan is None:
            self._plan = self._planner.plan()
        return self._plan

    # -- execution --------------------------------------------------------------

    def run_shard(
        self, shard_index: int, shard_count: int, out_dir: str | Path
    ) -> list[Path]:
        """Execute shard ``shard_index`` (0-based) of ``shard_count``.

        Writes one ``<job>.shard-<i>-of-<N>.json`` per job that owns at
        least one task in this shard and returns the written paths.
        """
        if not 0 <= shard_index < shard_count:
            raise ConfigError(
                f"shard index {shard_index} out of range for {shard_count} shard(s)"
            )
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for job in self.plan():
            mine = job.shard_tasks(shard_index, shard_count)
            if not mine:
                continue
            runner = QueryRunner(job.network, job.spec.verifier, self.spec.runtime)
            try:
                outcomes = runner.run_tasks([planned.task for planned in mine])
            finally:
                runner.close()
            payload = {
                "format": SHARD_FORMAT_VERSION,
                "batch": self.spec.name,
                "shard": [shard_index + 1, shard_count],
                "job": job.meta,
                "results": {
                    planned.identity: _jsonable(outcome)
                    for planned, outcome in zip(mine, outcomes)
                },
            }
            path = out_dir / shard_file_name(job.name, shard_index, shard_count)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True))
            written.append(path)
        return written

    # -- merge -------------------------------------------------------------------

    def merge(self, out_dir: str | Path) -> ExperimentRecord:
        """Fold every shard file under ``out_dir`` into one aggregate record.

        Raises :class:`~repro.errors.DataError` when the shard set is
        incomplete, inconsistent (two shards disagreeing on one task or
        one job header), or syntactically broken — a partial campaign
        must never silently merge into a plausible-looking report.
        """
        out_dir = Path(out_dir)
        results, metas = self._collect_shards(out_dir)
        jobs_payload = []
        for job in self.plan():  # sorted by name, the merge order contract
            expected = {planned.identity for planned in job.tasks}
            have = results.get(job.name, {})
            missing = sorted(expected - set(have))
            if missing:
                raise DataError(
                    f"job {job.name!r} is missing {len(missing)} of "
                    f"{len(expected)} task result(s) under {out_dir} "
                    f"(first missing: {missing[0]!r}); run the remaining shards "
                    "before merging"
                )
            stray = sorted(set(have) - expected)
            if stray:
                raise DataError(
                    f"job {job.name!r} has result(s) for unplanned task(s) "
                    f"(first: {stray[0]!r}); the shard files under {out_dir} "
                    "were produced from a different manifest"
                )
            # A job whose slice yields zero tasks never wrote a shard
            # file; its header comes from this process's own plan.
            jobs_payload.append(
                _summarise_job(job, have, metas.get(job.name, job.meta))
            )
        # Canonical manifest echo: job order in the manifest is a
        # presentation detail and must not move a byte of the report.
        manifest = self.spec.to_dict()
        manifest["jobs"] = sorted(manifest["jobs"], key=lambda job: job["name"])
        record = ExperimentRecord(
            experiment_id=f"batch-{self.spec.name}",
            description=(
                f"merged batch campaign over {len(jobs_payload)} job(s); "
                "identical for every shard layout"
            ),
            parameters={"manifest": manifest},
            measured={
                "jobs": jobs_payload,
                "comparison": _comparison_series(jobs_payload),
            },
            expected_shape=(
                "per-job tolerance/extraction/probe summaries plus "
                "cross-network min-tolerance and bias-delta series"
            ),
        )
        return record

    def _collect_shards(self, out_dir: Path):
        """Read every shard file of this batch: identity→outcome per job."""
        paths = sorted(out_dir.glob("*.shard-*-of-*.json"))
        results: dict[str, dict] = {}
        metas: dict[str, dict] = {}
        seen_any = False
        for path in paths:
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as err:
                raise DataError(f"shard file {path} is unreadable: {err}") from None
            if not isinstance(payload, dict) or payload.get("batch") != self.spec.name:
                continue  # another campaign sharing the directory
            if payload.get("format") != SHARD_FORMAT_VERSION:
                raise DataError(
                    f"shard file {path} has format {payload.get('format')!r}, "
                    f"expected {SHARD_FORMAT_VERSION}"
                )
            meta = payload.get("job")
            if not isinstance(meta, dict) or "job" not in meta:
                raise DataError(f"shard file {path} has no job header")
            name = meta["job"]
            seen_any = True
            if name in metas and metas[name] != meta:
                raise DataError(
                    f"shard files disagree on job {name!r}'s header (e.g. {path}); "
                    "shards were produced from different manifests or code versions"
                )
            metas.setdefault(name, meta)
            bucket = results.setdefault(name, {})
            for identity, outcome in payload.get("results", {}).items():
                if identity in bucket and bucket[identity] != outcome:
                    raise DataError(
                        f"shard files disagree on task {identity!r} (e.g. {path}); "
                        "determinism violation or mixed manifests"
                    )
                bucket[identity] = outcome
        if not seen_any:
            raise DataError(
                f"no shard files for batch {self.spec.name!r} under {out_dir}; "
                "run `fannet batch run` first"
            )
        return results, metas


# -- per-job summarisation ------------------------------------------------------


def _summarise_job(job: PlannedJob, results: dict, meta: dict) -> dict:
    spec = job.spec
    summary: dict = {
        "name": job.name,
        "context": meta["context"],
        "correctly_classified": meta["correctly_classified"],
        "sliced_inputs": meta["sliced_inputs"],
    }
    if spec.tolerance is not None:
        summary["tolerance"] = _fold_tolerance(job, results)
    if spec.extraction is not None:
        summary["extraction"] = _fold_extraction(job, results, meta)
    if spec.probe is not None:
        summary["probe"] = _fold_probe(job, results)
    return summary


def _tasks_of(job: PlannedJob, kind: str):
    prefix = f"{job.name}/{kind}/"
    return [p for p in job.tasks if p.identity.startswith(prefix)]


def _fold_tolerance(job: PlannedJob, results: dict) -> dict:
    per_input = []
    for planned in sorted(_tasks_of(job, "tolerance"), key=lambda p: p.task.index):
        outcome = results[planned.identity]
        per_input.append(
            {
                "index": planned.task.index,
                "true_label": planned.task.true_label,
                "min_flip_percent": outcome["min_flip_percent"],
                "witness": outcome["witness"],
                "flipped_to": outcome["flipped_to"],
                "queries": outcome["queries"],
            }
        )
    flips = sorted(
        entry["min_flip_percent"]
        for entry in per_input
        if entry["min_flip_percent"] is not None
    )
    ceiling = job.spec.tolerance.ceiling
    return {
        "ceiling": ceiling,
        "schedule": job.spec.tolerance.schedule,
        # Largest ΔX with no counterexample for any input (paper: ±11).
        "tolerance": (min(flips) - 1) if flips else ceiling,
        "min_flip_percents": flips,  # the distribution, smallest first
        "min_flip_median": median(flips) if flips else None,
        "robust_at_ceiling": len(per_input) - len(flips),
        "per_input": per_input,
    }


def _fold_extraction(job: PlannedJob, results: dict, meta: dict) -> dict:
    from ..core.bias import BiasReport

    per_input = []
    flip_matrix: dict[tuple[int, int], int] = {}
    total = 0
    for planned in sorted(_tasks_of(job, "extract"), key=lambda p: p.task.index):
        outcome = results[planned.identity]
        true_label = planned.task.true_label
        count = len(outcome["vectors"])
        total += count
        per_input.append(
            {
                "index": planned.task.index,
                "true_label": true_label,
                "vectors": count,
                "exhausted": outcome["exhausted"],
            }
        )
        for wrong in outcome["flipped_to"]:
            key = (true_label, int(wrong))
            flip_matrix[key] = flip_matrix.get(key, 0) + 1

    # The paper's Eq.-4 criterion lives in core/bias.py, once.
    bias = BiasReport.from_census(
        {int(k): v for k, v in meta["train_class_counts"].items()},
        flip_matrix,
        noise_percent=job.spec.extraction.percent,
    )
    return {
        "percent": job.spec.extraction.percent,
        "total_vectors": total,
        "vulnerable_inputs": sum(1 for entry in per_input if entry["vectors"]),
        "per_input": per_input,
        "flip_matrix": {
            f"{true}->{wrong}": count
            for (true, wrong), count in sorted(flip_matrix.items())
        },
        "bias": {
            "training_majority_label": bias.training_majority_label,
            "training_majority_share": bias.training_majority_share,
            "majority_flip_share": bias.majority_flip_share,
            # How much more often flips land on the majority class than
            # its training share alone would predict (paper: ≈ +0.3).
            "delta": (
                bias.majority_flip_share - bias.training_majority_share
                if total
                else None
            ),
            "confirmed": bias.bias_confirmed,
        },
    }


def _fold_probe(job: PlannedJob, results: dict) -> dict:
    thresholds: dict[int, dict] = {}
    for planned in _tasks_of(job, "probe"):
        task = planned.task
        entry = thresholds.setdefault(task.node, {"node": task.node})
        entry["positive" if task.sign > 0 else "negative"] = results[planned.identity]
    return {
        "ceiling": job.spec.probe.ceiling,
        "thresholds": [thresholds[node] for node in sorted(thresholds)],
    }


# -- cross-network comparison ---------------------------------------------------


def _comparison_series(jobs_payload: list[dict]) -> dict:
    """The cross-job series the merge report tabulates.

    Plain data here; :mod:`repro.analysis.compare` renders the tables.
    """
    min_tolerance = []
    bias_delta = []
    for job in jobs_payload:
        tolerance = job.get("tolerance")
        if tolerance is not None:
            flips = tolerance["min_flip_percents"]
            min_tolerance.append(
                {
                    "job": job["name"],
                    "tolerance": tolerance["tolerance"],
                    "min_flip_min": flips[0] if flips else None,
                    "min_flip_median": tolerance["min_flip_median"],
                    "min_flip_max": flips[-1] if flips else None,
                    "robust_at_ceiling": tolerance["robust_at_ceiling"],
                    "inputs": len(tolerance["per_input"]),
                }
            )
        extraction = job.get("extraction")
        if extraction is not None:
            bias = extraction["bias"]
            bias_delta.append(
                {
                    "job": job["name"],
                    "percent": extraction["percent"],
                    "vectors": extraction["total_vectors"],
                    "training_majority_share": bias["training_majority_share"],
                    "majority_flip_share": bias["majority_flip_share"],
                    "delta": bias["delta"],
                    "confirmed": bias["confirmed"],
                }
            )
    return {"min_tolerance": min_tolerance, "bias_delta": bias_delta}
