"""The batch service: plan → run shards → status/resume → merge.

:class:`BatchService` executes a :class:`~repro.service.spec.BatchSpec`
in decoupled steps, each a plain CLI invocation — which is what makes
multi-machine scale-out trivial (a shard is just a process):

- :meth:`plan` expands the spec into the global task list (see
  :mod:`repro.service.planner`) — deterministic, so every shard
  re-plans identically;
- :meth:`run_shard` executes the slice of the task list a ``--shard
  i/N`` invocation owns, one per-context
  :class:`~repro.runtime.QueryRunner` per job (each runner's cache is
  keyed — and, with ``cache_dir`` set, persisted — under its own
  (network, verifier-config[, dataset-digest]) fingerprint), writes one
  JSON result file per job per shard, and maintains the shard's
  :class:`~repro.service.ledger.CampaignLedger`.  With ``resume=True``
  it first classifies every recorded result against the ledger
  (digest + context fingerprint) and re-executes only the missing,
  corrupt and stale ones;
- :meth:`status` reports, per job, exactly which task identities are
  done, missing, corrupt or stale in an output directory — the triage
  step after a shard dies;
- :meth:`merge` folds a complete set of shard files back into one
  aggregate :class:`~repro.analysis.records.ExperimentRecord` with
  per-job summaries and cross-network comparison series.  An incomplete
  set raises :class:`~repro.errors.IncompleteCampaignError` naming the
  missing identities — a partial campaign must never silently merge
  into a plausible-looking report.

Results are keyed by task identity and merged in sorted order, so the
merged report is **bit-identical for every shard layout and every
interruption history**: one shard, N shards, shuffled manifest job
order, killed-and-resumed — same bytes.  (Task outcomes themselves are
shard-invariant by the runtime's determinism contract: every stochastic
engine seeds from ``(verifier seed, input index)``, and the cache can
never move a result.)
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median

import numpy as np

from ..analysis.records import ExperimentRecord
from ..errors import ConfigError, DataError, IncompleteCampaignError
from ..ioutils import atomic_write_bytes
from ..runtime import QueryRunner
from .ledger import CampaignLedger, ledger_file_name, outcome_digest
from .planner import BatchPlanner, PlannedJob
from .spec import BatchSpec

#: Version stamp of the per-job shard result files.  Version 2: job
#: headers carry the dataset source digest/description and are checked
#: against the current plan at merge time.
SHARD_FORMAT_VERSION = 2


def shard_file_name(job: str, shard_index: int, shard_count: int) -> str:
    """File name for one job's results from one shard (1-based display)."""
    return f"{job}.shard-{shard_index + 1}-of-{shard_count}.json"


def _jsonable(value):
    """Task outcomes as JSON-stable plain data (tuples become lists).

    Numpy scalars and arrays are converted to their Python equivalents:
    a stray ``np.int64`` in an outcome would either crash ``json.dumps``
    or (with a permissive encoder) digest differently from its re-parsed
    form, flipping the ledger's ``outcome_digest`` ok/corrupt verdicts.
    """
    if isinstance(value, np.generic):
        return _jsonable(value.item())
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {_jsonable_key(k): _jsonable(v) for k, v in value.items()}
    return value


def _jsonable_key(key):
    """Dict keys: numpy scalars become Python scalars (JSON wants str/int)."""
    return key.item() if isinstance(key, np.generic) else key


def _read_shard_payload(path: Path, batch: str):
    """Parse and gate one shard result file — the single acceptance rule.

    Returns ``(payload, problem)``: the validated payload dict when the
    file is a readable, current-format shard file of ``batch`` (its
    ``job`` header and ``results`` table are then guaranteed present),
    else ``None`` plus a human-readable reason — or ``(None, None)``
    for a file that merely belongs to another campaign.  The strict
    merge scanner, the tolerant status scanner and the resume reader
    all go through here, so they can never disagree on what counts as
    a shard file.
    """
    try:
        # Shard files are UTF-8 by construction; never let the locale
        # decide how a result written on another machine is decoded.
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as err:
        return None, f"shard file {path} is unreadable: {err}"
    if not isinstance(payload, dict) or payload.get("batch") != batch:
        return None, None  # another campaign sharing the directory
    if payload.get("format") != SHARD_FORMAT_VERSION:
        return None, (
            f"shard file {path} has format {payload.get('format')!r}, "
            f"expected {SHARD_FORMAT_VERSION}"
        )
    meta = payload.get("job")
    if not isinstance(meta, dict) or "job" not in meta:
        return None, f"shard file {path} has no job header"
    if not isinstance(payload.get("results"), dict):
        return None, f"shard file {path} has no results table"
    return payload, None


@dataclass
class ShardRunReport:
    """What one ``run_shard`` invocation did."""

    shard: tuple[int, int]  # 1-based (index, count)
    written: list[Path] = field(default_factory=list)
    executed: int = 0  # tasks actually run this invocation
    reused: int = 0  # tasks skipped via validated ledger entries
    ledger_path: Path | None = None

    def __iter__(self):  # old callers iterated the written paths
        return iter(self.written)


@dataclass
class JobStatus:
    """Per-job completion triage of one output directory."""

    job: str
    expected: int
    done: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    corrupt: list[str] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not (self.missing or self.corrupt or self.stale)

    def to_payload(self) -> dict:
        return {
            "job": self.job,
            "expected": self.expected,
            "done": len(self.done),
            "missing": self.missing,
            "corrupt": self.corrupt,
            "stale": self.stale,
        }


@dataclass
class CampaignStatus:
    """The whole directory's triage: ``fannet batch status``'s payload."""

    batch: str
    jobs: list[JobStatus] = field(default_factory=list)
    stray: list[str] = field(default_factory=list)  # present but unplanned
    problems: list[str] = field(default_factory=list)  # unreadable/conflicting files

    @property
    def complete(self) -> bool:
        """Whether :meth:`BatchService.merge` would accept this directory.

        Any recorded problem — an unreadable file, shards disagreeing on
        a header or a task — blocks completeness too: the strict merge
        scanner raises on exactly those findings, and status must never
        green-light a directory merge would reject.
        """
        return (
            all(job.complete for job in self.jobs)
            and not self.stray
            and not self.problems
        )

    @property
    def rerun(self) -> list[str]:
        """Every identity a resume pass would re-execute, sorted."""
        out = []
        for job in self.jobs:
            out.extend(job.missing)
            out.extend(job.corrupt)
            out.extend(job.stale)
        return sorted(out)

    def to_payload(self) -> dict:
        return {
            "batch": self.batch,
            "complete": self.complete,
            "jobs": [job.to_payload() for job in self.jobs],
            "stray": self.stray,
            "problems": self.problems,
        }


@dataclass
class _ShardScan:
    """Everything readable about one batch under an output directory."""

    results: dict = field(default_factory=dict)  # job -> identity -> outcome
    metas: dict = field(default_factory=dict)  # job -> shard-file header
    problems: list[str] = field(default_factory=list)  # tolerant mode only
    seen_any: bool = False


class BatchService:
    """Plan, execute, triage and merge one batch campaign."""

    def __init__(self, spec: BatchSpec):
        self.spec = spec
        self._planner = BatchPlanner(spec)
        self._plan: list[PlannedJob] | None = None

    @classmethod
    def from_manifest(cls, path) -> "BatchService":
        return cls(BatchSpec.from_manifest(path))

    def plan(self) -> list[PlannedJob]:
        """The expanded job list (cached — planning trains networks)."""
        if self._plan is None:
            self._plan = self._planner.plan()
        return self._plan

    # -- execution --------------------------------------------------------------

    def run_shard(
        self,
        shard_index: int,
        shard_count: int,
        out_dir: str | Path,
        resume: bool = False,
    ) -> ShardRunReport:
        """Execute shard ``shard_index`` (0-based) of ``shard_count``.

        Writes one ``<job>.shard-<i>-of-<N>.json`` per job that owns at
        least one task in this shard, plus the shard's ledger file (both
        updated after every job, so an interruption keeps everything
        finished so far).  With ``resume=True``, task results already in
        the directory whose ledger digest and context fingerprint
        validate are reused; only the gap — missing, corrupt or stale
        identities — is re-executed.  The rewritten files are canonical,
        so a resumed shard is byte-identical to an uninterrupted one.
        """
        if not 0 <= shard_index < shard_count:
            raise ConfigError(
                f"shard index {shard_index} out of range for {shard_count} shard(s)"
            )
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        report = ShardRunReport(shard=(shard_index + 1, shard_count))
        reusable = self._reusable_results(out_dir, shard_index, shard_count) if resume else {}
        # Carry the prior ledger forward: a run killed after its first
        # job must not have clobbered the vouchers for every later job's
        # still-valid on-disk results.  Entries this run recomputes are
        # overwritten job by job; leftovers for vanished results are
        # inert (status and resume trust files first, ledger second).
        ledger = CampaignLedger.load(
            out_dir / ledger_file_name(self.spec.name, shard_index, shard_count)
        )
        if ledger is None or ledger.batch != self.spec.name or tuple(
            ledger.shard
        ) != (shard_index + 1, shard_count):
            ledger = CampaignLedger(
                batch=self.spec.name, shard=(shard_index + 1, shard_count)
            )
        for job in self.plan():
            mine = job.shard_tasks(shard_index, shard_count)
            if not mine:
                continue
            context = job.meta["context"]
            outcomes: dict[str, object] = {}
            todo = []
            bucket = reusable.get(job.name, {})
            for planned in mine:
                # Membership, not get(): a probe outcome may *be* None.
                if planned.identity in bucket:
                    outcomes[planned.identity] = bucket[planned.identity]
                else:
                    todo.append(planned)
            report.reused += len(mine) - len(todo)
            if todo:
                runner = QueryRunner(
                    job.network,
                    job.spec.verifier,
                    self.spec.runtime,
                    data_digest=job.data_digest,
                )
                try:
                    fresh = runner.run_tasks([planned.task for planned in todo])
                finally:
                    runner.close()
                for planned, outcome in zip(todo, fresh):
                    outcomes[planned.identity] = _jsonable(outcome)
                report.executed += len(todo)
            payload = {
                "format": SHARD_FORMAT_VERSION,
                "batch": self.spec.name,
                "shard": [shard_index + 1, shard_count],
                "job": job.meta,
                "results": outcomes,
            }
            path = out_dir / shard_file_name(job.name, shard_index, shard_count)
            # Atomic: a kill during a resume's rewrite must not tear a
            # previously intact result file.
            atomic_write_bytes(
                path, json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
            )
            report.written.append(path)
            for identity, outcome in outcomes.items():
                ledger.record(job.name, context, identity, outcome)
            # Checkpoint after every job: a kill between jobs loses at
            # most the job in flight, and the ledger vouches for the rest.
            report.ledger_path = ledger.save(out_dir)
        if report.ledger_path is None:  # shard owned no task at all
            report.ledger_path = ledger.save(out_dir)
        return report

    def _reusable_results(
        self, out_dir: Path, shard_index: int, shard_count: int
    ) -> dict[str, dict]:
        """Validated identity → outcome maps this shard may skip re-running.

        Reads this shard's own result files and ledger; an outcome is
        reusable only when the ledger's recorded digest matches the
        stored bytes *and* the recorded context fingerprint matches the
        current plan's — everything else re-executes.  No ledger, no
        reuse (correct, just slower).
        """
        ledger = CampaignLedger.load(
            out_dir / ledger_file_name(self.spec.name, shard_index, shard_count)
        )
        if ledger is None or ledger.batch != self.spec.name:
            return {}
        reusable: dict[str, dict] = {}
        for job in self.plan():
            path = out_dir / shard_file_name(job.name, shard_index, shard_count)
            payload, _ = _read_shard_payload(path, self.spec.name)
            if payload is None:
                continue  # dead, torn or foreign file: nothing to reuse
            context = job.meta["context"]
            bucket = reusable.setdefault(job.name, {})
            for identity, outcome in payload["results"].items():
                if ledger.verdict(identity, job.name, context, outcome) == "ok":
                    bucket[identity] = outcome
        return reusable

    # -- status ------------------------------------------------------------------

    def status(self, out_dir: str | Path) -> CampaignStatus:
        """Triage ``out_dir``: which planned identities are done/missing/bad.

        Tolerant by design — a truncated shard file or a corrupt ledger
        is a *finding*, not an exception; everything readable is
        classified against the current plan and the recorded ledgers.
        """
        out_dir = Path(out_dir)
        scan = self._scan_shards(out_dir, strict=False)
        ledgers = self._load_ledgers(out_dir)
        status = CampaignStatus(batch=self.spec.name, problems=list(scan.problems))
        expected_all: set[str] = set()
        for job in self.plan():
            expected = [planned.identity for planned in job.tasks]
            expected_all.update(expected)
            job_status = JobStatus(job=job.name, expected=len(expected))
            context = job.meta["context"]
            have = scan.results.get(job.name, {})
            meta = scan.metas.get(job.name)
            # Full header equality, exactly the merge-time gate: any
            # divergence from the current plan (context fingerprint,
            # spec echo, census) makes the recorded results stale —
            # status must never green-light what merge would reject.
            header_stale = meta is not None and meta != job.meta
            for identity in sorted(expected):
                if identity not in have:  # a probe outcome may be None
                    job_status.missing.append(identity)
                    continue
                outcome = have[identity]
                if header_stale:
                    job_status.stale.append(identity)
                    continue
                verdict = self._ledger_verdict(
                    ledgers, identity, job.name, context, outcome
                )
                if verdict == "corrupt":
                    job_status.corrupt.append(identity)
                elif verdict == "stale":
                    job_status.stale.append(identity)
                else:  # "ok", or no ledger vouches ("unknown") — the
                    # result exists and nothing contradicts it
                    job_status.done.append(identity)
            status.jobs.append(job_status)
        found = {
            identity
            for bucket in scan.results.values()
            for identity in bucket
        }
        status.stray = sorted(found - expected_all)
        return status

    @staticmethod
    def _ledger_verdict(ledgers, identity, job, context, outcome) -> str:
        """Fold every ledger's opinion: any 'ok' wins, else worst finding."""
        verdicts = {
            ledger.verdict(identity, job, context, outcome) for ledger in ledgers
        }
        for ranked in ("ok", "corrupt", "stale"):
            if ranked in verdicts:
                return ranked
        return "unknown"

    def _load_ledgers(self, out_dir: Path) -> list[CampaignLedger]:
        ledgers = []
        for path in sorted(out_dir.glob(f"{self.spec.name}.shard-*.ledger.json")):
            ledger = CampaignLedger.load(path)
            if ledger is not None and ledger.batch == self.spec.name:
                ledgers.append(ledger)
        return ledgers

    # -- merge -------------------------------------------------------------------

    def merge(self, out_dir: str | Path) -> ExperimentRecord:
        """Fold every shard file under ``out_dir`` into one aggregate record.

        Raises :class:`IncompleteCampaignError` (listing every missing
        task identity) when the shard set has gaps, and
        :class:`~repro.errors.DataError` when it is inconsistent (two
        shards disagreeing on one task, a job header that does not match
        the current plan — stale networks/datasets under an unchanged
        manifest — or syntactically broken files).
        """
        out_dir = Path(out_dir)
        scan = self._scan_shards(out_dir, strict=True)
        if not scan.seen_any:
            raise DataError(
                f"no shard files for batch {self.spec.name!r} under {out_dir}; "
                "run `fannet batch run` first"
            )
        missing_by_job: dict[str, list[str]] = {}
        jobs_payload = []
        for job in self.plan():  # sorted by name, the merge order contract
            expected = {planned.identity for planned in job.tasks}
            have = scan.results.get(job.name, {})
            meta = scan.metas.get(job.name)
            if meta is not None and meta != job.meta:
                raise DataError(
                    f"job {job.name!r}: shard-file header does not match the "
                    f"current plan (stale network/dataset/config under "
                    f"{out_dir}?); re-run the affected shards"
                )
            missing = sorted(expected - set(have))
            if missing:
                missing_by_job[job.name] = missing
                continue
            stray = sorted(set(have) - expected)
            if stray:
                raise DataError(
                    f"job {job.name!r} has result(s) for unplanned task(s) "
                    f"(first: {stray[0]!r}); the shard files under {out_dir} "
                    "were produced from a different manifest"
                )
            # A job whose slice yields zero tasks never wrote a shard
            # file; its header comes from this process's own plan.
            jobs_payload.append(_summarise_job(job, have, meta or job.meta))
        if missing_by_job:
            total = sum(len(v) for v in missing_by_job.values())
            preview = [
                identity
                for identities in missing_by_job.values()
                for identity in identities
            ][:8]
            raise IncompleteCampaignError(
                f"cannot merge an incomplete campaign: {total} task result(s) "
                f"missing under {out_dir} across job(s) "
                f"{', '.join(sorted(missing_by_job))} "
                f"(missing identities: {', '.join(preview)}"
                + (", ..." if total > len(preview) else "")
                + "); run `fannet batch status` for the full list and "
                "`fannet batch run --resume` to fill the gap",
                missing=missing_by_job,
            )
        # Canonical manifest echo: job order in the manifest is a
        # presentation detail and must not move a byte of the report.
        manifest = self.spec.to_dict()
        manifest["jobs"] = sorted(manifest["jobs"], key=lambda job: job["name"])
        record = ExperimentRecord(
            experiment_id=f"batch-{self.spec.name}",
            description=(
                f"merged batch campaign over {len(jobs_payload)} job(s); "
                "identical for every shard layout"
            ),
            parameters={"manifest": manifest},
            measured={
                "jobs": jobs_payload,
                "comparison": _comparison_series(jobs_payload),
            },
            expected_shape=(
                "per-job tolerance/extraction/probe summaries plus "
                "cross-network min-tolerance and bias-delta series"
            ),
        )
        return record

    def _scan_shards(self, out_dir: Path, strict: bool) -> _ShardScan:
        """Read every shard file of this batch under ``out_dir``.

        ``strict`` (the merge path) raises :class:`DataError` on the
        first unreadable or self-contradictory file; tolerant mode (the
        status path) records the same findings in ``scan.problems`` and
        keeps going.
        """
        scan = _ShardScan()

        def problem(message: str):
            if strict:
                raise DataError(message)
            scan.problems.append(message)

        for path in sorted(out_dir.glob("*.shard-*-of-*.json")):
            if path.name.endswith(".ledger.json"):
                continue  # completion bookkeeping, not results
            payload, issue = _read_shard_payload(path, self.spec.name)
            if payload is None:
                if issue is not None:
                    problem(issue)
                continue
            meta = payload["job"]
            name = meta["job"]
            scan.seen_any = True
            if name in scan.metas and scan.metas[name] != meta:
                problem(
                    f"shard files disagree on job {name!r}'s header (e.g. {path}); "
                    "shards were produced from different manifests or code versions"
                )
                continue
            scan.metas.setdefault(name, meta)
            bucket = scan.results.setdefault(name, {})
            for identity, outcome in payload["results"].items():
                if identity in bucket and bucket[identity] != outcome:
                    problem(
                        f"shard files disagree on task {identity!r} (e.g. {path}); "
                        "determinism violation or mixed manifests"
                    )
                    continue
                bucket[identity] = outcome
        return scan


# -- per-job summarisation ------------------------------------------------------


def _summarise_job(job: PlannedJob, results: dict, meta: dict) -> dict:
    spec = job.spec
    summary: dict = {
        "name": job.name,
        "context": meta["context"],
        "correctly_classified": meta["correctly_classified"],
        "sliced_inputs": meta["sliced_inputs"],
    }
    if meta.get("dataset_source") is not None:
        summary["dataset_source"] = meta["dataset_source"]
    if spec.tolerance is not None:
        summary["tolerance"] = _fold_tolerance(job, results)
    if spec.extraction is not None:
        summary["extraction"] = _fold_extraction(job, results, meta)
    if spec.probe is not None:
        summary["probe"] = _fold_probe(job, results)
    return summary


def _tasks_of(job: PlannedJob, kind: str):
    prefix = f"{job.identity_prefix}/{kind}/"
    return [p for p in job.tasks if p.identity.startswith(prefix)]


def _fold_tolerance(job: PlannedJob, results: dict) -> dict:
    per_input = []
    for planned in sorted(_tasks_of(job, "tolerance"), key=lambda p: p.task.index):
        outcome = results[planned.identity]
        per_input.append(
            {
                "index": planned.task.index,
                "true_label": planned.task.true_label,
                "min_flip_percent": outcome["min_flip_percent"],
                "witness": outcome["witness"],
                "flipped_to": outcome["flipped_to"],
                "queries": outcome["queries"],
            }
        )
    flips = sorted(
        entry["min_flip_percent"]
        for entry in per_input
        if entry["min_flip_percent"] is not None
    )
    ceiling = job.spec.tolerance.ceiling
    return {
        "ceiling": ceiling,
        "schedule": job.spec.tolerance.schedule,
        # Largest ΔX with no counterexample for any input (paper: ±11).
        "tolerance": (min(flips) - 1) if flips else ceiling,
        "min_flip_percents": flips,  # the distribution, smallest first
        "min_flip_median": median(flips) if flips else None,
        "robust_at_ceiling": len(per_input) - len(flips),
        "per_input": per_input,
    }


def _fold_extraction(job: PlannedJob, results: dict, meta: dict) -> dict:
    from ..core.bias import BiasReport

    per_input = []
    flip_matrix: dict[tuple[int, int], int] = {}
    total = 0
    for planned in sorted(_tasks_of(job, "extract"), key=lambda p: p.task.index):
        outcome = results[planned.identity]
        true_label = planned.task.true_label
        count = len(outcome["vectors"])
        total += count
        per_input.append(
            {
                "index": planned.task.index,
                "true_label": true_label,
                "vectors": count,
                "exhausted": outcome["exhausted"],
            }
        )
        for wrong in outcome["flipped_to"]:
            key = (true_label, int(wrong))
            flip_matrix[key] = flip_matrix.get(key, 0) + 1

    # The paper's Eq.-4 criterion lives in core/bias.py, once.
    bias = BiasReport.from_census(
        {int(k): v for k, v in meta["train_class_counts"].items()},
        flip_matrix,
        noise_percent=job.spec.extraction.percent,
    )
    return {
        "percent": job.spec.extraction.percent,
        "total_vectors": total,
        "vulnerable_inputs": sum(1 for entry in per_input if entry["vectors"]),
        "per_input": per_input,
        "flip_matrix": {
            f"{true}->{wrong}": count
            for (true, wrong), count in sorted(flip_matrix.items())
        },
        "bias": {
            "training_majority_label": bias.training_majority_label,
            "training_majority_share": bias.training_majority_share,
            "majority_flip_share": bias.majority_flip_share,
            # How much more often flips land on the majority class than
            # its training share alone would predict (paper: ≈ +0.3).
            "delta": (
                bias.majority_flip_share - bias.training_majority_share
                if total
                else None
            ),
            "confirmed": bias.bias_confirmed,
        },
    }


def _fold_probe(job: PlannedJob, results: dict) -> dict:
    thresholds: dict[int, dict] = {}
    for planned in _tasks_of(job, "probe"):
        task = planned.task
        entry = thresholds.setdefault(task.node, {"node": task.node})
        entry["positive" if task.sign > 0 else "negative"] = results[planned.identity]
    return {
        "ceiling": job.spec.probe.ceiling,
        "thresholds": [thresholds[node] for node in sorted(thresholds)],
    }


# -- cross-network comparison ---------------------------------------------------


def _comparison_series(jobs_payload: list[dict]) -> dict:
    """The cross-job series the merge report tabulates.

    Plain data here; :mod:`repro.analysis.compare` renders the tables.
    """
    min_tolerance = []
    bias_delta = []
    for job in jobs_payload:
        tolerance = job.get("tolerance")
        if tolerance is not None:
            flips = tolerance["min_flip_percents"]
            min_tolerance.append(
                {
                    "job": job["name"],
                    "tolerance": tolerance["tolerance"],
                    "min_flip_min": flips[0] if flips else None,
                    "min_flip_median": tolerance["min_flip_median"],
                    "min_flip_max": flips[-1] if flips else None,
                    "robust_at_ceiling": tolerance["robust_at_ceiling"],
                    "inputs": len(tolerance["per_input"]),
                }
            )
        extraction = job.get("extraction")
        if extraction is not None:
            bias = extraction["bias"]
            bias_delta.append(
                {
                    "job": job["name"],
                    "percent": extraction["percent"],
                    "vectors": extraction["total_vectors"],
                    "training_majority_share": bias["training_majority_share"],
                    "majority_flip_share": bias["majority_flip_share"],
                    "delta": bias["delta"],
                    "confirmed": bias["confirmed"],
                }
            )
    return {"min_tolerance": min_tolerance, "bias_delta": bias_delta}
