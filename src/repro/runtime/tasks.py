"""Picklable per-input work units for the analysis runtime.

Each task describes one independent slice of an analysis — the P2
tolerance search for one input, the P3 extraction for one input, one
``(node, sign)`` sensitivity probe — as plain data plus a ``run`` method
that only needs a :class:`~repro.runtime.runner.QueryRunner`.  The same
object executes identically inline (``workers=1``) and inside a pooled
worker process, which is what makes the parallel path a pure scheduling
change: the search logic exists exactly once.

Tasks return plain dicts/tuples rather than the report dataclasses of
:mod:`repro.core` so the runtime layer stays import-free of the analysis
layer (the analyses wrap task outcomes into their own report types).

Ladder tasks carry *session affinity* for free: every query a task
issues for its input routes through ``runner._verifier_for(index)``, the
same per-input portfolio — so with ``RuntimeConfig.incremental`` all of
one input's boundary-band rungs (search probes and frontier bisection
alike) reuse one warm :class:`~repro.verify.incremental.LadderSession`.
Cache keys and contexts are untouched by the flag, so warm disk verdicts
short-circuit before any session is even created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigError

#: Warm cache entries shipped with a task into a worker process.
WarmEntries = dict


@dataclass
class ToleranceSearchTask:
    """P2 for one input: smallest ±P admitting a counterexample.

    With the frontier plane enabled, the whole probe ladder ``1..ceiling``
    — every rung either search schedule could visit, binary-search rungs
    included — is submitted speculatively to the bulk prepass first: the
    vectorised incomplete passes and the monotone implication closure
    resolve most rungs, and the search's own probes then only reach a
    complete engine inside the thin boundary band.
    """

    index: int
    x: tuple
    true_label: int
    ceiling: int
    schedule: str = "binary"
    warm: WarmEntries = field(default_factory=dict)
    warm_kinds = ("verify",)

    def run(self, runner) -> dict[str, Any]:
        if self.schedule not in ("binary", "paper"):
            raise ConfigError("schedule must be 'binary' or 'paper'")
        runner.prepass_ladder(
            self.x, self.true_label, range(1, self.ceiling + 1), index=self.index
        )
        verify = lambda percent: runner.verify_at(  # noqa: E731
            self.x, self.true_label, percent, index=self.index
        )
        if self.schedule == "binary":
            return _search_binary(verify, self.ceiling)
        return _search_paper(verify, self.ceiling)


@dataclass
class ExtractionTask:
    """P3 for one input: unique adversarial vectors at a fixed range."""

    index: int
    x: tuple
    true_label: int
    percent: int
    limit: int | None
    exhaustive_cutoff: int
    warm: WarmEntries = field(default_factory=dict)
    # "verify" rides along for the robust-verdict short-circuit.
    warm_kinds = ("extract", "verify")

    def run(self, runner) -> dict[str, Any]:
        return runner.collect_at(
            self.x,
            self.true_label,
            self.percent,
            limit=self.limit,
            exhaustive_cutoff=self.exhaustive_cutoff,
            index=self.index,
        )


@dataclass
class ProbeTask:
    """Eq.-3 probe: minimal single-node noise (one node, one sign) that
    flips *any* of the given correctly-classified inputs.

    With the frontier plane enabled, the task submits its whole ladder —
    every input × every magnitude up to the ceiling — as one bulk exact
    network evaluation before bisecting; the bisections then read the
    memoised flip thresholds and never evaluate the network again.
    """

    node: int
    sign: int
    ceiling: int
    inputs: tuple  # ((index, x, true_label), ...)
    warm: WarmEntries = field(default_factory=dict)
    warm_kinds = ("probe",)

    def run(self, runner) -> int | None:
        if getattr(runner, "frontier_enabled", False):
            runner.probe_ladder(self.inputs, self.node, self.sign, self.ceiling)
        best: int | None = None
        for index, x, true_label in self.inputs:
            low = 1
            high = best - 1 if best is not None else self.ceiling
            while low <= high:
                mid = (low + high) // 2
                if runner.flips_single_node(
                    x, true_label, self.node, self.sign, mid, index=index
                ):
                    best, high = mid, mid - 1
                else:
                    low = mid + 1
        return best


# -- the two P2 search schedules (paper §IV-B / Fig. 2) -------------------------


def _search_binary(verify, ceiling: int) -> dict[str, Any]:
    """Bisection on the range bound; each probe is one verification."""
    low, high = 1, ceiling
    best = None
    best_percent: int | None = None
    queries = 0
    while low <= high:
        mid = (low + high) // 2
        result = verify(mid)
        queries += 1
        if result.is_vulnerable:
            best, best_percent = result, mid
            high = mid - 1
        else:
            low = mid + 1
    return {
        "min_flip_percent": best_percent,
        "witness": best.witness if best else None,
        "flipped_to": best.predicted_label if best else None,
        "queries": queries,
    }


def _search_paper(verify, ceiling: int) -> dict[str, Any]:
    """Fig.-2 literal loop: shrink ΔX while counterexamples exist."""
    percent = ceiling
    last = None
    last_flip: int | None = None
    queries = 0
    while percent >= 1:
        result = verify(percent)
        queries += 1
        if not result.is_vulnerable:
            break
        last, last_flip = result, percent
        percent -= 1
    return {
        "min_flip_percent": last_flip,
        "witness": last.witness if last else None,
        "flipped_to": last.predicted_label if last else None,
        "queries": queries,
    }
