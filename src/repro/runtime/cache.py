"""Keyed memoisation of verification outcomes.

Every query the analyses issue is addressed by a structured key::

    (kind, input index, input values, true label, noise percent, extra)

``kind`` namespaces the payload ("verify" → :class:`VerificationResult`,
"extract" → collected noise vectors, "probe" → single-node flip booleans).
The input *values* ride along with the index so a cache can never hand
back results for a different dataset that happens to reuse an index.

The cache is bound to a *context* string (network fingerprint + verifier
fingerprint, see :mod:`repro.runtime.fingerprint`); binding a different
context invalidates everything, which is what makes it safe to hand one
cache object to successive runners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

#: Structured cache key; see the module docstring for the field layout.
QueryKey = tuple


@dataclass
class CacheStats:
    """Hit/miss accounting, exposed on :class:`QueryCache.stats`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    preloads: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.stores} stores"
        )


def make_key(
    kind: str,
    index: int,
    x: Iterable[int],
    true_label: int,
    percent: int,
    extra: Hashable = (),
) -> QueryKey:
    """Canonical key for one analysis query (input values included)."""
    return (kind, int(index), tuple(int(v) for v in x), int(true_label), int(percent), extra)


class QueryCache:
    """In-memory query memo with stats and context invalidation.

    ``enabled=False`` turns every operation into a no-op so callers never
    need an ``if cache`` branch; stats still record the misses.
    """

    def __init__(self, enabled: bool = True, context: str | None = None):
        self.enabled = enabled
        self.context = context
        self.stats = CacheStats()
        self._entries: dict[QueryKey, Any] = {}
        # Secondary index: (index, input values) → that input's entries,
        # so warm-entry harvesting never scans the whole cache.
        self._by_input: dict[tuple, dict[QueryKey, Any]] = {}
        #: Entries stored via :meth:`put` since construction or the last
        #: :meth:`preload` — what a pooled worker ships back to the parent.
        self.added: dict[QueryKey, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: QueryKey) -> bool:
        return self.enabled and key in self._entries

    # -- context binding -------------------------------------------------------

    def bind(self, context: str) -> None:
        """Attach to a (network, verifier-config) context.

        A context change means every cached result was computed against a
        different model or budget: drop them all and count an invalidation.
        """
        if self.context is not None and self.context != context and self._entries:
            self.clear()
            self.stats.invalidations += 1
        self.context = context

    def clear(self) -> None:
        self._entries.clear()
        self._by_input.clear()
        self.added.clear()

    # -- lookups -------------------------------------------------------------------

    def get(self, key: QueryKey) -> Any | None:
        """Stats-counted lookup; None on miss (or when disabled)."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: QueryKey) -> Any | None:
        """Lookup without touching the stats (warm-entry harvesting)."""
        if not self.enabled:
            return None
        return self._entries.get(key)

    def put(self, key: QueryKey, value: Any) -> None:
        if not self.enabled:
            return
        self._entries[key] = value
        self._by_input.setdefault((key[1], key[2]), {})[key] = value
        self.added[key] = value
        self.stats.stores += 1

    # -- bulk transfer (parallel workers) --------------------------------------------

    def preload(self, entries: dict[QueryKey, Any]) -> None:
        """Seed entries without counting stores; resets the ``added`` journal."""
        if not self.enabled:
            return
        self._entries.update(entries)
        for key, value in entries.items():
            self._by_input.setdefault((key[1], key[2]), {})[key] = value
        self.stats.preloads += len(entries)
        self.added.clear()

    def entries_for_input(
        self, index: int, x: Iterable[int], kinds: tuple[str, ...] | None = None
    ) -> dict[QueryKey, Any]:
        """Cached entries addressing one ``(index, input values)`` pair.

        Served from the per-input secondary index (no full-cache scan).
        ``kinds`` restricts the result to the given key namespaces so a
        task is only shipped entries it can actually consume (a probe
        task has no use for cached extraction vector lists).
        """
        if not self.enabled:
            return {}
        bucket = self._by_input.get((index, tuple(int(v) for v in x)), {})
        if kinds is None:
            return dict(bucket)
        return {key: value for key, value in bucket.items() if key[0] in kinds}
