"""Keyed memoisation of verification outcomes.

Every query the analyses issue is addressed by a structured key::

    (kind, input index, input values, true label, noise percent, extra)

``kind`` namespaces the payload ("verify" → :class:`VerificationResult`,
"extract" → collected noise vectors, "probe" → single-node flip booleans).
The input *values* ride along with the index so a cache can never hand
back results for a different dataset that happens to reuse an index.

The cache is bound to a *context* string (network fingerprint + verifier
fingerprint, see :mod:`repro.runtime.fingerprint`); binding a different
context invalidates everything, which is what makes it safe to hand one
cache object to successive runners.

Misses are reported with the :data:`MISS` sentinel, never ``None`` — a
cached payload may legitimately *be* ``None``, so ``None`` cannot double
as "not present".

Two cache flavours exist:

- :class:`QueryCache` — exact-key memoisation only (PR 1 semantics);
- :class:`MonotoneCache` — additionally answers "verify" and "probe"
  queries *implied* by the paper's noise-model monotonicity: a ROBUST
  verdict at ±P covers every ±P' ≤ P (the smaller box is a subset), a
  VULNERABLE verdict at ±P covers every ±P' ≥ P (its witness stays in
  range), and a single-node probe flip at magnitude P covers every
  P' ≥ P (dually for "no flip").  Derived answers are counted in
  :attr:`CacheStats.derived_hits`, are never stored back as "verify" or
  "probe" entries (the monotone fact tables hold engine-proved verdicts
  only), and a derived VULNERABLE verdict carries the witness of the
  source entry — a valid counterexample for the larger box, though not
  necessarily the one a cold solver run at that exact percent would
  report.  One downstream consequence *is* stored: the extraction
  short-circuit in :meth:`~repro.runtime.runner.QueryRunner.collect_at`
  memoises its empty "extract" outcome whether the ROBUST verdict that
  forced it was exact or implied — either way the entry records a fact
  forced by an engine-proved verdict, exactly as an exact-key hit did
  in the pre-monotone cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from ..verify.result import VerificationResult, VerificationStatus

#: Structured cache key; see the module docstring for the field layout.
QueryKey = tuple


class _Miss:
    """Singleton sentinel distinguishing "not cached" from a None payload."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<cache MISS>"

    def __bool__(self) -> bool:
        return False


#: Returned by :meth:`QueryCache.get` / :meth:`QueryCache.peek` on a miss.
MISS = _Miss()


@dataclass
class CacheStats:
    """Hit/miss accounting, exposed on :class:`QueryCache.stats`.

    ``hits`` counts exact-key hits; ``derived_hits`` counts answers the
    monotone layer inferred from an entry at a different percent.  Both
    count as successful lookups for :attr:`hit_rate`.
    """

    hits: int = 0
    derived_hits: int = 0
    misses: int = 0
    stores: int = 0
    preloads: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.derived_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.derived_hits) / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold a worker's counters into this one (bulk transfer).

        Every counter folds — stores, preloads and invalidations
        included — so a parallel run reports the same totals a serial
        run of the same tasks would (the stats describe logical cache
        activity, wherever it physically happened).
        """
        self.hits += other.hits
        self.derived_hits += other.derived_hits
        self.misses += other.misses
        self.stores += other.stores
        self.preloads += other.preloads
        self.invalidations += other.invalidations

    def describe(self) -> str:
        return (
            f"cache: {self.hits} exact + {self.derived_hits} derived hits "
            f"/ {self.misses} misses ({self.hit_rate:.0%} hit rate), "
            f"{self.stores} stores, {self.preloads} preloaded"
        )


def make_key(
    kind: str,
    index: int,
    x: Iterable[int],
    true_label: int,
    percent: int,
    extra: Hashable = (),
) -> QueryKey:
    """Canonical key for one analysis query (input values included)."""
    return (kind, int(index), tuple(int(v) for v in x), int(true_label), int(percent), extra)


def _group_of(key: QueryKey) -> tuple:
    """The percent-independent part of a key: what monotone facts attach to."""
    kind, index, x, true_label, _percent, extra = key
    return (kind, index, x, true_label, extra)


def _percent_of(key: QueryKey) -> int:
    return key[4]


class QueryCache:
    """In-memory query memo with stats and context invalidation.

    ``enabled=False`` turns every operation into a no-op so callers never
    need an ``if cache`` branch; stats still record the misses.
    """

    def __init__(self, enabled: bool = True, context: str | None = None):
        self.enabled = enabled
        self.context = context
        self.stats = CacheStats()
        self._entries: dict[QueryKey, Any] = {}
        # Secondary index: (index, input values) → that input's entries,
        # so warm-entry harvesting never scans the whole cache.
        self._by_input: dict[tuple, dict[QueryKey, Any]] = {}
        #: Entries stored via :meth:`put` since construction, the last
        #: :meth:`preload` or the last journal reset — what a pooled
        #: worker ships back to the parent, and what a
        #: :class:`~repro.runtime.store.CacheStore` flush spills to disk.
        self.added: dict[QueryKey, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: QueryKey) -> bool:
        return self.enabled and key in self._entries

    # -- context binding -------------------------------------------------------

    def bind(self, context: str) -> None:
        """Attach to a (network, verifier-config) context.

        A context change means every cached result was computed against a
        different model or budget: drop them all and count an invalidation.
        """
        if self.context is not None and self.context != context and self._entries:
            self.clear()
            self.stats.invalidations += 1
        self.context = context

    def clear(self) -> None:
        self._entries.clear()
        self._by_input.clear()
        self.added.clear()

    # -- lookups -------------------------------------------------------------------

    def get(self, key: QueryKey) -> Any:
        """Stats-counted lookup; :data:`MISS` on miss (or when disabled)."""
        if not self.enabled:
            self.stats.misses += 1
            return MISS
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key]
        derived = self._derive(key)
        if derived is not MISS:
            self.stats.derived_hits += 1
            return derived
        self.stats.misses += 1
        return MISS

    def peek(self, key: QueryKey) -> Any:
        """Lookup without touching the stats (warm-entry harvesting).

        Like :meth:`get` this consults the monotone layer (when present),
        so an extraction short-circuit sees implied ROBUST verdicts too.
        """
        if not self.enabled:
            return MISS
        if key in self._entries:
            return self._entries[key]
        return self._derive(key)

    def _derive(self, key: QueryKey) -> Any:
        """Monotone hook; the exact-key cache never infers anything."""
        return MISS

    def put(self, key: QueryKey, value: Any) -> None:
        if not self.enabled:
            return
        self._entries[key] = value
        self._by_input.setdefault((key[1], key[2]), {})[key] = value
        self.added[key] = value
        self._index_fact(key, value)
        self.stats.stores += 1

    def _index_fact(self, key: QueryKey, value: Any) -> None:
        """Monotone hook; called for every entry that enters the cache."""

    # -- bulk transfer (parallel workers, disk store) ----------------------------------

    def adopt(self, entries: dict[QueryKey, Any]) -> None:
        """Fold entries a pooled worker shipped back (exact keys only).

        Like :meth:`put` for each *new* key — indexed and journalled in
        ``added`` so the next disk flush persists them — but without
        counting ``stores``: the producing cache already counted each
        store, and its :class:`CacheStats` merge carries that count
        here, so counting the physical transfer again would double-book
        every parallel store.  Keys already present are kept as-is.
        """
        if not self.enabled:
            return
        for key, value in entries.items():
            if key in self._entries:
                continue
            self._entries[key] = value
            self._by_input.setdefault((key[1], key[2]), {})[key] = value
            self.added[key] = value
            self._index_fact(key, value)

    def preload(self, entries: dict[QueryKey, Any]) -> None:
        """Seed entries without counting stores; resets the ``added`` journal."""
        if not self.enabled:
            return
        self._entries.update(entries)
        for key, value in entries.items():
            self._by_input.setdefault((key[1], key[2]), {})[key] = value
            self._index_fact(key, value)
        self.stats.preloads += len(entries)
        self.added.clear()

    def snapshot(self) -> dict[QueryKey, Any]:
        """Copy of every exact entry (what a disk store persists)."""
        return dict(self._entries)

    def entries_for_input(
        self, index: int, x: Iterable[int], kinds: tuple[str, ...] | None = None
    ) -> dict[QueryKey, Any]:
        """Cached entries addressing one ``(index, input values)`` pair.

        Served from the per-input secondary index (no full-cache scan).
        ``kinds`` restricts the result to the given key namespaces so a
        task is only shipped entries it can actually consume (a probe
        task has no use for cached extraction vector lists).  Only exact
        entries are returned — monotone-derived answers are re-derived
        on the receiving side from the same facts, never materialised.
        """
        if not self.enabled:
            return {}
        bucket = self._by_input.get((index, tuple(int(v) for v in x)), {})
        if kinds is None:
            return dict(bucket)
        return {key: value for key, value in bucket.items() if key[0] in kinds}


@dataclass
class _VerifyFacts:
    """Strongest proved verdicts for one (input, label, extra) group.

    ``robust_max`` is the largest percent with a proved ROBUST verdict
    (covers every smaller percent); ``vulnerable_min`` the smallest with
    a proved VULNERABLE verdict (covers every larger percent).  The keys
    point at the source entries so derived verdicts can carry a witness.
    """

    robust_max: int | None = None
    robust_key: QueryKey | None = None
    vulnerable_min: int | None = None
    vulnerable_key: QueryKey | None = None


@dataclass
class _ProbeFacts:
    """Single-node flip thresholds for one (input, label, node, sign) group."""

    flip_min: int | None = None  # smallest percent known to flip
    noflip_max: int | None = None  # largest percent known not to flip


class MonotoneCache(QueryCache):
    """Exact-key cache plus verdict derivation along the percent axis.

    See the module docstring for the inference rules.  Derivation is
    sound because the noise boxes are nested (±P' ⊆ ±P for P' ≤ P) and
    strictly side-effect-free: derived answers are never stored, so the
    entry table — and therefore the disk store and the warm entries
    shipped to pooled workers — only ever contains engine-proved facts.
    """

    def __init__(self, enabled: bool = True, context: str | None = None):
        super().__init__(enabled=enabled, context=context)
        self._verify_facts: dict[tuple, _VerifyFacts] = {}
        self._probe_facts: dict[tuple, _ProbeFacts] = {}

    def clear(self) -> None:
        super().clear()
        self._verify_facts.clear()
        self._probe_facts.clear()

    # -- fact indexing ------------------------------------------------------------

    def _index_fact(self, key: QueryKey, value: Any) -> None:
        kind = key[0]
        if kind == "verify" and isinstance(value, VerificationResult):
            percent = _percent_of(key)
            facts = self._verify_facts.setdefault(_group_of(key), _VerifyFacts())
            if value.status is VerificationStatus.ROBUST:
                if facts.robust_max is None or percent > facts.robust_max:
                    facts.robust_max, facts.robust_key = percent, key
            elif value.status is VerificationStatus.VULNERABLE:
                if facts.vulnerable_min is None or percent < facts.vulnerable_min:
                    facts.vulnerable_min, facts.vulnerable_key = percent, key
        elif kind == "probe" and isinstance(value, bool):
            percent = _percent_of(key)
            facts = self._probe_facts.setdefault(_group_of(key), _ProbeFacts())
            if value:
                if facts.flip_min is None or percent < facts.flip_min:
                    facts.flip_min = percent
            else:
                if facts.noflip_max is None or percent > facts.noflip_max:
                    facts.noflip_max = percent

    # -- derivation ------------------------------------------------------------------

    def _derive(self, key: QueryKey) -> Any:
        kind = key[0]
        if kind == "verify":
            return self._derive_verify(key)
        if kind == "probe":
            return self._derive_probe(key)
        return MISS

    def _derive_verify(self, key: QueryKey) -> Any:
        facts = self._verify_facts.get(_group_of(key))
        if facts is None:
            return MISS
        percent = _percent_of(key)
        if facts.robust_max is not None and percent <= facts.robust_max:
            return VerificationResult(
                status=VerificationStatus.ROBUST,
                engine=f"monotone(robust@±{facts.robust_max}%)",
                stats={"derived_from_percent": facts.robust_max},
            )
        if facts.vulnerable_min is not None and percent >= facts.vulnerable_min:
            source = self._entries[facts.vulnerable_key]
            return VerificationResult(
                status=VerificationStatus.VULNERABLE,
                witness=source.witness,
                predicted_label=source.predicted_label,
                engine=f"monotone(vulnerable@±{facts.vulnerable_min}%)",
                stats={"derived_from_percent": facts.vulnerable_min},
            )
        return MISS

    def _derive_probe(self, key: QueryKey) -> Any:
        facts = self._probe_facts.get(_group_of(key))
        if facts is None:
            return MISS
        percent = _percent_of(key)
        if facts.flip_min is not None and percent >= facts.flip_min:
            return True
        if facts.noflip_max is not None and percent <= facts.noflip_max:
            return False
        return MISS
