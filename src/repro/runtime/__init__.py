"""Analysis runtime (system S11): parallel, cache-aware query execution.

The FANNet methodology is embarrassingly parallel — the P2 noise-tolerance
search, the P3 noise-vector extraction and the Eq.-3 sensitivity probes
each issue hundreds of *independent* verification queries per input.
This package turns that structure into throughput:

- :class:`QueryRunner` — the chokepoint every analysis submits work
  through: memoised single queries plus per-input task fan-out over a
  process pool with deterministic ``(seed, input index)`` seeding;
- :class:`QueryCache` / :class:`CacheStats` — the keyed query memo with
  fingerprint-based invalidation;
- :mod:`repro.runtime.tasks` — the picklable per-input work units;
- :mod:`repro.runtime.fingerprint` — network/config fingerprints and the
  seed-derivation contract.

``RuntimeConfig`` (in :mod:`repro.config`) selects worker count and cache
policy; ``--workers`` / ``--no-cache`` expose it on the CLI.
"""

from .cache import CacheStats, QueryCache, make_key
from .fingerprint import (
    derive_seed,
    network_fingerprint,
    runtime_context,
    verifier_fingerprint,
)
from .runner import QueryRunner, RunnerStats
from .tasks import ExtractionTask, ProbeTask, ToleranceSearchTask

__all__ = [
    "QueryRunner",
    "RunnerStats",
    "QueryCache",
    "CacheStats",
    "make_key",
    "derive_seed",
    "network_fingerprint",
    "verifier_fingerprint",
    "runtime_context",
    "ToleranceSearchTask",
    "ExtractionTask",
    "ProbeTask",
]
