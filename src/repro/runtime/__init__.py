"""Analysis runtime (system S11): parallel, cache-aware query execution.

The FANNet methodology is embarrassingly parallel — the P2 noise-tolerance
search, the P3 noise-vector extraction and the Eq.-3 sensitivity probes
each issue hundreds of *independent* verification queries per input.
This package turns that structure into throughput:

- :class:`QueryRunner` — the chokepoint every analysis submits work
  through: memoised single queries, whole-ladder/grid frontiers resolved
  by the vectorised bulk prepass of :mod:`repro.verify.batch`
  (``RuntimeConfig.frontier``), plus per-input task fan-out over a
  process pool with deterministic ``(seed, input index)`` seeding.  An
  :class:`~repro.verify.stats.EngineStats` table — persisted alongside
  the cache — records per-stage decide rates and wall time and drives
  the portfolio's stage order per workload;
- :class:`QueryCache` / :class:`MonotoneCache` / :class:`CacheStats` —
  the keyed query memo with fingerprint-based invalidation.  Lookups
  return :data:`MISS` (never ``None``) when nothing is cached, so a
  legitimately-``None`` payload round-trips.  The monotone flavour (the
  default) additionally answers queries *implied* along the noise-percent
  axis: ROBUST at ±P ⇒ ROBUST at every ±P' ≤ P (nested boxes),
  VULNERABLE at ±P ⇒ VULNERABLE at every ±P' ≥ P (the witness stays in
  range), and dually for single-node probe flips.  Derived answers are
  counted in ``CacheStats.derived_hits`` and never stored — the entry
  table holds engine-proved facts only;
- :class:`CacheStore` (:mod:`repro.runtime.store`) — cross-run
  persistence: one versioned, checksummed file per (network,
  verifier-config) fingerprint context under ``RuntimeConfig.cache_dir``.
  Corrupt, truncated, wrong-version or wrong-context files are discarded
  with a :class:`CacheStoreWarning` (cold start, never a wrong verdict),
  and deserialisation is restricted to the verdict types a cache entry
  legitimately contains — a crafted file referencing any other callable
  is refused before anything executes; writes are atomic, so concurrent
  runs degrade to last-writer-wins;
- :mod:`repro.runtime.tasks` — the picklable per-input work units;
- :mod:`repro.runtime.fingerprint` — network/config fingerprints and the
  seed-derivation contract.

Invalidation rules, in decreasing severity: a context change (different
network weights or verifier budget/seed) drops every in-memory entry and
ignores every disk file written under another context; a store-format
version bump discards older files wholesale; within one context, entries
never expire — verdicts are mathematical facts about a fixed network.

``RuntimeConfig`` (in :mod:`repro.config`) selects worker count, cache
policy, monotone reuse and the persistence directory; ``--workers`` /
``--no-cache`` / ``--cache-dir`` / ``--no-persist`` expose it on the CLI.
"""

from ..verify.stats import EngineStats, StageStat
from .cache import MISS, CacheStats, MonotoneCache, QueryCache, make_key
from .fingerprint import (
    derive_seed,
    network_fingerprint,
    runtime_context,
    verifier_fingerprint,
)
from .lifecycle import (
    PruneReport,
    StoreFileInfo,
    inspect_cache_file,
    prune_cache_dir,
    scan_cache_dir,
)
from .runner import QueryRunner, RunnerStats
from .store import CacheStore, CacheStoreWarning
from .tasks import ExtractionTask, ProbeTask, ToleranceSearchTask

__all__ = [
    "QueryRunner",
    "RunnerStats",
    "EngineStats",
    "StageStat",
    "QueryCache",
    "MonotoneCache",
    "CacheStats",
    "CacheStore",
    "CacheStoreWarning",
    "MISS",
    "PruneReport",
    "StoreFileInfo",
    "inspect_cache_file",
    "prune_cache_dir",
    "scan_cache_dir",
    "make_key",
    "derive_seed",
    "network_fingerprint",
    "verifier_fingerprint",
    "runtime_context",
    "ToleranceSearchTask",
    "ExtractionTask",
    "ProbeTask",
]
