"""Parallel, cache-aware, frontier-batched execution of analysis queries.

:class:`QueryRunner` is the single chokepoint through which the FANNet
analyses (P2 tolerance search, P3 extraction, sensitivity probes) issue
verification work.  It provides:

- **Memoisation** — every query outcome lands in a :class:`QueryCache`
  (by default the monotonicity-aware :class:`MonotoneCache`) keyed by
  ``(kind, input index, input values, true label, noise percent,
  extra)`` under a (network, verifier-config) fingerprint context, so the
  tolerance bisection, the literal paper schedule, the Fig.-4 sweep,
  extraction and the probes stop re-solving identical queries — and,
  with the monotone layer, stop re-solving queries whose answer is
  *implied* by a verdict at a different percent.
- **Persistence** — with ``RuntimeConfig.cache_dir`` set, the cache
  warm-starts from a per-context :class:`~repro.runtime.store.CacheStore`
  file at construction and spills new entries back on :meth:`QueryRunner.flush`
  / :meth:`QueryRunner.close`, so repeated CLI runs over the same model
  and budget issue zero solver calls.  The per-engine statistics table
  rides in the same file, so stage scheduling warm-starts too.
- **Frontier batching** — with ``RuntimeConfig.frontier`` (the default),
  the analyses submit whole probe ladders and grids
  (:meth:`prepass_ladder`, :meth:`verify_frontier`,
  :meth:`probe_ladder`): a vectorised bulk prepass
  (:class:`~repro.verify.batch.FrontierPrepass`) resolves the cheap mass
  of the frontier — one interval matmul pair per layer for *all*
  queries, concatenated falsifier evaluations — and only the boundary
  band reaches a complete engine, per query (lazily for searches,
  monotone-bisected for grids).  Bit-identical to the per-query path.
- **Portfolio scheduling** — an :class:`~repro.verify.stats.EngineStats`
  table records per-stage decide rates and wall time; the per-index
  portfolios and the bulk prepass reorder their incomplete stages from
  it (verdict- and witness-preserving by construction, see
  :mod:`repro.verify.stats`).
- **Fan-out** — independent per-input tasks (see
  :mod:`repro.runtime.tasks`) run over a ``ProcessPoolExecutor`` when
  ``RuntimeConfig.workers > 1``.  Warm cache entries for each task's
  input ship with the task; entries the worker computes ship back and
  merge into the parent cache, so a warm parallel run issues zero new
  solver calls.
- **Deterministic seeding** — the stochastic falsifier inside each
  worker derives its seed from ``(config.seed, input index)``
  (:func:`~repro.runtime.fingerprint.derive_seed`), so reports are
  bit-identical for any worker count and any scheduling order.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from ..config import NoiseConfig, RuntimeConfig, VerifierConfig
from ..verify import (
    EngineStats,
    FrontierPrepass,
    FrontierProbe,
    NoiseVectorCollector,
    PortfolioVerifier,
    build_query,
    labels_for_rows,
    resolve_survivors,
)
from ..verify.result import VerificationResult
from .cache import MISS, CacheStats, MonotoneCache, QueryCache, make_key
from .fingerprint import derive_seed, runtime_context
from .store import CacheStore


@dataclass
class RunnerStats:
    """Uncached work actually performed (the cache's savings baseline)."""

    verify_calls: int = 0
    extract_calls: int = 0
    probe_evals: int = 0
    tasks: int = 0
    parallel_batches: int = 0
    frontier_queries: int = 0  # probes entering a bulk prepass
    frontier_decided: int = 0  # of which the incomplete bulk passes decided

    @property
    def solver_calls(self) -> int:
        """Verifier + collector invocations that reached an engine."""
        return self.verify_calls + self.extract_calls

    def merge(self, other: "RunnerStats") -> None:
        self.verify_calls += other.verify_calls
        self.extract_calls += other.extract_calls
        self.probe_evals += other.probe_evals
        self.frontier_queries += other.frontier_queries
        self.frontier_decided += other.frontier_decided

    def describe(self) -> str:
        text = (
            f"runner: {self.verify_calls} verifier calls, "
            f"{self.extract_calls} extractions, {self.probe_evals} probe evals "
            f"over {self.tasks} tasks"
        )
        if self.frontier_queries:
            text += (
                f"; frontier prepass decided {self.frontier_decided}"
                f"/{self.frontier_queries} queries"
            )
        return text


class QueryRunner:
    """Submit analysis queries; get memoised, optionally pooled, results."""

    def __init__(
        self,
        network,
        config: VerifierConfig | None = None,
        runtime: RuntimeConfig | None = None,
        verifier=None,
        cache: QueryCache | None = None,
        store: CacheStore | None = None,
        data_digest: str | None = None,
    ):
        self.network = network
        self.config = config or VerifierConfig()
        self.runtime = runtime or RuntimeConfig()
        self._fixed_verifier = verifier
        #: Content digest of an external dataset source (None for the
        #: case-study splits): part of the cache context, so results over
        #: one file revision never warm-start an analysis over another.
        self.data_digest = data_digest
        if cache is None:
            cache_cls = MonotoneCache if self.runtime.monotone else QueryCache
            cache = cache_cls(enabled=self.runtime.cache)
        self.cache = cache
        self.cache.bind(runtime_context(network, self.config, data_digest))
        self.engine_stats = EngineStats()
        self.store = store
        if self.store is None and self.runtime.persistence_enabled:
            self.store = CacheStore(self.runtime.cache_dir)
        if self.store is not None and self.cache.enabled:
            warm = self.store.load(self.cache.context)
            if warm:
                self.cache.preload(warm)
            if self.store.loaded_stats:
                self.engine_stats.merge_payload(self.store.loaded_stats)
        #: The engine-stats table as last persisted (or warm-loaded), so
        #: flush() can tell "stats changed" apart from "pure warm replay".
        self._persisted_stats = self.engine_stats.snapshot()
        self.stats = RunnerStats()
        self._verifiers: dict[int, PortfolioVerifier] = {}
        self._pool: ProcessPoolExecutor | None = None
        #: Keys whose incomplete stages a bulk prepass already exhausted:
        #: a later exact query skips straight to the complete engine.
        self._frontier_unknown: set = set()
        #: (index, x, label, node, sign) -> (checked ceiling, min flip
        #: magnitude or None): the bulk single-node probe ladders.
        self._probe_thresholds: dict = {}
        #: Serialises flush/close and stats snapshots.  Query execution
        #: itself is not made concurrent by this lock — a runner shared
        #: between threads (the serve plane's per-context runner pool)
        #: must still serialise run_tasks calls externally — but the
        #: maintenance operations (periodic flushes, a stats endpoint
        #: sampling a runner mid-job) are safe from any thread.
        self._io_lock = threading.RLock()

    # -- engine selection -------------------------------------------------------

    @property
    def frontier_enabled(self) -> bool:
        """Whether bulk prepasses may run.

        Requires the cache (prepass results are only useful memoised) and
        the stock portfolio (an injected verifier's semantics are opaque,
        so the prepass could not emulate its stages).
        """
        return (
            self.runtime.frontier
            and self.cache.enabled
            and self._fixed_verifier is None
        )

    def _verifier_for(self, index: int):
        """Per-input verifier with a seed derived from (base seed, index)."""
        if self._fixed_verifier is not None:
            return self._fixed_verifier
        verifier = self._verifiers.get(index)
        if verifier is None:
            seeded = replace(self.config, seed=derive_seed(self.config.seed, index))
            verifier = PortfolioVerifier(
                seeded,
                engine_stats=self.engine_stats,
                incremental=self.runtime.incremental,
            )
            self._verifiers[index] = verifier
        return verifier

    def _build_query(self, x, true_label: int, percent: int):
        return build_query(
            self.network,
            np.asarray(x, dtype=np.int64),
            true_label,
            NoiseConfig(max_percent=percent),
        )

    # -- cached building blocks -----------------------------------------------------

    def verify_at(
        self, x, true_label: int, percent: int, index: int = -1
    ) -> VerificationResult:
        """One robustness query at ``±percent``, memoised."""
        x = tuple(int(v) for v in x)
        key = make_key("verify", index, x, true_label, percent)
        cached = self.cache.get(key)
        if cached is not MISS:
            return cached
        query = self._build_query(x, true_label, percent)
        if key in self._frontier_unknown:
            # The bulk prepass already ran (and failed) every incomplete
            # stage for this query: go straight to the complete engine.
            self._frontier_unknown.discard(key)
            result = self._verifier_for(index).verify_complete(query)
        else:
            result = self._verifier_for(index).verify(query)
        self.stats.verify_calls += 1
        self.cache.put(key, result)
        return result

    def collect_at(
        self,
        x,
        true_label: int,
        percent: int,
        limit: int | None,
        exhaustive_cutoff: int,
        index: int = -1,
    ) -> dict:
        """P3 collection at ``±percent``, memoised; reuses robust verdicts."""
        x = tuple(int(v) for v in x)
        key = make_key(
            "extract", index, x, true_label, percent, extra=(limit, exhaustive_cutoff)
        )
        cached = self.cache.get(key)
        if cached is not MISS:
            return cached
        verdict = self.cache.peek(make_key("verify", index, x, true_label, percent))
        if verdict is not MISS and verdict.is_robust:
            # The P2 pass already proved this box clean: the vector set is
            # empty, no collector run needed.
            outcome = {"vectors": [], "flipped_to": [], "exhausted": True}
            self.cache.put(key, outcome)
            return outcome
        query = self._build_query(x, true_label, percent)
        effective_limit = limit
        if query.noise_space_size() > exhaustive_cutoff and effective_limit is None:
            effective_limit = 1000  # solver-driven extraction needs a bound
        # Same (seed, index) derivation as _verifier_for: every engine a
        # task touches must see the per-input seed, not the base one.
        seeded = replace(self.config, seed=derive_seed(self.config.seed, index))
        collector = NoiseVectorCollector(seeded, exhaustive_cutoff=exhaustive_cutoff)
        collected = collector.collect(query, limit=effective_limit)
        flipped = [query.predict_single(vector) for vector in collected.vectors]
        outcome = {
            "vectors": list(collected.vectors),
            "flipped_to": flipped,
            "exhausted": collected.exhausted,
        }
        self.stats.extract_calls += 1
        self.cache.put(key, outcome)
        return outcome

    def flips_single_node(
        self,
        x,
        true_label: int,
        node: int,
        sign: int,
        percent: int,
        index: int = -1,
    ) -> bool:
        """Exact Eq.-3 check (noise on one node only), memoised."""
        x = tuple(int(v) for v in x)
        key = make_key("probe", index, x, true_label, percent, extra=(node, sign))
        cached = self.cache.get(key)
        if cached is not MISS:
            return cached
        if self.frontier_enabled:
            threshold = self._probe_threshold(index, x, true_label, node, sign, percent)
            flips = threshold is not None and threshold <= percent
        else:
            flips = False
            vector = [0] * len(x)
            for magnitude in range(1, percent + 1):
                vector[node] = sign * magnitude
                if self.network.predict_noisy(x, vector) != true_label:
                    flips = True
                    break
        self.stats.probe_evals += 1
        self.cache.put(key, flips)
        return flips

    # -- frontier batching -------------------------------------------------------------

    def prepass_ladder(self, x, true_label: int, percents, index: int = -1) -> None:
        """Bulk-resolve a whole verify ladder's cheap mass ahead of a search.

        Submits every ``±percent`` of ``percents`` whose answer is not
        already cached (or implied, or known-undecidable) to the frontier
        prepass.  Decided verdicts are memoised exactly as the per-query
        path would have; survivors are remembered so the search's own
        probes skip straight to the complete engine.  A no-op when the
        frontier is disabled — the search then probes one query at a time.
        """
        if not self.frontier_enabled:
            return
        x = tuple(int(v) for v in x)
        probes = []
        for percent in percents:
            key = make_key("verify", index, x, true_label, int(percent))
            if key in self._frontier_unknown:
                continue
            if self.cache.peek(key) is not MISS:
                continue
            probes.append((key, index, x, true_label, int(percent)))
        if not probes:
            return
        outcome = self._prepass(probes)
        self._frontier_unknown.update(probe.key for probe in outcome.unknown)

    def verify_frontier(self, probes, complete: bool = True) -> dict:
        """Resolve many ``(index, x, true_label, percent)`` probes in bulk.

        The grid entry point (Fig.-4 sweeps, extraction prepasses).
        Returns ``{cache key: VerificationResult}`` covering every probe:
        cache answers, bulk-prepass verdicts, in-frontier implications,
        and — with ``complete=True`` — complete-engine verdicts for the
        boundary band, dispatched along a monotone bisection per input
        so a band of width ``w`` costs ``O(log w)`` complete calls.
        With ``complete=False`` survivors are only marked for lazy
        complete dispatch (the extraction prepass never needs them).
        """
        results: dict = {}
        if not self.frontier_enabled:
            # Per-query fallback: verify_at does its own (single, counted)
            # cache lookup per probe, exactly as a scalar sweep loop would.
            if complete:
                for index, x, true_label, percent in probes:
                    x = tuple(int(v) for v in x)
                    key = make_key("verify", index, x, true_label, int(percent))
                    if key not in results:
                        results[key] = self.verify_at(
                            x, true_label, int(percent), index=index
                        )
            return results
        pending = []
        for index, x, true_label, percent in probes:
            x = tuple(int(v) for v in x)
            key = make_key("verify", index, x, true_label, int(percent))
            if key in results:
                continue
            cached = self.cache.get(key)
            if cached is not MISS:
                results[key] = cached
                continue
            pending.append((key, index, x, true_label, int(percent)))
        if not pending:
            return results
        fresh = [p for p in pending if p[0] not in self._frontier_unknown]
        known_unknown = [p for p in pending if p[0] in self._frontier_unknown]
        outcome = self._prepass(fresh)
        for key, result in outcome.decided.items():
            results[key] = result
        results.update(outcome.derived)
        survivors = outcome.unknown + [
            self._frontier_probe(*p) for p in known_unknown
        ]
        if complete:
            exact, derived = resolve_survivors(survivors, self._complete_probe)
            results.update(exact)
            results.update(derived)
        else:
            self._frontier_unknown.update(probe.key for probe in survivors)
        return results

    def _frontier_probe(self, key, index, x, true_label, percent) -> FrontierProbe:
        return FrontierProbe(
            key=key,
            query=self._build_query(x, true_label, percent),
            percent=percent,
            group=(index, x, true_label),
            seed=derive_seed(self.config.seed, index),
        )

    def _frontier_probes(self, probes) -> list[FrontierProbe]:
        """Build probe objects with one encoder run per input, not per rung.

        All rungs of one input share the network encoding — only the
        noise box differs — so the (pure-Python, Fraction-scaling)
        :func:`~repro.verify.build_query` runs once at the ladder's top
        percent and the smaller rungs reuse its weights.  The top box
        dominates the magnitude analysis, so its dtype choice is safe
        for every nested box.
        """
        by_input: dict = {}
        for probe in probes:
            by_input.setdefault(probe[1:4], []).append(probe)
        frontier = []
        for (index, x, true_label), group in by_input.items():
            seed = derive_seed(self.config.seed, index)
            top = max(percent for _, _, _, _, percent in group)
            base = self._build_query(x, true_label, top)
            for key, _, _, _, percent in group:
                if percent == top:
                    query = base
                else:
                    query = replace(
                        base,
                        low=np.full(base.num_inputs, -percent, dtype=np.int64),
                        high=np.full(base.num_inputs, percent, dtype=np.int64),
                    )
                frontier.append(
                    FrontierProbe(
                        key=key,
                        query=query,
                        percent=percent,
                        group=(index, x, true_label),
                        seed=seed,
                    )
                )
        return frontier

    def _prepass(self, probes):
        """Run the bulk incomplete stages; memoise every decided verdict."""
        frontier = self._frontier_probes(probes)
        prepass = FrontierPrepass(
            batch_size=self.runtime.batch_size, engine_stats=self.engine_stats
        )
        outcome = prepass.resolve(frontier)
        for key, result in outcome.decided.items():
            self.cache.put(key, result)
        self.stats.verify_calls += len(outcome.decided)
        self.stats.frontier_queries += len(frontier)
        self.stats.frontier_decided += len(outcome.decided)
        return outcome

    def _complete_probe(self, probe: FrontierProbe) -> VerificationResult:
        """Complete-engine dispatch for one frontier survivor (memoised).

        Routed through the probe's per-input portfolio, which carries the
        *session affinity*: with ``RuntimeConfig.incremental`` every
        bisection probe of one input's boundary band lands in the same
        warm :class:`~repro.verify.incremental.LadderSession`."""
        index = probe.group[0]
        result = self._verifier_for(index).verify_complete(probe.query)
        self.stats.verify_calls += 1
        self.cache.put(probe.key, result)
        self._frontier_unknown.discard(probe.key)
        return result

    def probe_ladder(self, inputs, node: int, sign: int, ceiling: int) -> None:
        """Bulk-evaluate the single-node flip ladders of many inputs at once.

        One concatenated exact network evaluation covers every magnitude
        ``1..ceiling`` of every input, seeding the threshold memo the
        Eq.-3 probes read — the probe bisections then never evaluate the
        network again.  A no-op when the frontier is disabled.
        """
        if not self.frontier_enabled:
            return
        todo = []
        for index, x, true_label in inputs:
            x = tuple(int(v) for v in x)
            group = (index, x, true_label, node, sign)
            memo = self._probe_thresholds.get(group)
            if memo is not None and (memo[1] is not None or memo[0] >= ceiling):
                continue
            todo.append((group, x, true_label))
        if not todo:
            return
        blocks = []
        for group, x, true_label in todo:
            query = self._build_query(x, true_label, ceiling)
            block = np.zeros((ceiling, len(x)), dtype=np.int64)
            block[:, node] = sign * np.arange(1, ceiling + 1, dtype=np.int64)
            blocks.append((query, block))
        labels = labels_for_rows(blocks, self.runtime.batch_size)
        for (group, x, true_label), row_labels in zip(todo, labels):
            flips = np.nonzero(row_labels != true_label)[0]
            threshold = int(flips[0]) + 1 if flips.size else None
            self._probe_thresholds[group] = (ceiling, threshold)

    def _probe_threshold(
        self, index: int, x, true_label: int, node: int, sign: int, percent: int
    ) -> int | None:
        """Minimal flipping magnitude ≤ ``percent`` from the ladder memo.

        Extends the memo with one vectorised evaluation when the asked
        percent exceeds what has been checked so far.
        """
        group = (index, x, true_label, node, sign)
        memo = self._probe_thresholds.get(group)
        if memo is not None:
            checked, threshold = memo
            if threshold is not None or checked >= percent:
                return threshold
        checked = memo[0] if memo is not None else 0
        query = self._build_query(x, true_label, percent)
        magnitudes = np.arange(checked + 1, percent + 1, dtype=np.int64)
        block = np.zeros((magnitudes.shape[0], len(x)), dtype=np.int64)
        block[:, node] = sign * magnitudes
        flips = np.nonzero(query.labels_for_batch(block) != true_label)[0]
        threshold = int(magnitudes[flips[0]]) if flips.size else None
        self._probe_thresholds[group] = (percent, threshold)
        return threshold

    # -- fan-out ----------------------------------------------------------------------

    def run_tasks(self, tasks: list) -> list:
        """Execute independent tasks, inline or over a process pool.

        Results come back in task order either way; parallel execution is
        purely a scheduling change (see the per-input seeding contract).
        """
        tasks = list(tasks)
        self.stats.tasks += len(tasks)
        if min(self.runtime.workers, len(tasks)) <= 1:
            return [task.run(self) for task in tasks]
        return self._run_pooled(tasks)

    def _run_pooled(self, tasks: list) -> list:
        for task in tasks:
            task.warm = self._warm_entries(task)
        self.stats.parallel_batches += 1
        try:
            outcomes = list(self._pool_handle().map(_run_task, tasks))
        finally:
            # The shipped warm dicts have done their job; leaving them
            # attached would retain potentially large entry maps and seed
            # stale warm state if a task object is ever resubmitted.
            for task in tasks:
                task.warm = {}
        values = []
        for outcome in outcomes:
            # adopt(), not put(): the worker already counted these stores
            # (merged below via CacheStats.merge), and exact containment
            # — not peek() — decides what lands, so a monotone-derivable
            # answer never stops the engine-proved entry reaching the
            # parent cache (and the disk store).
            self.cache.adopt(outcome.entries)
            self.stats.merge(outcome.stats)
            self.cache.stats.merge(outcome.cache_stats)
            self.engine_stats.merge_payload(outcome.engine_stats)
            values.append(outcome.value)
        return values

    def _warm_entries(self, task) -> dict:
        """Cache entries relevant to a task's inputs, shipped to the worker."""
        kinds = getattr(task, "warm_kinds", None)
        warm: dict = {}
        for index, x in task_inputs(task):
            warm.update(self.cache.entries_for_input(index, x, kinds=kinds))
        return warm

    def _pool_handle(self) -> ProcessPoolExecutor:
        """Lazily created, reused worker pool.

        The pool (and the network shipped to each worker through the
        initializer) is paid for once per runner, not once per batch —
        one ``Fannet.analyze`` runs its tolerance, extraction and probe
        batches on the same workers.
        """
        if self._pool is None:
            context = _WorkerContext(
                network=self.network,
                config=self.config,
                verifier=self._fixed_verifier,
                monotone=self.runtime.monotone,
                frontier=self.runtime.frontier,
                batch_size=self.runtime.batch_size,
                incremental=self.runtime.incremental,
                engine_stats=self.engine_stats.snapshot(),
                data_digest=self.data_digest,
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.runtime.workers,
                initializer=_init_worker,
                initargs=(context,),
            )
        return self._pool

    # -- persistence ----------------------------------------------------------------

    def flush(self) -> None:
        """Spill new cache entries and stats to the disk store (no-op without one).

        Writes when entries were added since the warm-start load (or the
        previous flush) — and also when only the engine-stats table moved
        (a warm replay that still ran incomplete stages accrues decide
        rates worth keeping).  A pure warm replay — no new entries, no
        new stats — rewrites nothing, so concurrent readers of the same
        cache directory are not churned for zero information.
        """
        if self.store is None or not self.cache.enabled:
            return
        with self._io_lock:
            stats = self.engine_stats.snapshot()
            if not self.cache.added and stats == self._persisted_stats:
                return
            saved = self.store.save(
                self.cache.context,
                self.cache.snapshot(),
                engine_stats=stats,
            )
            if saved is not None:
                self.cache.added.clear()
                self._persisted_stats = stats
                if self.runtime.max_cache_bytes is not None:
                    # Size-bound the directory, but never evict the context
                    # this run is writing — only colder neighbours age out.
                    from .lifecycle import prune_cache_dir

                    prune_cache_dir(
                        self.store.directory,
                        self.runtime.max_cache_bytes,
                        keep={saved},
                    )

    def stats_payload(self) -> dict:
        """JSON-ready snapshot of this runner's work and cache counters.

        Taken under the I/O lock so a reader sampling a shared runner
        (the serve plane's ``/v1/stats`` endpoint) sees one consistent
        picture rather than counters torn across a concurrent flush.
        """
        with self._io_lock:
            return {
                "context": self.cache.context,
                "runner": asdict(self.stats),
                "cache": asdict(self.cache.stats),
                "cache_entries": len(self.cache),
            }

    def close(self) -> None:
        """Flush the disk store and shut the worker pool down."""
        self.flush()
        with self._io_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __del__(self):  # best-effort cleanup; close() is the real API
        try:
            self.close()
        except Exception:
            pass


def task_inputs(task) -> list[tuple[int, tuple]]:
    """The ``(index, input values)`` pairs a task will query."""
    if hasattr(task, "inputs"):  # ProbeTask spans several inputs
        return [(index, x) for index, x, _ in task.inputs]
    return [(task.index, task.x)]


# -- worker-process side ----------------------------------------------------------


@dataclass
class _WorkerContext:
    """Everything a pooled worker needs, shipped once per process."""

    network: object
    config: VerifierConfig
    verifier: object = None
    monotone: bool = True
    frontier: bool = True
    batch_size: int = 4096
    incremental: bool = True
    engine_stats: dict = field(default_factory=dict)
    data_digest: str | None = None


@dataclass
class _TaskOutcome:
    """A task's value plus the cache entries and effort it produced."""

    value: object
    entries: dict
    stats: RunnerStats
    cache_stats: CacheStats = field(default_factory=CacheStats)
    engine_stats: dict = field(default_factory=dict)


_WORKER_CONTEXT: _WorkerContext | None = None


def _init_worker(context: _WorkerContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_task(task) -> _TaskOutcome:
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - pool misconfiguration
        raise RuntimeError("worker pool used before initialisation")
    runner = QueryRunner(
        context.network,
        context.config,
        RuntimeConfig(
            workers=1,
            cache=True,
            monotone=context.monotone,
            frontier=context.frontier,
            batch_size=context.batch_size,
            incremental=context.incremental,
        ),
        verifier=context.verifier,
        data_digest=context.data_digest,
    )
    # Scheduling prior: the parent's stage statistics at pool start.
    # Only the delta ships back, so nothing is double-counted on merge.
    runner.engine_stats.merge_payload(context.engine_stats)
    baseline = runner.engine_stats.snapshot()
    runner.cache.preload(task.warm)
    # The preload above is warm-dict *transport*, not logical cache
    # activity; reset the counters so the stats shipped back (and folded
    # into the parent by CacheStats.merge) describe only what the task
    # itself did — keeping parallel == serial accounting.
    runner.cache.stats = CacheStats()
    value = task.run(runner)
    return _TaskOutcome(
        value=value,
        entries=dict(runner.cache.added),
        stats=runner.stats,
        cache_stats=runner.cache.stats,
        engine_stats=runner.engine_stats.delta_since(baseline),
    )
