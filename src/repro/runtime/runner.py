"""Parallel, cache-aware execution of analysis queries.

:class:`QueryRunner` is the single chokepoint through which the FANNet
analyses (P2 tolerance search, P3 extraction, sensitivity probes) issue
verification work.  It provides:

- **Memoisation** — every query outcome lands in a :class:`QueryCache`
  (by default the monotonicity-aware :class:`MonotoneCache`) keyed by
  ``(kind, input index, input values, true label, noise percent,
  extra)`` under a (network, verifier-config) fingerprint context, so the
  tolerance bisection, the literal paper schedule, the Fig.-4 sweep,
  extraction and the probes stop re-solving identical queries — and,
  with the monotone layer, stop re-solving queries whose answer is
  *implied* by a verdict at a different percent.
- **Persistence** — with ``RuntimeConfig.cache_dir`` set, the cache
  warm-starts from a per-context :class:`~repro.runtime.store.CacheStore`
  file at construction and spills new entries back on :meth:`QueryRunner.flush`
  / :meth:`QueryRunner.close`, so repeated CLI runs over the same model
  and budget issue zero solver calls.
- **Fan-out** — independent per-input tasks (see
  :mod:`repro.runtime.tasks`) run over a ``ProcessPoolExecutor`` when
  ``RuntimeConfig.workers > 1``.  Warm cache entries for each task's
  input ship with the task; entries the worker computes ship back and
  merge into the parent cache, so a warm parallel run issues zero new
  solver calls.
- **Deterministic seeding** — the stochastic falsifier inside each
  worker derives its seed from ``(config.seed, input index)``
  (:func:`~repro.runtime.fingerprint.derive_seed`), so reports are
  bit-identical for any worker count and any scheduling order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from ..config import NoiseConfig, RuntimeConfig, VerifierConfig
from ..verify import NoiseVectorCollector, PortfolioVerifier, build_query
from ..verify.result import VerificationResult
from .cache import MISS, CacheStats, MonotoneCache, QueryCache, make_key
from .fingerprint import derive_seed, runtime_context
from .store import CacheStore


@dataclass
class RunnerStats:
    """Uncached work actually performed (the cache's savings baseline)."""

    verify_calls: int = 0
    extract_calls: int = 0
    probe_evals: int = 0
    tasks: int = 0
    parallel_batches: int = 0

    @property
    def solver_calls(self) -> int:
        """Verifier + collector invocations that reached an engine."""
        return self.verify_calls + self.extract_calls

    def merge(self, other: "RunnerStats") -> None:
        self.verify_calls += other.verify_calls
        self.extract_calls += other.extract_calls
        self.probe_evals += other.probe_evals

    def describe(self) -> str:
        return (
            f"runner: {self.verify_calls} verifier calls, "
            f"{self.extract_calls} extractions, {self.probe_evals} probe evals "
            f"over {self.tasks} tasks"
        )


class QueryRunner:
    """Submit analysis queries; get memoised, optionally pooled, results."""

    def __init__(
        self,
        network,
        config: VerifierConfig | None = None,
        runtime: RuntimeConfig | None = None,
        verifier=None,
        cache: QueryCache | None = None,
        store: CacheStore | None = None,
    ):
        self.network = network
        self.config = config or VerifierConfig()
        self.runtime = runtime or RuntimeConfig()
        self._fixed_verifier = verifier
        if cache is None:
            cache_cls = MonotoneCache if self.runtime.monotone else QueryCache
            cache = cache_cls(enabled=self.runtime.cache)
        self.cache = cache
        self.cache.bind(runtime_context(network, self.config))
        self.store = store
        if self.store is None and self.runtime.persistence_enabled:
            self.store = CacheStore(self.runtime.cache_dir)
        if self.store is not None and self.cache.enabled:
            warm = self.store.load(self.cache.context)
            if warm:
                self.cache.preload(warm)
        self.stats = RunnerStats()
        self._verifiers: dict[int, PortfolioVerifier] = {}
        self._pool: ProcessPoolExecutor | None = None

    # -- engine selection -------------------------------------------------------

    def _verifier_for(self, index: int):
        """Per-input verifier with a seed derived from (base seed, index)."""
        if self._fixed_verifier is not None:
            return self._fixed_verifier
        verifier = self._verifiers.get(index)
        if verifier is None:
            seeded = replace(self.config, seed=derive_seed(self.config.seed, index))
            verifier = PortfolioVerifier(seeded)
            self._verifiers[index] = verifier
        return verifier

    # -- cached building blocks -----------------------------------------------------

    def verify_at(
        self, x, true_label: int, percent: int, index: int = -1
    ) -> VerificationResult:
        """One robustness query at ``±percent``, memoised."""
        x = tuple(int(v) for v in x)
        key = make_key("verify", index, x, true_label, percent)
        cached = self.cache.get(key)
        if cached is not MISS:
            return cached
        query = build_query(
            self.network,
            np.asarray(x, dtype=np.int64),
            true_label,
            NoiseConfig(max_percent=percent),
        )
        result = self._verifier_for(index).verify(query)
        self.stats.verify_calls += 1
        self.cache.put(key, result)
        return result

    def collect_at(
        self,
        x,
        true_label: int,
        percent: int,
        limit: int | None,
        exhaustive_cutoff: int,
        index: int = -1,
    ) -> dict:
        """P3 collection at ``±percent``, memoised; reuses robust verdicts."""
        x = tuple(int(v) for v in x)
        key = make_key(
            "extract", index, x, true_label, percent, extra=(limit, exhaustive_cutoff)
        )
        cached = self.cache.get(key)
        if cached is not MISS:
            return cached
        verdict = self.cache.peek(make_key("verify", index, x, true_label, percent))
        if verdict is not MISS and verdict.is_robust:
            # The P2 pass already proved this box clean: the vector set is
            # empty, no collector run needed.
            outcome = {"vectors": [], "flipped_to": [], "exhausted": True}
            self.cache.put(key, outcome)
            return outcome
        query = build_query(
            self.network,
            np.asarray(x, dtype=np.int64),
            true_label,
            NoiseConfig(max_percent=percent),
        )
        effective_limit = limit
        if query.noise_space_size() > exhaustive_cutoff and effective_limit is None:
            effective_limit = 1000  # solver-driven extraction needs a bound
        collector = NoiseVectorCollector(self.config, exhaustive_cutoff=exhaustive_cutoff)
        collected = collector.collect(query, limit=effective_limit)
        flipped = [query.predict_single(vector) for vector in collected.vectors]
        outcome = {
            "vectors": list(collected.vectors),
            "flipped_to": flipped,
            "exhausted": collected.exhausted,
        }
        self.stats.extract_calls += 1
        self.cache.put(key, outcome)
        return outcome

    def flips_single_node(
        self,
        x,
        true_label: int,
        node: int,
        sign: int,
        percent: int,
        index: int = -1,
    ) -> bool:
        """Exact Eq.-3 check (noise on one node only), memoised."""
        x = tuple(int(v) for v in x)
        key = make_key("probe", index, x, true_label, percent, extra=(node, sign))
        cached = self.cache.get(key)
        if cached is not MISS:
            return cached
        flips = False
        vector = [0] * len(x)
        for magnitude in range(1, percent + 1):
            vector[node] = sign * magnitude
            if self.network.predict_noisy(x, vector) != true_label:
                flips = True
                break
        self.stats.probe_evals += 1
        self.cache.put(key, flips)
        return flips

    # -- fan-out ----------------------------------------------------------------------

    def run_tasks(self, tasks: list) -> list:
        """Execute independent tasks, inline or over a process pool.

        Results come back in task order either way; parallel execution is
        purely a scheduling change (see the per-input seeding contract).
        """
        tasks = list(tasks)
        self.stats.tasks += len(tasks)
        if min(self.runtime.workers, len(tasks)) <= 1:
            return [task.run(self) for task in tasks]
        return self._run_pooled(tasks)

    def _run_pooled(self, tasks: list) -> list:
        for task in tasks:
            task.warm = self._warm_entries(task)
        self.stats.parallel_batches += 1
        outcomes = list(self._pool_handle().map(_run_task, tasks))
        values = []
        for outcome in outcomes:
            for key, value in outcome.entries.items():
                # Exact containment, not peek(): a monotone-derivable
                # answer must not stop the engine-proved entry landing
                # in the parent cache (and the disk store).
                if key not in self.cache:
                    self.cache.put(key, value)
            self.stats.merge(outcome.stats)
            self.cache.stats.merge(outcome.cache_stats)
            values.append(outcome.value)
        return values

    def _warm_entries(self, task) -> dict:
        """Cache entries relevant to a task's inputs, shipped to the worker."""
        kinds = getattr(task, "warm_kinds", None)
        warm: dict = {}
        for index, x in task_inputs(task):
            warm.update(self.cache.entries_for_input(index, x, kinds=kinds))
        return warm

    def _pool_handle(self) -> ProcessPoolExecutor:
        """Lazily created, reused worker pool.

        The pool (and the network shipped to each worker through the
        initializer) is paid for once per runner, not once per batch —
        one ``Fannet.analyze`` runs its tolerance, extraction and probe
        batches on the same workers.
        """
        if self._pool is None:
            context = _WorkerContext(
                network=self.network,
                config=self.config,
                verifier=self._fixed_verifier,
                monotone=self.runtime.monotone,
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.runtime.workers,
                initializer=_init_worker,
                initargs=(context,),
            )
        return self._pool

    # -- persistence ----------------------------------------------------------------

    def flush(self) -> None:
        """Spill new cache entries to the disk store (no-op without one).

        Only called with entries actually added since the warm-start
        load (or the previous flush): a pure warm replay rewrites
        nothing, so concurrent readers of the same cache directory are
        not churned for zero information.
        """
        if self.store is None or not self.cache.enabled:
            return
        if not self.cache.added:
            return
        if self.store.save(self.cache.context, self.cache.snapshot()) is not None:
            self.cache.added.clear()

    def close(self) -> None:
        """Flush the disk store and shut the worker pool down."""
        self.flush()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self):  # best-effort cleanup; close() is the real API
        try:
            self.close()
        except Exception:
            pass


def task_inputs(task) -> list[tuple[int, tuple]]:
    """The ``(index, input values)`` pairs a task will query."""
    if hasattr(task, "inputs"):  # ProbeTask spans several inputs
        return [(index, x) for index, x, _ in task.inputs]
    return [(task.index, task.x)]


# -- worker-process side ----------------------------------------------------------


@dataclass
class _WorkerContext:
    """Everything a pooled worker needs, shipped once per process."""

    network: object
    config: VerifierConfig
    verifier: object = None
    monotone: bool = True


@dataclass
class _TaskOutcome:
    """A task's value plus the cache entries and effort it produced."""

    value: object
    entries: dict
    stats: RunnerStats
    cache_stats: CacheStats = field(default_factory=CacheStats)


_WORKER_CONTEXT: _WorkerContext | None = None


def _init_worker(context: _WorkerContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_task(task) -> _TaskOutcome:
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - pool misconfiguration
        raise RuntimeError("worker pool used before initialisation")
    runner = QueryRunner(
        context.network,
        context.config,
        RuntimeConfig(workers=1, cache=True, monotone=context.monotone),
        verifier=context.verifier,
    )
    runner.cache.preload(task.warm)
    value = task.run(runner)
    return _TaskOutcome(
        value=value,
        entries=dict(runner.cache.added),
        stats=runner.stats,
        cache_stats=runner.cache.stats,
    )
