"""Disk persistence for the query cache: warm-start across CLI runs.

A :class:`CacheStore` spills a cache's exact entries to one file per
*context* (the network + verifier-config fingerprint pair from
:mod:`repro.runtime.fingerprint`), so a second run over the same model
and budget starts with every previously-proved verdict already in
memory — zero solver calls for a repeated workload.

File format (version :data:`STORE_VERSION`)::

    MAGIC                       fixed byte string, format marker
    header length               8-byte big-endian unsigned int
    header                      pickle: {"version", "context", "checksum",
                                "entries", "engine_stats"?}
    payload                     pickle of the {key: value} entry dict

The header's ``checksum`` is the SHA-256 of the payload bytes and
``entries`` its entry count, so truncation and bit-rot are detected
before any payload byte is unpickled into the cache.

The optional ``engine_stats`` header field carries the
:class:`~repro.verify.stats.EngineStats` snapshot (plain containers
only) so a warm-started run schedules its portfolio stages from
day-one statistics.  Files without the field — every pre-scheduler
file — load exactly as before; the stats are *advisory* (they steer
stage order, never verdicts), so they ride outside the payload
checksum and a malformed table simply degrades to canonical order.

Trust policy — a cache file is *evidence, never authority*:

- wrong magic, wrong version, context mismatch, checksum mismatch,
  truncation, or any unpickling error ⇒ the file is ignored with a
  :class:`CacheStoreWarning` and the run proceeds cold.  A bad cache
  file can cost time; it can never change a verdict.
- deserialisation is *restricted*: the unpickler resolves only the
  result types a cache entry legitimately contains (see
  :data:`_ALLOWED_GLOBALS`) plus pickle's built-in containers and
  scalars.  A crafted file referencing any other callable — the classic
  pickle code-execution vector — is rejected before anything runs, and
  degrades to the same warned cold start.
- writes are atomic (temp file + ``os.replace``), so a reader racing a
  writer sees either the old file or the new one, never a torn mix;
  concurrent runs degrade to last-writer-wins.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import warnings
from pathlib import Path
from typing import Any

from ..ioutils import atomic_write_bytes
from .cache import QueryKey

#: Leading bytes of every cache file; anything else is not ours.
MAGIC = b"FANNET-QCACHE\n"

#: Bump whenever the entry layout changes — or when cached payloads
#: become version-dependent in any observable way; older files are
#: discarded.  Version 2: the random falsifier's sampling stream changed
#: (one broadcast draw per block instead of per-dimension draws), so
#: witnesses cached by version-1 code would make a warm replay diverge
#: from a cold run of the current code.  Version 3: the extraction
#: collector's seed derivation moved from the run-wide base seed to the
#: per-input ``(seed, index)`` contract, so solver-driven "extract"
#: entries cached by version-2 code would serve old-stream vector sets
#: that a cold run of the current code cannot reproduce.
STORE_VERSION = 3

_LEN_BYTES = 8


class CacheStoreWarning(UserWarning):
    """A cache file was unusable and has been ignored (cold start)."""


#: The only non-builtin globals a legitimate cache entry pickles: the
#: verdict container and its status enum.  Everything else a snapshot
#: holds (keys, witnesses, extraction dicts, probe booleans) is plain
#: containers and scalars, which pickle reconstructs without imports.
_ALLOWED_GLOBALS = frozenset(
    {
        ("repro.verify.result", "VerificationResult"),
        ("repro.verify.result", "VerificationStatus"),
    }
)


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses every global outside :data:`_ALLOWED_GLOBALS`."""

    def find_class(self, module, name):
        if (module, name) in _ALLOWED_GLOBALS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"cache file references disallowed type {module}.{name}"
        )


def _restricted_loads(blob: bytes) -> Any:
    return _RestrictedUnpickler(io.BytesIO(blob)).load()


def _valid_key(key: Any) -> bool:
    """Structural check against the :func:`repro.runtime.cache.make_key`
    layout: ``(kind, index, input values, true label, percent, extra)``."""
    return (
        isinstance(key, tuple)
        and len(key) == 6
        and isinstance(key[0], str)
        and isinstance(key[1], int)
        and not isinstance(key[1], bool)
        and isinstance(key[2], tuple)
        and isinstance(key[3], int)
        and not isinstance(key[3], bool)
        and isinstance(key[4], int)
        and not isinstance(key[4], bool)
    )


def _warn(message: str) -> None:
    warnings.warn(message, CacheStoreWarning, stacklevel=3)


def parse_store_blob(raw: bytes) -> tuple[dict | None, bytes | None, str | None]:
    """Split a raw cache-file blob into ``(header, payload, error)``.

    The one place the binary layout (magic, length-prefixed restricted-
    pickle header, payload) is parsed — :meth:`CacheStore._decode` and
    the lifecycle tooling (:mod:`repro.runtime.lifecycle`) both build on
    it.  Verifies structure and the header's payload checksum; does NOT
    unpickle the payload (the caller decides whether to trust it).  On
    any problem returns ``(None, None, reason)``.
    """
    if not raw.startswith(MAGIC):
        return None, None, "no FANNet cache header"
    body = raw[len(MAGIC):]
    if len(body) < _LEN_BYTES:
        return None, None, "truncated before the header length"
    header_len = int.from_bytes(body[:_LEN_BYTES], "big")
    header_blob = body[_LEN_BYTES:_LEN_BYTES + header_len]
    payload = body[_LEN_BYTES + header_len:]
    if len(header_blob) < header_len:
        return None, None, "truncated inside the header"
    try:
        header = _restricted_loads(header_blob)
    except Exception as err:
        return None, None, f"corrupt header ({err!r})"
    if not isinstance(header, dict):
        return None, None, "malformed header"
    if hashlib.sha256(payload).hexdigest() != header.get("checksum"):
        return None, None, "payload failed its checksum (truncated?)"
    return header, payload, None


class CacheStore:
    """Per-context cache files under one directory.

    ``load``/``save`` never raise on bad files or I/O failures — the
    cache is an optimisation, so every failure path degrades to "no
    cache" with a :class:`CacheStoreWarning`.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.loaded_entries = 0  # from the most recent successful load
        self.saved_entries = 0  # from the most recent successful save
        #: Engine-stats payload from the most recent successful load
        #: (None when the file predates the scheduler or had no stats).
        self.loaded_stats: dict | None = None

    def path_for(self, context: str) -> Path:
        """The cache file owning ``context`` (fingerprints are hex + ':')."""
        return self.directory / f"{context.replace(':', '-')}.qcache"

    # -- read side ------------------------------------------------------------------

    def load(self, context: str) -> dict[QueryKey, Any]:
        """Entries previously saved for ``context``; ``{}`` when unusable.

        A usable file's engine-stats header (if any) lands in
        :attr:`loaded_stats` as a side effect.
        """
        self.loaded_entries = 0
        self.loaded_stats = None
        path = self.path_for(context)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return {}
        except OSError as err:
            _warn(f"cache file {path} unreadable ({err}); starting cold")
            return {}
        entries = self._decode(path, raw, context)
        self.loaded_entries = len(entries)
        return entries

    def _decode(self, path: Path, raw: bytes, context: str) -> dict[QueryKey, Any]:
        header, payload, error = parse_store_blob(raw)
        if header is None:
            _warn(f"cache file {path}: {error}; starting cold")
            return {}
        if header.get("version") != STORE_VERSION:
            _warn(
                f"cache file {path} is store version {header.get('version')!r}, "
                f"expected {STORE_VERSION}; starting cold"
            )
            return {}
        if header.get("context") != context:
            _warn(
                f"cache file {path} was written for context "
                f"{header.get('context')!r}, not {context!r}; starting cold"
            )
            return {}
        try:
            entries = _restricted_loads(payload)
        except Exception as err:
            _warn(f"cache file {path} payload is corrupt ({err!r}); starting cold")
            return {}
        if not isinstance(entries, dict) or len(entries) != header.get("entries"):
            _warn(f"cache file {path} payload does not match its header; starting cold")
            return {}
        if not all(_valid_key(key) for key in entries):
            # Malformed keys would crash QueryCache.preload's indexing;
            # a checksum-valid file is still not trusted on shape.
            _warn(f"cache file {path} contains malformed query keys; starting cold")
            return {}
        stats = header.get("engine_stats")
        self.loaded_stats = stats if isinstance(stats, dict) else None
        return entries

    # -- write side ------------------------------------------------------------------

    def save(
        self,
        context: str,
        entries: dict[QueryKey, Any],
        engine_stats: dict | None = None,
    ) -> Path | None:
        """Atomically (re)write the context's file; None if the write failed.

        ``engine_stats`` (an :meth:`EngineStats.snapshot` payload of plain
        containers) rides in the header when provided.
        """
        path = self.path_for(context)
        try:
            payload = pickle.dumps(dict(entries), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:
            # An unpicklable payload (e.g. an engine stashing a live handle
            # in a result) must not crash a run at flush time.
            _warn(f"could not serialise cache entries for {path} ({err!r}); continuing without")
            return None
        header_fields = {
            "version": STORE_VERSION,
            "context": context,
            "checksum": hashlib.sha256(payload).hexdigest(),
            "entries": len(entries),
        }
        if engine_stats:
            header_fields["engine_stats"] = engine_stats
        header = pickle.dumps(header_fields, protocol=pickle.HIGHEST_PROTOCOL)
        blob = MAGIC + len(header).to_bytes(_LEN_BYTES, "big") + header + payload
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, blob)
        except OSError as err:
            _warn(f"could not persist cache to {path} ({err}); continuing without")
            return None
        self.saved_entries = len(entries)
        return path
