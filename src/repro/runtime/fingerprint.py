"""Stable fingerprints for the query cache and per-input seed derivation.

A cached :class:`~repro.verify.result.VerificationResult` is only valid
while both the quantised network and the verifier configuration that
produced it are unchanged.  Both are fingerprinted here with SHA-256 over
a canonical text rendering (exact rationals for the network, sorted
``repr`` items for the config), so the cache can detect — and drop —
entries computed under a different model or budget.

``derive_seed`` is the one place the runtime turns the run-wide base seed
into a per-input seed.  Deriving from ``(base seed, input index)`` makes
every stochastic engine (the :class:`~repro.verify.falsify.RandomFalsifier`)
reproducible regardless of which worker process, and in which order, ends
up verifying the input.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict

import numpy as np

from ..config import VerifierConfig
from ..nn.quantize import QuantizedNetwork

_MASK32 = 0xFFFFFFFF


def network_fingerprint(network: QuantizedNetwork) -> str:
    """Digest of the exact-rational parameters (and layer shapes/kinds)."""
    digest = hashlib.sha256()
    for layer in network.layers:
        digest.update(b"layer:relu=" + (b"1" if layer.relu else b"0"))
        for row in layer.weights:
            for value in row:
                digest.update(f"{value.numerator}/{value.denominator},".encode())
        digest.update(b"|bias:")
        for value in layer.bias:
            digest.update(f"{value.numerator}/{value.denominator},".encode())
    return digest.hexdigest()[:20]


def verifier_fingerprint(config: VerifierConfig) -> str:
    """Digest of every :class:`VerifierConfig` field, including the seed."""
    digest = hashlib.sha256()
    for key in sorted(asdict(config)):
        digest.update(f"{key}={getattr(config, key)!r};".encode())
    return digest.hexdigest()[:20]


def runtime_context(
    network: QuantizedNetwork,
    config: VerifierConfig,
    data_digest: str | None = None,
) -> str:
    """Combined cache context: network fingerprint + verifier fingerprint.

    ``data_digest`` (the content digest of an external dataset source,
    see :mod:`repro.data.sources`) folds a third component in: jobs over
    different source files — or different parses of the same file —
    must never share a persisted cache context, even when network and
    budget coincide, so a changed file invalidates the store exactly
    like a changed network would.
    """
    base = f"{network_fingerprint(network)}:{verifier_fingerprint(config)}"
    if data_digest is None:
        return base
    return f"{base}:{data_digest[:20]}"


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-input seed from ``(base_seed, input index)``.

    Routed through :class:`numpy.random.SeedSequence` so nearby indices do
    not produce correlated falsifier sample streams.  ``index`` may be -1
    (the single-input convenience APIs); it is offset before masking so
    every index maps to a distinct non-negative entropy word.
    """
    entropy = (int(base_seed) & _MASK32, (int(index) + 1) & _MASK32)
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])
