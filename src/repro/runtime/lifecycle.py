"""Cache-store lifecycle tooling: list, inspect and prune ``--cache-dir``s.

A long-lived cache directory accretes one ``*.qcache`` file per
(network, verifier-config[, dataset]) fingerprint context and — within a
context — entries never expire, so the directory grows without bound as
models and budgets churn.  This module is the maintenance plane over
those directories, shared by the ``fannet cache`` CLI subcommands and by
:meth:`repro.runtime.runner.QueryRunner.flush` (which applies
``RuntimeConfig.max_cache_bytes`` after every successful save):

- :func:`scan_cache_dir` — one :class:`StoreFileInfo` per ``*.qcache``
  file, validated down to the payload checksum without unpickling any
  payload byte;
- :func:`inspect_cache_file` — the same validation for a single file
  (loud: a non-store file raises :class:`~repro.errors.DataError`);
- :func:`prune_cache_dir` — size-bounded LRU-by-mtime eviction: oldest
  store files go first until the directory fits the byte budget.

Safety rules, in order of precedence:

- only ``*.qcache`` files are ever considered; nothing else in the
  directory is read or removed;
- a ``*.qcache`` file that does not carry the FANNet store magic is
  *reported* but never deleted — pruning reclaims space from files this
  library wrote (intact or truncated), it does not decide what foreign
  junk to destroy;
- paths in ``keep`` (the context a live run just flushed) are never
  evicted, whatever the budget;
- eviction is oldest-``mtime``-first, so the most recently written
  contexts — the ones a fleet is actively warming — survive longest.

Pruning runs after every flush of a budgeted runner, so its scan is
deliberately cheap: one ``stat`` plus a magic-bytes read per file (the
budget needs sizes and provenance, not payload integrity).  The full
checksum-deep validation belongs to :func:`scan_cache_dir` /
:func:`inspect_cache_file`, which back the human-facing ``fannet cache
list|inspect``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import DataError
from .store import MAGIC, STORE_VERSION, parse_store_blob

#: File-name pattern of cache-store files under a ``--cache-dir``.
STORE_GLOB = "*.qcache"


@dataclass(frozen=True)
class StoreFileInfo:
    """Validated metadata of one ``*.qcache`` file (payload never unpickled)."""

    path: Path
    size: int
    mtime_ns: int
    ok: bool
    error: str | None = None  # why validation failed (ok=False only)
    context: str | None = None
    version: int | None = None
    entries: int | None = None
    has_engine_stats: bool = False

    @property
    def stale_version(self) -> bool:
        """Readable file written by another store version (dead weight)."""
        return self.ok and self.version != STORE_VERSION


def _info_for(path: Path) -> StoreFileInfo:
    try:
        stat = path.stat()
        raw = path.read_bytes()
    except OSError as err:
        return StoreFileInfo(
            path=path, size=0, mtime_ns=0, ok=False, error=f"unreadable: {err}"
        )
    header, _, error = parse_store_blob(raw)
    if header is None:
        return StoreFileInfo(
            path=path,
            size=stat.st_size,
            mtime_ns=stat.st_mtime_ns,
            ok=False,
            error=error,
        )
    entries = header.get("entries")
    version = header.get("version")
    return StoreFileInfo(
        path=path,
        size=stat.st_size,
        mtime_ns=stat.st_mtime_ns,
        ok=True,
        context=header.get("context"),
        version=(
            version
            if isinstance(version, int) and not isinstance(version, bool)
            else None
        ),
        entries=(
            entries
            if isinstance(entries, int) and not isinstance(entries, bool)
            else None
        ),
        has_engine_stats=isinstance(header.get("engine_stats"), dict),
    )


def _light_info(path: Path) -> StoreFileInfo:
    """Size/mtime plus a magic-bytes provenance check — no payload read.

    ``ok`` here means "written by this library" (intact or not), which
    is all eviction safety needs; header fields stay unset.
    """
    try:
        stat = path.stat()
        with open(path, "rb") as handle:
            lead = handle.read(len(MAGIC))
    except OSError as err:
        return StoreFileInfo(
            path=path, size=0, mtime_ns=0, ok=False, error=f"unreadable: {err}"
        )
    if lead != MAGIC:
        return StoreFileInfo(
            path=path,
            size=stat.st_size,
            mtime_ns=stat.st_mtime_ns,
            ok=False,
            error="no FANNet cache header",
        )
    return StoreFileInfo(path=path, size=stat.st_size, mtime_ns=stat.st_mtime_ns, ok=True)


def _checked_dir(directory: str | os.PathLike) -> Path:
    directory = Path(directory)
    if not directory.is_dir():
        raise DataError(f"cache directory {directory} does not exist")
    return directory


def scan_cache_dir(directory: str | os.PathLike) -> list[StoreFileInfo]:
    """Every ``*.qcache`` file under ``directory``, oldest mtime first.

    Full validation down to the payload checksum (the listing's "state"
    column).  Raises :class:`DataError` when the directory itself is
    absent (a typoed path must not read as "empty, nothing to do").
    """
    directory = _checked_dir(directory)
    infos = [_info_for(path) for path in sorted(directory.glob(STORE_GLOB))]
    return sorted(infos, key=lambda info: (info.mtime_ns, info.path.name))


def inspect_cache_file(path: str | os.PathLike) -> StoreFileInfo:
    """Validate one cache file, loudly.

    Unlike the scan (which reports broken files inline), inspection of a
    path that is not a readable, checksum-valid store file raises
    :class:`DataError` naming the reason — the CLI turns that into a
    non-zero exit.
    """
    path = Path(path)
    if not path.is_file():
        raise DataError(f"{path} is not a file")
    info = _info_for(path)
    if not info.ok:
        raise DataError(f"{path} is not a valid cache store file: {info.error}")
    return info


@dataclass
class PruneReport:
    """What a prune pass did (or, with ``dry_run``, would have done).

    Accounting invariants, enforced under every outcome — dry runs,
    pinned files and unlink failures included:

    - every scanned store file lands in exactly one of ``evicted`` or
      ``kept``, so ``evicted_bytes + remaining_bytes`` equals the bytes
      scanned;
    - ``evicted`` contains only files actually removed (or, with
      ``dry_run``, the exact set a real run would remove) — a file whose
      unlink failed stays in ``kept`` with its bytes in
      ``remaining_bytes``, and its failure never widens the eviction set
      to newer files (the plan is fixed before the first unlink).
    """

    budget: int
    dry_run: bool
    evicted: list[StoreFileInfo] = field(default_factory=list)
    kept: list[StoreFileInfo] = field(default_factory=list)
    skipped: list[StoreFileInfo] = field(default_factory=list)  # invalid, untouched
    errors: list[str] = field(default_factory=list)  # unlink failures

    @property
    def evicted_bytes(self) -> int:
        """Bytes freed (``dry_run``: bytes a real run would free)."""
        return sum(info.size for info in self.evicted)

    @property
    def remaining_bytes(self) -> int:
        """Store bytes still on disk, unlink failures included."""
        return sum(info.size for info in self.kept)


def prune_cache_dir(
    directory: str | os.PathLike,
    max_bytes: int,
    keep: set[Path] | frozenset[Path] = frozenset(),
    dry_run: bool = False,
) -> PruneReport:
    """Evict oldest-mtime store files until the directory fits ``max_bytes``.

    Only ``*.qcache`` files carrying the FANNet store magic count toward
    the budget and only they are eviction candidates (truncated stores
    included — they are this library's dead weight); foreign files land
    in ``report.skipped`` untouched.  ``keep`` paths are pinned (the
    flushing runner pins the file it just wrote).  With ``dry_run`` the
    report is computed but nothing is unlinked.
    """
    if max_bytes < 0:
        raise DataError("max cache bytes must be >= 0")
    keep = {Path(p).resolve() for p in keep}
    report = PruneReport(budget=int(max_bytes), dry_run=dry_run)
    infos = sorted(
        (_light_info(path) for path in _checked_dir(directory).glob(STORE_GLOB)),
        key=lambda info: (info.mtime_ns, info.path.name),
    )
    report.skipped = [info for info in infos if not info.ok]
    stores = [info for info in infos if info.ok]  # oldest mtime first
    # Plan first, then execute: the eviction set is fixed from sizes
    # alone, so a dry run reports exactly what a real run would remove,
    # and an unlink failure mid-run never cascades into evicting newer
    # files to compensate for bytes that cannot be freed anyway.
    total = sum(info.size for info in stores)
    plan = []
    for info in stores:
        if total <= max_bytes or info.path.resolve() in keep:
            report.kept.append(info)
            continue
        total -= info.size
        plan.append(info)
    for info in plan:
        if not dry_run:
            try:
                info.path.unlink()
            except OSError as err:
                report.errors.append(f"could not remove {info.path}: {err}")
                report.kept.append(info)
                continue
        report.evicted.append(info)
    return report
