"""FANNet facade: the full Fig.-2 pipeline in one object.

``Fannet`` takes a trained float network plus datasets, quantises it,
validates the translation (P1), and exposes the noise-tolerance (P2),
noise-vector-extraction (P3), bias, sensitivity and boundary analyses.
``run_case_study`` reproduces the paper's §V end to end from nothing but
a configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import FannetConfig, NoiseConfig
from ..data import LeukemiaCaseStudy, load_leukemia_case_study
from ..data.dataset import Dataset
from ..errors import VerificationError
from ..nn import Network, accuracy, quantize_network, train_paper_network
from ..nn.quantize import QuantizedNetwork
from ..runtime import QueryRunner
from ..verify import build_query
from .bias import BiasReport, TrainingBiasAnalysis
from .boundary import BoundaryEstimation, BoundaryReport
from .noise_vectors import ExtractionReport, NoiseVectorExtraction
from .sensitivity import InputSensitivityAnalysis, SensitivityReport
from .tolerance import NoiseToleranceAnalysis, ToleranceReport
from .translate import network_noise_module, validate_translation


@dataclass
class FannetReport:
    """Everything the paper's evaluation section reports, in one place."""

    train_accuracy: float = 0.0
    test_accuracy: float = 0.0
    tolerance: ToleranceReport | None = None
    extraction: ExtractionReport | None = None
    bias: BiasReport | None = None
    sensitivity: SensitivityReport | None = None
    boundary: BoundaryReport | None = None
    extraction_percent: int = 0
    config: FannetConfig = field(default_factory=FannetConfig)

    def summary(self) -> str:
        lines = ["=== FANNet analysis report ==="]
        lines.append(
            f"accuracy: train {self.train_accuracy:.2%}, test {self.test_accuracy:.2%}"
        )
        if self.tolerance is not None:
            lines.append(
                f"noise tolerance: ±{self.tolerance.tolerance}% "
                f"({self.tolerance.correctly_classified} correctly-classified inputs)"
            )
        if self.bias is not None:
            lines.append(self.bias.describe())
        if self.sensitivity is not None:
            lines.append(self.sensitivity.describe())
        if self.boundary is not None:
            lines.append(self.boundary.describe())
        return "\n".join(lines)


class Fannet:
    """The FANNet methodology bound to one trained network."""

    def __init__(
        self,
        network: Network,
        train_set: Dataset,
        test_set: Dataset,
        config: FannetConfig | None = None,
    ):
        self.config = config or FannetConfig()
        self.network = network
        self.train_set = train_set
        self.test_set = test_set
        self.quantized: QuantizedNetwork = quantize_network(
            network, weight_scale=self.config.weight_scale
        )
        # One runner, shared by every analysis: P2, P3 and the probes all
        # hit the same query cache and the same worker-pool policy.
        self.runner = QueryRunner(
            self.quantized, self.config.verifier, self.config.runtime
        )
        self._tolerance_analysis = NoiseToleranceAnalysis(
            self.quantized, self.config.verifier, runner=self.runner
        )
        self._extraction = NoiseVectorExtraction(
            self.quantized, self.config.verifier, runner=self.runner
        )
        self._bias_analysis = TrainingBiasAnalysis(train_set)
        self._sensitivity_analysis = InputSensitivityAnalysis(
            self.quantized, self.config.verifier, runner=self.runner
        )
        self._boundary_estimation = BoundaryEstimation()

    def close(self) -> None:
        """Flush the runner's disk cache store and stop its worker pool.

        Safe to call repeatedly; a ``Fannet`` remains usable afterwards
        (the pool and the store flush are both lazily re-established).
        """
        self.runner.close()

    def engine_utilisation(self) -> str:
        """Per-engine decide-rate / wall-time table for this run.

        Aggregated across every analysis that ran on the shared runner —
        including worker processes and the frontier bulk passes — and
        the same statistics the portfolio scheduler orders stages by.
        """
        return self.runner.engine_stats.describe_table()

    # -- behaviour extraction / P1 --------------------------------------------

    def validate(self) -> bool:
        """P1: float net, quantised net and SMV model agree on the data.

        Raises :class:`VerificationError` on the first disagreement.
        """
        for dataset in (self.train_set, self.test_set):
            for x, label in zip(dataset.features, dataset.labels):
                float_label = int(self.network.predict(np.asarray(x, dtype=float)))
                exact_label = self.quantized.predict(x)
                if float_label != exact_label:
                    raise VerificationError(
                        "quantisation changed a prediction; increase weight_scale"
                    )
        # SMV translation check on one representative input.
        x = np.asarray(self.test_set.features[0])
        label = int(self.test_set.labels[0])
        module, query = network_noise_module(
            self.quantized,
            x,
            label,
            NoiseConfig(max_percent=1),
            weight_scale=self.config.weight_scale,
        )
        probe_vectors = [
            tuple([1] * query.num_inputs),
            tuple([-1] * query.num_inputs),
        ]
        validate_translation(module, query, probe_vectors)
        return True

    # -- the analyses -------------------------------------------------------------

    def noise_tolerance(self, search_ceiling: int = 60) -> ToleranceReport:
        """P2 loop over the test set (§V-C.1)."""
        self._tolerance_analysis.search_ceiling = search_ceiling
        return self._tolerance_analysis.analyze(self.test_set)

    def extract_noise_vectors(self, percent: int) -> ExtractionReport:
        """P3 loop at a fixed range (§IV-C)."""
        return self._extraction.extract(self.test_set, percent)

    def training_bias(self, extraction: ExtractionReport) -> BiasReport:
        """Dataset-vs-counterexample bias census (§V-C.3)."""
        return self._bias_analysis.analyze(extraction)

    def input_sensitivity(
        self, extraction: ExtractionReport, probe: bool = False
    ) -> SensitivityReport:
        """Node census, optionally with Eq.-3 single-node probes (§V-C.4)."""
        return self._sensitivity_analysis.analyze(
            extraction, dataset=self.test_set, probe=probe
        )

    def boundary(self, tolerance: ToleranceReport) -> BoundaryReport:
        """Boundary-proximity picture (§V-C.2)."""
        return self._boundary_estimation.analyze(tolerance)

    # -- one-call pipeline -----------------------------------------------------------

    def analyze(
        self,
        search_ceiling: int = 60,
        extraction_percent: int | None = None,
        probe_sensitivity: bool = False,
    ) -> FannetReport:
        """Run the complete FANNet pipeline.

        ``extraction_percent`` defaults to a few points above the found
        tolerance — the first range with a non-trivial counterexample
        census, mirroring how the paper picks its analysis ranges.
        """
        self.validate()
        report = FannetReport(config=self.config)
        report.train_accuracy = accuracy(
            self.network.predict(np.asarray(self.train_set.features, dtype=float)),
            self.train_set.labels,
        )
        report.test_accuracy = accuracy(
            self.network.predict(np.asarray(self.test_set.features, dtype=float)),
            self.test_set.labels,
        )
        report.tolerance = self.noise_tolerance(search_ceiling)
        if extraction_percent is None:
            base = report.tolerance.tolerance or 0
            extraction_percent = min(base + 2, search_ceiling)
        report.extraction_percent = extraction_percent
        report.extraction = self.extract_noise_vectors(extraction_percent)
        report.bias = self.training_bias(report.extraction)
        report.sensitivity = self.input_sensitivity(
            report.extraction, probe=probe_sensitivity
        )
        report.boundary = self.boundary(report.tolerance)
        self.runner.flush()  # spill new verdicts to the disk store, if any
        return report


def run_case_study(
    config: FannetConfig | None = None,
    case_study: LeukemiaCaseStudy | None = None,
    search_ceiling: int = 60,
    extraction_percent: int | None = None,
    probe_sensitivity: bool = False,
) -> tuple[Fannet, FannetReport]:
    """Reproduce the paper's §V from scratch: data → training → analysis."""
    config = config or FannetConfig()
    case_study = case_study or load_leukemia_case_study(config)
    result = train_paper_network(
        case_study.train.features, case_study.train.labels, config.train
    )
    fannet = Fannet(
        result.network, case_study.train, case_study.test, config
    )
    report = fannet.analyze(
        search_ceiling=search_ceiling,
        extraction_percent=extraction_percent,
        probe_sensitivity=probe_sensitivity,
    )
    return fannet, report
