"""Training-bias analysis (paper §V-C.3).

The paper's observation: with ~70 % of training samples in class L1, all
noise-induced misclassifications flow L0 → L1 — the network errs toward
the majority class.  This module measures both sides:

- the *dataset* census (class shares of the training set), and
- the *counterexample* census (direction of every extracted flip),

and reports whether they corroborate (Eq. 4 of the paper instantiated
over the whole extraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.dataset import CLASS_NAMES, Dataset
from .noise_vectors import ExtractionReport


@dataclass
class BiasReport:
    """Combined dataset + counterexample bias evidence."""

    training_class_counts: dict[int, int] = field(default_factory=dict)
    training_majority_label: int = -1
    training_majority_share: float = 0.0
    #: (true_label, wrong_label) → number of flips observed.
    flip_matrix: dict[tuple[int, int], int] = field(default_factory=dict)
    noise_percent: int = 0

    @classmethod
    def from_census(
        cls,
        training_class_counts: dict[int, int],
        flip_matrix: dict[tuple[int, int], int],
        noise_percent: int = 0,
    ) -> "BiasReport":
        """The report implied by a dataset census and a flip census.

        The single place the majority class is chosen (ties break to the
        smallest label, deterministically) — both the in-process
        :class:`TrainingBiasAnalysis` and the batch service's merge fold
        build their reports here, so the paper's Eq.-4 criterion lives
        exactly once.
        """
        majority = max(sorted(training_class_counts), key=training_class_counts.get)
        return cls(
            training_class_counts=dict(training_class_counts),
            training_majority_label=majority,
            training_majority_share=(
                training_class_counts[majority] / sum(training_class_counts.values())
            ),
            flip_matrix=dict(flip_matrix),
            noise_percent=noise_percent,
        )

    @property
    def flips_toward_majority(self) -> int:
        return sum(
            count
            for (_, wrong), count in self.flip_matrix.items()
            if wrong == self.training_majority_label
        )

    @property
    def flips_away_from_majority(self) -> int:
        return sum(
            count
            for (_, wrong), count in self.flip_matrix.items()
            if wrong != self.training_majority_label
        )

    @property
    def total_flips(self) -> int:
        return sum(self.flip_matrix.values())

    @property
    def majority_flip_share(self) -> float:
        """Fraction of flips landing on the majority class (paper: 1.0)."""
        total = self.total_flips
        return self.flips_toward_majority / total if total else 0.0

    @property
    def bias_confirmed(self) -> bool:
        """True when flips skew toward the training majority class."""
        return self.total_flips > 0 and self.majority_flip_share > 0.5

    def describe(self) -> str:
        lines = ["Training-set census:"]
        total = sum(self.training_class_counts.values())
        for label, count in sorted(self.training_class_counts.items()):
            name = CLASS_NAMES.get(label, str(label))
            lines.append(f"  {name}: {count}/{total} ({count / total:.1%})")
        lines.append(f"Counterexample flips at ±{self.noise_percent}%:")
        if not self.flip_matrix:
            lines.append("  none found")
        for (true, wrong), count in sorted(self.flip_matrix.items()):
            lines.append(
                f"  {CLASS_NAMES.get(true, true)} -> "
                f"{CLASS_NAMES.get(wrong, wrong)}: {count}"
            )
        lines.append(
            f"Share of flips toward the majority class: "
            f"{self.majority_flip_share:.1%}"
        )
        lines.append(
            "=> training bias CONFIRMED"
            if self.bias_confirmed
            else "=> no training bias detected"
        )
        return "\n".join(lines)


class TrainingBiasAnalysis:
    """Correlates dataset imbalance with counterexample flow."""

    def __init__(self, training_set: Dataset):
        self.training_set = training_set

    def analyze(self, extraction: ExtractionReport) -> BiasReport:
        flip_matrix: dict[tuple[int, int], int] = {}
        for _, true_label, _, wrong_label in extraction.all_vectors_with_labels():
            key = (true_label, wrong_label)
            flip_matrix[key] = flip_matrix.get(key, 0) + 1
        return BiasReport.from_census(
            self.training_set.class_counts(),
            flip_matrix,
            noise_percent=extraction.noise_percent,
        )
