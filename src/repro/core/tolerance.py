"""Noise-tolerance analysis (paper §IV-B, results §V-C.1).

For every correctly-classified test input the analysis finds the minimal
noise percentage ``(Δx)min`` whose range admits a misclassifying noise
vector; the network's noise tolerance is the largest range below *all*
of them.  The paper reports ±11 % for its trained network.

Two search schedules are provided:

- ``binary`` (default) — bisection on the range bound; each probe is one
  complete verification query;
- ``paper`` — the literal Fig.-2 loop: start large, shrink by one
  percentage point whenever a counterexample exists, stop at the first
  counterexample-free range.  Same answer, more queries; kept because it
  is the methodology being reproduced (and benchmarked in E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import NoiseConfig, VerifierConfig
from ..data.dataset import Dataset
from ..errors import ConfigError
from ..nn.quantize import QuantizedNetwork
from ..verify import PortfolioVerifier, build_query
from ..verify.result import VerificationResult


@dataclass
class InputTolerance:
    """Per-input outcome of the tolerance search."""

    index: int
    true_label: int
    min_flip_percent: int | None  # None: robust up to the search ceiling
    witness: tuple[int, ...] | None
    flipped_to: int | None
    queries: int = 0

    @property
    def robust_at_ceiling(self) -> bool:
        return self.min_flip_percent is None


@dataclass
class ToleranceReport:
    """Aggregate tolerance result over a dataset."""

    per_input: list[InputTolerance] = field(default_factory=list)
    search_ceiling: int = 0
    correctly_classified: int = 0
    total_inputs: int = 0

    @property
    def tolerance(self) -> int | None:
        """Largest ΔX with no counterexample for any input (paper: ±11)."""
        flips = [
            r.min_flip_percent
            for r in self.per_input
            if r.min_flip_percent is not None
        ]
        if not flips:
            return self.search_ceiling
        return min(flips) - 1

    def misclassified_inputs_at(self, percent: int) -> list[InputTolerance]:
        """Inputs with a counterexample within ``±percent``."""
        return [
            r
            for r in self.per_input
            if r.min_flip_percent is not None and r.min_flip_percent <= percent
        ]

    def misclassification_counts(self, percents: list[int]) -> dict[int, int]:
        """Series for the Fig.-4 sweep: range → #vulnerable inputs."""
        return {p: len(self.misclassified_inputs_at(p)) for p in percents}


class NoiseToleranceAnalysis:
    """Drives the P2 loop over a dataset."""

    def __init__(
        self,
        network: QuantizedNetwork,
        config: VerifierConfig | None = None,
        verifier=None,
        search_ceiling: int = 60,
        schedule: str = "binary",
    ):
        if schedule not in ("binary", "paper"):
            raise ConfigError("schedule must be 'binary' or 'paper'")
        self.network = network
        self.verifier = verifier or PortfolioVerifier(config or VerifierConfig())
        self.search_ceiling = search_ceiling
        self.schedule = schedule

    # -- single input ----------------------------------------------------------

    def min_flip_percent(self, x, true_label: int) -> InputTolerance:
        """Smallest ±P admitting a counterexample for this input."""
        if self.schedule == "binary":
            return self._search_binary(x, true_label)
        return self._search_paper(x, true_label)

    def _verify_at(self, x, true_label: int, percent: int) -> VerificationResult:
        query = build_query(
            self.network, x, true_label, NoiseConfig(max_percent=percent)
        )
        return self.verifier.verify(query)

    def _search_binary(self, x, true_label: int) -> InputTolerance:
        low, high = 1, self.search_ceiling
        best: VerificationResult | None = None
        best_percent: int | None = None
        queries = 0
        while low <= high:
            mid = (low + high) // 2
            result = self._verify_at(x, true_label, mid)
            queries += 1
            if result.is_vulnerable:
                best, best_percent = result, mid
                high = mid - 1
            else:
                low = mid + 1
        return InputTolerance(
            index=-1,
            true_label=true_label,
            min_flip_percent=best_percent,
            witness=best.witness if best else None,
            flipped_to=best.predicted_label if best else None,
            queries=queries,
        )

    def _search_paper(self, x, true_label: int) -> InputTolerance:
        """Fig.-2 literal loop: reduce ΔX while counterexamples exist."""
        percent = self.search_ceiling
        last_witness: VerificationResult | None = None
        last_flip: int | None = None
        queries = 0
        while percent >= 1:
            result = self._verify_at(x, true_label, percent)
            queries += 1
            if not result.is_vulnerable:
                break
            last_witness, last_flip = result, percent
            percent -= 1
        return InputTolerance(
            index=-1,
            true_label=true_label,
            min_flip_percent=last_flip,
            witness=last_witness.witness if last_witness else None,
            flipped_to=last_witness.predicted_label if last_witness else None,
            queries=queries,
        )

    # -- dataset ------------------------------------------------------------------

    def analyze(self, dataset: Dataset) -> ToleranceReport:
        """Run the tolerance search over every correctly-classified input.

        The paper considers only correctly-classified inputs *"for fair
        analysis of the impact of noise"* — misclassified-at-zero-noise
        inputs carry no tolerance information.
        """
        report = ToleranceReport(
            search_ceiling=self.search_ceiling,
            total_inputs=dataset.num_samples,
        )
        for index in range(dataset.num_samples):
            x = np.asarray(dataset.features[index])
            true_label = int(dataset.labels[index])
            if self.network.predict(x) != true_label:
                continue  # excluded, as in the paper
            report.correctly_classified += 1
            result = self.min_flip_percent(x, true_label)
            result.index = index
            report.per_input.append(result)
        return report
