"""Noise-tolerance analysis (paper §IV-B, results §V-C.1).

For every correctly-classified test input the analysis finds the minimal
noise percentage ``(Δx)min`` whose range admits a misclassifying noise
vector; the network's noise tolerance is the largest range below *all*
of them.  The paper reports ±11 % for its trained network.

Two search schedules are provided:

- ``binary`` (default) — bisection on the range bound; each probe is one
  complete verification query;
- ``paper`` — the literal Fig.-2 loop: start large, shrink by one
  percentage point whenever a counterexample exists, stop at the first
  counterexample-free range.  Same answer, more queries; kept because it
  is the methodology being reproduced (and benchmarked in E2).

Execution goes through the analysis runtime (:mod:`repro.runtime`): each
input becomes an independent :class:`~repro.runtime.tasks.ToleranceSearchTask`
submitted to a :class:`~repro.runtime.QueryRunner`, which memoises every
``(input, percent)`` verdict in its query cache and — when
``RuntimeConfig.workers > 1`` — fans the searches out over a process
pool with deterministic ``(seed, input index)`` seeding.  Both schedules
therefore share verdicts with each other, with the Fig.-4 sweep and with
the later P3 extraction pass, and parallel runs reproduce serial runs
bit for bit.

With ``RuntimeConfig.frontier`` (the default) each task also submits its
whole probe ladder — every rung up to the ceiling, binary-search rungs
included, speculatively — to the frontier-batched prepass
(:mod:`repro.verify.batch`) before searching: the vectorised incomplete
passes decide the cheap mass of the ladder in bulk, and the search's own
probes only reach a complete engine inside the thin boundary band.

Both schedules also consume *implied* verdicts: the runner's default
:class:`~repro.runtime.MonotoneCache` answers a probe at ±P from any
proved ROBUST verdict at ±P' ≥ P or VULNERABLE verdict at ±P' ≤ P, so a
search that overlaps earlier work — the other schedule, a previous run
warm-started from disk, a different ceiling, the extraction pass — stops
issuing solver calls for percents whose answer is already forced by the
paper's nested-noise-box semantics.  Reports are unaffected: every
witness that reaches a report comes from the exact entry at the minimal
flip percent, which any schedule proves directly before reporting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RuntimeConfig, VerifierConfig
from ..data.dataset import Dataset
from ..errors import ConfigError
from ..nn.quantize import QuantizedNetwork
from ..runtime import QueryRunner, ToleranceSearchTask


@dataclass
class InputTolerance:
    """Per-input outcome of the tolerance search."""

    index: int
    true_label: int
    min_flip_percent: int | None  # None: robust up to the search ceiling
    witness: tuple[int, ...] | None
    flipped_to: int | None
    queries: int = 0

    @property
    def robust_at_ceiling(self) -> bool:
        return self.min_flip_percent is None


@dataclass
class ToleranceReport:
    """Aggregate tolerance result over a dataset."""

    per_input: list[InputTolerance] = field(default_factory=list)
    search_ceiling: int = 0
    correctly_classified: int = 0
    total_inputs: int = 0

    @property
    def tolerance(self) -> int | None:
        """Largest ΔX with no counterexample for any input (paper: ±11)."""
        flips = [
            r.min_flip_percent
            for r in self.per_input
            if r.min_flip_percent is not None
        ]
        if not flips:
            return self.search_ceiling
        return min(flips) - 1

    def misclassified_inputs_at(self, percent: int) -> list[InputTolerance]:
        """Inputs with a counterexample within ``±percent``."""
        return [
            r
            for r in self.per_input
            if r.min_flip_percent is not None and r.min_flip_percent <= percent
        ]

    def misclassification_counts(self, percents: list[int]) -> dict[int, int]:
        """Series for the Fig.-4 sweep: range → #vulnerable inputs."""
        return {p: len(self.misclassified_inputs_at(p)) for p in percents}


class NoiseToleranceAnalysis:
    """Drives the P2 loop over a dataset through the query runner."""

    def __init__(
        self,
        network: QuantizedNetwork,
        config: VerifierConfig | None = None,
        verifier=None,
        search_ceiling: int = 60,
        schedule: str = "binary",
        runner: QueryRunner | None = None,
        runtime: RuntimeConfig | None = None,
    ):
        if schedule not in ("binary", "paper"):
            raise ConfigError("schedule must be 'binary' or 'paper'")
        self.network = network
        self.search_ceiling = search_ceiling
        self.schedule = schedule
        self.runner = runner or QueryRunner(
            network, config or VerifierConfig(), runtime, verifier=verifier
        )

    # -- single input ----------------------------------------------------------

    def min_flip_percent(self, x, true_label: int) -> InputTolerance:
        """Smallest ±P admitting a counterexample for this input.

        Runs under cache index -1 (no dataset position), so it neither
        reads nor warms the entries of a dataset-wide :meth:`analyze`
        pass — and its falsifier seed differs from the per-index one, so
        the *witness* may differ from the report entry for the same
        input even though the verdicts always agree.
        """
        task = ToleranceSearchTask(
            index=-1,
            x=tuple(int(v) for v in x),
            true_label=true_label,
            ceiling=self.search_ceiling,
            schedule=self.schedule,
        )
        return InputTolerance(index=-1, true_label=true_label, **task.run(self.runner))

    # -- dataset ------------------------------------------------------------------

    def analyze(self, dataset: Dataset) -> ToleranceReport:
        """Run the tolerance search over every correctly-classified input.

        The paper considers only correctly-classified inputs *"for fair
        analysis of the impact of noise"* — misclassified-at-zero-noise
        inputs carry no tolerance information.
        """
        report = ToleranceReport(
            search_ceiling=self.search_ceiling,
            total_inputs=dataset.num_samples,
        )
        tasks: list[ToleranceSearchTask] = []
        for index in range(dataset.num_samples):
            x = np.asarray(dataset.features[index])
            true_label = int(dataset.labels[index])
            if self.network.predict(x) != true_label:
                continue  # excluded, as in the paper
            report.correctly_classified += 1
            tasks.append(
                ToleranceSearchTask(
                    index=index,
                    x=tuple(int(v) for v in x),
                    true_label=true_label,
                    ceiling=self.search_ceiling,
                    schedule=self.schedule,
                )
            )
        for task, outcome in zip(tasks, self.runner.run_tasks(tasks)):
            report.per_input.append(
                InputTolerance(index=task.index, true_label=task.true_label, **outcome)
            )
        return report

    def sweep(self, dataset: Dataset, percents: list[int]) -> dict[int, list[int]]:
        """Live Fig.-4 sweep: ``{percent: [vulnerable input indices]}``.

        Unlike :meth:`ToleranceReport.misclassification_counts` (which
        re-reads a finished report), this issues one verification query
        per correctly-classified input per percent — and therefore shows
        the monotone cache at work: after :meth:`analyze` has run on the
        same runner, every query here is answered from an exact or
        implied verdict and *zero* solver calls are issued, whereas an
        exact-key cache re-solves each percent the search never probed
        directly.

        On a cold runner the whole (input × percent) grid goes through
        the frontier plane in one :meth:`~repro.runtime.QueryRunner.verify_frontier`
        call: the bulk prepass decides the cheap mass and each input's
        boundary band costs only a logarithmic number of complete-engine
        calls (monotone bisection) instead of one per grid point.
        """
        from ..runtime import make_key

        grid: list[tuple[int, tuple, int, int]] = []
        for index in range(dataset.num_samples):
            x = np.asarray(dataset.features[index])
            true_label = int(dataset.labels[index])
            if self.network.predict(x) != true_label:
                continue  # excluded, as in analyze()
            x = tuple(int(v) for v in x)
            for percent in percents:
                grid.append((index, x, true_label, percent))
        results = self.runner.verify_frontier(grid, complete=True)
        vulnerable: dict[int, list[int]] = {p: [] for p in percents}
        for index, x, true_label, percent in grid:
            key = make_key("verify", index, x, true_label, percent)
            if results[key].is_vulnerable:
                vulnerable[percent].append(index)
        return vulnerable
