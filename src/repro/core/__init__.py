"""FANNet methodology (system S10 in DESIGN.md) — the paper's contribution.

The Fig.-2 pipeline, faithfully:

1. **Behaviour extraction** (:mod:`repro.core.translate`) — the trained,
   quantised network becomes an SMV model whose inputs carry
   non-deterministic relative noise; property P1 validates the
   translation against the dataset.
2. **Noise-tolerance analysis** (:mod:`repro.core.tolerance`) — property
   P2 (``OCn = Sx``) is checked under shrinking noise until no
   counterexample exists; the largest clean range is the tolerance.
3. **Adversarial noise-vector extraction** (:mod:`repro.core.noise_vectors`)
   — property P3 blocks known vectors so each counterexample is fresh.
4. **Training-bias, input-sensitivity and boundary analyses**
   (:mod:`repro.core.bias`, :mod:`repro.core.sensitivity`,
   :mod:`repro.core.boundary`) — the census of extracted counterexamples.

:class:`repro.core.fannet.Fannet` wires it all together;
:func:`repro.core.fannet.run_case_study` reproduces the paper's §V.
"""

from .translate import (
    dataset_fsm_module,
    network_noise_module,
    validate_translation,
)
from .properties import p1_functional_property, p2_noise_property
from .tolerance import InputTolerance, ToleranceReport, NoiseToleranceAnalysis
from .noise_vectors import NoiseVectorExtraction
from .bias import BiasReport, TrainingBiasAnalysis
from .sensitivity import NodeSensitivity, SensitivityReport, InputSensitivityAnalysis
from .boundary import BoundaryReport, BoundaryEstimation
from .fannet import Fannet, FannetReport, run_case_study

__all__ = [
    "network_noise_module",
    "dataset_fsm_module",
    "validate_translation",
    "p1_functional_property",
    "p2_noise_property",
    "NoiseToleranceAnalysis",
    "ToleranceReport",
    "InputTolerance",
    "NoiseVectorExtraction",
    "TrainingBiasAnalysis",
    "BiasReport",
    "InputSensitivityAnalysis",
    "SensitivityReport",
    "NodeSensitivity",
    "BoundaryEstimation",
    "BoundaryReport",
    "Fannet",
    "FannetReport",
    "run_case_study",
]
