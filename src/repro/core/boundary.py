"""Classification-boundary estimation (paper §V-C.2).

The per-input minimal flipping noise is a proxy for the input's distance
to the decision boundary: *"inputs closer to the classification boundary
were observed to be highly susceptible to input noise … for other
inputs, noise even as large as 50 % of the input did not trigger
misclassification"*.  This module turns the tolerance profile into that
boundary picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tolerance import ToleranceReport


@dataclass
class BoundaryReport:
    """Boundary-proximity classification of the test inputs."""

    near_boundary: list[int] = field(default_factory=list)  # input indices
    far_from_boundary: list[int] = field(default_factory=list)
    interior: list[int] = field(default_factory=list)
    near_threshold: int = 0
    far_threshold: int = 0
    profile: dict[int, int | None] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"Boundary estimate (near: flips within ±{self.near_threshold}%, "
            f"far: robust beyond ±{self.far_threshold}%):"
        ]
        lines.append(f"  near boundary : {sorted(self.near_boundary)}")
        lines.append(f"  intermediate  : {sorted(self.interior)}")
        lines.append(f"  far (robust)  : {sorted(self.far_from_boundary)}")
        return "\n".join(lines)


class BoundaryEstimation:
    """Derives the boundary picture from a tolerance report."""

    def __init__(self, near_threshold: int = 15, far_threshold: int = 50):
        self.near_threshold = near_threshold
        self.far_threshold = far_threshold

    def analyze(self, tolerance: ToleranceReport) -> BoundaryReport:
        report = BoundaryReport(
            near_threshold=self.near_threshold,
            far_threshold=self.far_threshold,
        )
        for entry in tolerance.per_input:
            report.profile[entry.index] = entry.min_flip_percent
            if entry.min_flip_percent is None:
                if tolerance.search_ceiling >= self.far_threshold:
                    report.far_from_boundary.append(entry.index)
                else:
                    report.interior.append(entry.index)
            elif entry.min_flip_percent <= self.near_threshold:
                report.near_boundary.append(entry.index)
            elif entry.min_flip_percent > self.far_threshold:
                report.far_from_boundary.append(entry.index)
            else:
                report.interior.append(entry.index)
        return report
