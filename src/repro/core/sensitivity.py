"""Input-node sensitivity analysis (paper §V-C.4).

Two complementary measurements:

1. **Census over extracted counterexamples** — for each input node,
   how many adversarial vectors carry positive / negative / zero noise
   on that node.  The paper's headline findings are census statements:
   *"no counterexamples were obtained with positive noise at input node
   i5"* and *"more noise patterns with positive noise at i2 than the
   other way around"*.
2. **Single-node probing** (Eq. 3 of the paper) — noise restricted to
   one node at a time: the minimal single-node noise that flips the
   prediction, per node and sign.  This isolates a node's own
   sensitivity from correlations with the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RuntimeConfig, VerifierConfig
from ..data.dataset import Dataset
from ..nn.quantize import QuantizedNetwork
from ..runtime import ProbeTask, QueryRunner
from .noise_vectors import ExtractionReport


@dataclass
class NodeSensitivity:
    """Census entry for one input node."""

    node: int
    positive: int = 0
    negative: int = 0
    zero: int = 0

    @property
    def total(self) -> int:
        return self.positive + self.negative + self.zero

    @property
    def positive_share(self) -> float:
        return self.positive / self.total if self.total else 0.0

    @property
    def negative_share(self) -> float:
        return self.negative / self.total if self.total else 0.0

    @property
    def insensitive_to_positive(self) -> bool:
        """The paper's i5 pattern: counterexamples never push this node up."""
        return self.total > 0 and self.positive == 0

    @property
    def insensitive_to_negative(self) -> bool:
        return self.total > 0 and self.negative == 0

    @property
    def skew(self) -> float:
        """Positive-vs-negative asymmetry in [-1, 1]."""
        signed = self.positive + self.negative
        if signed == 0:
            return 0.0
        return (self.positive - self.negative) / signed


@dataclass
class SensitivityReport:
    """Census over all nodes plus optional single-node probe results."""

    nodes: list[NodeSensitivity] = field(default_factory=list)
    noise_percent: int = 0
    #: node → (min flip percent with positive-only noise, with negative-only)
    single_node_flips: dict[int, tuple[int | None, int | None]] = field(
        default_factory=dict
    )

    def most_sensitive_nodes(self, top: int = 2) -> list[int]:
        """Nodes whose noise appears most often in counterexamples."""
        ranked = sorted(
            self.nodes, key=lambda n: n.positive + n.negative, reverse=True
        )
        return [n.node for n in ranked[:top]]

    def one_sided_nodes(self) -> list[int]:
        """Nodes with counterexamples on one sign only (paper's i5)."""
        return [
            n.node
            for n in self.nodes
            if n.insensitive_to_positive or n.insensitive_to_negative
        ]

    def describe(self) -> str:
        lines = [f"Input-node sensitivity census at ±{self.noise_percent}%:"]
        for n in self.nodes:
            verdicts = []
            if n.insensitive_to_positive:
                verdicts.append("insensitive to positive noise")
            if n.insensitive_to_negative:
                verdicts.append("insensitive to negative noise")
            suffix = f"  <- {', '.join(verdicts)}" if verdicts else ""
            lines.append(
                f"  i{n.node + 1}: +{n.positive}  -{n.negative}  "
                f"0:{n.zero}  skew {n.skew:+.2f}{suffix}"
            )
        if self.single_node_flips:
            lines.append("Single-node flip thresholds (positive / negative):")
            for node, (pos, neg) in sorted(self.single_node_flips.items()):
                lines.append(
                    f"  i{node + 1}: +{pos if pos is not None else '—'}% / "
                    f"-{neg if neg is not None else '—'}%"
                )
        return "\n".join(lines)


class InputSensitivityAnalysis:
    """Builds sensitivity reports from extractions and probes.

    The Eq.-3 probes run as :class:`~repro.runtime.ProbeTask` units on the
    query runner — one task per ``(node, sign)`` pair, fanned out in
    parallel when the runtime allows, with every single-node flip check
    memoised.  With the frontier plane enabled each task first submits
    its whole ladder (every input × every magnitude up to the ceiling)
    as one bulk exact network evaluation, so the per-input bisections
    read memoised flip thresholds instead of re-evaluating the network
    magnitude by magnitude.
    """

    def __init__(
        self,
        network: QuantizedNetwork,
        config: VerifierConfig | None = None,
        runner: QueryRunner | None = None,
        runtime: RuntimeConfig | None = None,
    ):
        self.network = network
        self.runner = runner or QueryRunner(network, config or VerifierConfig(), runtime)
        # The runner's config is the single source of truth — an injected
        # runner's budgets/seed win over a separately passed ``config``.
        self.config = self.runner.config

    # -- census over extracted counterexamples --------------------------------

    def census(self, extraction: ExtractionReport) -> SensitivityReport:
        """Signed-noise histogram per node over all extracted vectors."""
        num_nodes = self.network.num_inputs
        nodes = [NodeSensitivity(node=i) for i in range(num_nodes)]
        for _, _, vector, _ in extraction.all_vectors_with_labels():
            for i, value in enumerate(vector):
                if value > 0:
                    nodes[i].positive += 1
                elif value < 0:
                    nodes[i].negative += 1
                else:
                    nodes[i].zero += 1
        return SensitivityReport(
            nodes=nodes, noise_percent=extraction.noise_percent
        )

    # -- Eq. 3 single-node probing ---------------------------------------------------

    def _probe_inputs(self, dataset: Dataset) -> tuple:
        """Correctly-classified ``(index, x, label)`` triples for the tasks."""
        inputs = []
        for index in range(dataset.num_samples):
            x = np.asarray(dataset.features[index])
            true_label = int(dataset.labels[index])
            if self.network.predict(x) != true_label:
                continue
            inputs.append((index, tuple(int(v) for v in x), true_label))
        return tuple(inputs)

    def single_node_probe(
        self,
        dataset: Dataset,
        node: int,
        sign: int,
        search_ceiling: int = 60,
    ) -> int | None:
        """Minimal |noise| on ``node`` alone (sign fixed) flipping any
        correctly-classified input; None if no flip up to the ceiling."""
        task = ProbeTask(
            node=node,
            sign=sign,
            ceiling=search_ceiling,
            inputs=self._probe_inputs(dataset),
        )
        return task.run(self.runner)

    def probe_all_nodes(
        self, dataset: Dataset, search_ceiling: int = 60
    ) -> dict[int, tuple[int | None, int | None]]:
        """(positive, negative) single-node flip thresholds for every node."""
        inputs = self._probe_inputs(dataset)
        tasks = [
            ProbeTask(node=node, sign=sign, ceiling=search_ceiling, inputs=inputs)
            for node in range(self.network.num_inputs)
            for sign in (+1, -1)
        ]
        results = self.runner.run_tasks(tasks)
        thresholds: dict[int, tuple[int | None, int | None]] = {}
        for node in range(self.network.num_inputs):
            thresholds[node] = (results[2 * node], results[2 * node + 1])
        return thresholds

    # -- combined -----------------------------------------------------------------------

    def analyze(
        self,
        extraction: ExtractionReport,
        dataset: Dataset | None = None,
        probe: bool = False,
        search_ceiling: int = 60,
    ) -> SensitivityReport:
        report = self.census(extraction)
        if probe and dataset is not None:
            report.single_node_flips = self.probe_all_nodes(
                dataset, search_ceiling=search_ceiling
            )
        return report
