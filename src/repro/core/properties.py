"""The paper's temporal properties P1, P2, P3 (Fig. 2) as SMV expressions.

- **P1** ``OC = Sx`` — functional validation of the translated model,
  checked without noise.
- **P2** ``OCn = Sx`` — correctness under noise; counterexamples to P2
  are the adversarial noise vectors.
- **P3** ``(OCn = Sx) | !e`` — "the output is correct OR the noise vector
  is one we have already recorded"; its counterexamples are *fresh*
  adversarial vectors, driving the extraction loop.
"""

from __future__ import annotations

from typing import Sequence

from ..smv.ast import BinOp, Expr, Ident, IntLit, UnaryOp


def p1_functional_property(true_label: int) -> Expr:
    """P1: the translated model computes the dataset label (no noise)."""
    return BinOp("=", Ident("oc"), IntLit(true_label))


def p2_noise_property(true_label: int) -> Expr:
    """P2: correctness under noise, vacuous in the initial phase."""
    return BinOp(
        "|",
        BinOp("=", Ident("phase"), Ident("initial")),
        BinOp("=", Ident("oc"), IntLit(true_label)),
    )


def noise_vector_equals(vector: Sequence[int]) -> Expr:
    """``p0 = v0 & p1 = v1 & …`` — membership test for one noise vector."""
    expr: Expr | None = None
    for index, value in enumerate(vector):
        clause = BinOp("=", Ident(f"p{index}"), IntLit(int(value)))
        expr = clause if expr is None else BinOp("&", expr, clause)
    if expr is None:
        raise ValueError("empty noise vector")
    return expr


def p3_next_counterexample_property(
    true_label: int, known_vectors: Sequence[Sequence[int]]
) -> Expr:
    """P3: ``(OCn = Sx) | e`` where ``e`` matches already-known vectors.

    A counterexample must both misclassify *and* avoid every vector in
    ``known_vectors`` — i.e. it is a new adversarial noise pattern.
    """
    correct = p2_noise_property(true_label)
    membership: Expr | None = None
    for vector in known_vectors:
        clause = noise_vector_equals(vector)
        membership = clause if membership is None else BinOp("|", membership, clause)
    if membership is None:
        return correct
    return BinOp("|", correct, membership)


def negation(expr: Expr) -> Expr:
    """Logical negation helper for counterexample-driven loops."""
    return UnaryOp("!", expr)
