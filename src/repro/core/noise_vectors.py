"""Adversarial noise-vector extraction — the P3 loop (paper §IV-C).

Collects, per input, the array ``e`` of unique noise vectors that flip
the prediction, annotated with the wrong label each vector produces.
The census feeds both the training-bias analysis (which direction do
flips go?) and the input-sensitivity analysis (which nodes carry signed
noise?).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import NoiseConfig, VerifierConfig
from ..data.dataset import Dataset
from ..nn.quantize import QuantizedNetwork
from ..verify import NoiseVectorCollector, build_query


@dataclass
class InputNoiseVectors:
    """All extracted vectors for one dataset input."""

    index: int
    true_label: int
    vectors: list[tuple[int, ...]] = field(default_factory=list)
    flipped_to: list[int] = field(default_factory=list)
    exhausted: bool = True

    def __len__(self):
        return len(self.vectors)


@dataclass
class ExtractionReport:
    """Dataset-wide extraction outcome at one noise range."""

    noise_percent: int
    per_input: list[InputNoiseVectors] = field(default_factory=list)

    @property
    def total_vectors(self) -> int:
        return sum(len(entry) for entry in self.per_input)

    def vulnerable_inputs(self) -> list[InputNoiseVectors]:
        return [entry for entry in self.per_input if entry.vectors]

    def all_vectors_with_labels(self):
        """Yield (input_index, true_label, vector, wrong_label) tuples."""
        for entry in self.per_input:
            for vector, wrong in zip(entry.vectors, entry.flipped_to):
                yield entry.index, entry.true_label, vector, wrong


class NoiseVectorExtraction:
    """Runs the P3 loop over a dataset at a fixed noise range."""

    def __init__(
        self,
        network: QuantizedNetwork,
        config: VerifierConfig | None = None,
        per_input_limit: int | None = None,
        exhaustive_cutoff: int = 8_000_000,
    ):
        self.network = network
        self.config = config or VerifierConfig()
        self.per_input_limit = per_input_limit
        self.collector = NoiseVectorCollector(
            self.config, exhaustive_cutoff=exhaustive_cutoff
        )

    def extract_for_input(
        self, x, true_label: int, noise_percent: int, index: int = -1
    ) -> InputNoiseVectors:
        """Unique adversarial vectors for one input at ``±noise_percent``."""
        query = build_query(
            self.network, x, true_label, NoiseConfig(max_percent=noise_percent)
        )
        limit = self.per_input_limit
        if query.noise_space_size() > self.collector.exhaustive_cutoff and limit is None:
            limit = 1000  # solver-driven extraction needs a bound
        collected = self.collector.collect(query, limit=limit)
        flipped = [query.predict_single(vector) for vector in collected.vectors]
        return InputNoiseVectors(
            index=index,
            true_label=true_label,
            vectors=list(collected.vectors),
            flipped_to=flipped,
            exhausted=collected.exhausted,
        )

    def extract(self, dataset: Dataset, noise_percent: int) -> ExtractionReport:
        """P3 extraction over every correctly-classified input."""
        report = ExtractionReport(noise_percent=noise_percent)
        for index in range(dataset.num_samples):
            x = np.asarray(dataset.features[index])
            true_label = int(dataset.labels[index])
            if self.network.predict(x) != true_label:
                continue
            report.per_input.append(
                self.extract_for_input(x, true_label, noise_percent, index=index)
            )
        return report
