"""Adversarial noise-vector extraction — the P3 loop (paper §IV-C).

Collects, per input, the array ``e`` of unique noise vectors that flip
the prediction, annotated with the wrong label each vector produces.
The census feeds both the training-bias analysis (which direction do
flips go?) and the input-sensitivity analysis (which nodes carry signed
noise?).

Like the tolerance search, extraction executes on the analysis runtime
(:mod:`repro.runtime`): each input becomes an
:class:`~repro.runtime.tasks.ExtractionTask` submitted to a
:class:`~repro.runtime.QueryRunner`.  The runner memoises extraction
outcomes per ``(input, percent, limit)`` and short-circuits inputs whose
P2 pass already proved the same noise box robust — exactly, or via the
monotone cache layer, *implied*: a ROBUST verdict at any larger percent
covers this box, so the vector set is empty and no collector runs at
all — and fans inputs out over a worker pool when
``RuntimeConfig.workers > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RuntimeConfig, VerifierConfig
from ..data.dataset import Dataset
from ..nn.quantize import QuantizedNetwork
from ..runtime import ExtractionTask, QueryRunner


@dataclass
class InputNoiseVectors:
    """All extracted vectors for one dataset input."""

    index: int
    true_label: int
    vectors: list[tuple[int, ...]] = field(default_factory=list)
    flipped_to: list[int] = field(default_factory=list)
    exhausted: bool = True

    def __len__(self):
        return len(self.vectors)


@dataclass
class ExtractionReport:
    """Dataset-wide extraction outcome at one noise range."""

    noise_percent: int
    per_input: list[InputNoiseVectors] = field(default_factory=list)

    @property
    def total_vectors(self) -> int:
        return sum(len(entry) for entry in self.per_input)

    def vulnerable_inputs(self) -> list[InputNoiseVectors]:
        return [entry for entry in self.per_input if entry.vectors]

    def all_vectors_with_labels(self):
        """Yield (input_index, true_label, vector, wrong_label) tuples."""
        for entry in self.per_input:
            for vector, wrong in zip(entry.vectors, entry.flipped_to):
                yield entry.index, entry.true_label, vector, wrong


class NoiseVectorExtraction:
    """Runs the P3 loop over a dataset at a fixed noise range."""

    def __init__(
        self,
        network: QuantizedNetwork,
        config: VerifierConfig | None = None,
        per_input_limit: int | None = None,
        exhaustive_cutoff: int = 8_000_000,
        runner: QueryRunner | None = None,
        runtime: RuntimeConfig | None = None,
    ):
        self.network = network
        self.per_input_limit = per_input_limit
        self.exhaustive_cutoff = exhaustive_cutoff
        self.runner = runner or QueryRunner(network, config or VerifierConfig(), runtime)
        # The runner's config is the single source of truth — an injected
        # runner's budgets/seed win over a separately passed ``config``.
        self.config = self.runner.config

    def _task(self, x, true_label: int, noise_percent: int, index: int) -> ExtractionTask:
        return ExtractionTask(
            index=index,
            x=tuple(int(v) for v in x),
            true_label=true_label,
            percent=noise_percent,
            limit=self.per_input_limit,
            exhaustive_cutoff=self.exhaustive_cutoff,
        )

    def extract_for_input(
        self, x, true_label: int, noise_percent: int, index: int = -1
    ) -> InputNoiseVectors:
        """Unique adversarial vectors for one input at ``±noise_percent``."""
        outcome = self._task(x, true_label, noise_percent, index).run(self.runner)
        return InputNoiseVectors(index=index, true_label=true_label, **outcome)

    def extract(self, dataset: Dataset, noise_percent: int) -> ExtractionReport:
        """P3 extraction over every correctly-classified input.

        With the frontier plane enabled, the whole input frontier at
        ``±noise_percent`` is first bulk-verified by the cheap passes
        (no complete engines): inputs the prepass proves robust
        short-circuit to an empty vector set before any collector —
        or worker process — spins up.
        """
        report = ExtractionReport(noise_percent=noise_percent)
        tasks: list[ExtractionTask] = []
        for index in range(dataset.num_samples):
            x = np.asarray(dataset.features[index])
            true_label = int(dataset.labels[index])
            if self.network.predict(x) != true_label:
                continue
            tasks.append(self._task(x, true_label, noise_percent, index))
        if getattr(self.runner, "frontier_enabled", False):
            self.runner.verify_frontier(
                [(t.index, t.x, t.true_label, t.percent) for t in tasks],
                complete=False,
            )
        for task, outcome in zip(tasks, self.runner.run_tasks(tasks)):
            report.per_input.append(
                InputNoiseVectors(index=task.index, true_label=task.true_label, **outcome)
            )
        return report
