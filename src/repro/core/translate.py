"""Behaviour extraction: trained network → SMV model (paper §IV-A).

Two model flavours, matching Fig. 3:

- :func:`dataset_fsm_module` — the no-noise FSM whose non-determinism is
  the choice of test sample (Fig. 3(b): 3 states, 6 transitions);
- :func:`network_noise_module` — the per-input noise model: every input
  node carries an integer noise percentage chosen non-deterministically
  each step, and the network's arithmetic is unrolled into ``DEFINE``
  macros over scaled integers (Fig. 3(c)).

The translation is exact: :func:`validate_translation` (property P1)
replays the dataset through the SMV semantics and compares every
predicted label against the quantised network.
"""

from __future__ import annotations

import numpy as np

from ..config import NoiseConfig
from ..errors import VerificationError
from ..fsm import TransitionSystem, evaluate_expression
from ..nn.quantize import QuantizedNetwork
from ..smv.ast import (
    Assignments,
    BinOp,
    BoolLit,
    CaseExpr,
    Call,
    EnumType,
    Expr,
    Ident,
    IntLit,
    RangeType,
    SetExpr,
    SmvModule,
)
from ..verify.encoder import ScaledQuery, build_query


def _sum_expr(terms: list[Expr], constant: int) -> Expr:
    """Σ terms + constant as a left-leaning BinOp chain."""
    expr: Expr = IntLit(constant)
    for term in terms:
        expr = BinOp("+", expr, term)
    return expr


def network_noise_module(
    network: QuantizedNetwork,
    x,
    true_label: int,
    noise: NoiseConfig,
    weight_scale: int = 1000,
    module_name: str = "fannet",
    noisy_bias_node: bool = False,
) -> tuple[SmvModule, ScaledQuery]:
    """Translate one noise query into an SMV module.

    Structure (all integers, exactness per the scaled encoding):

    - ``VAR phase : {initial, eval}`` and one noise variable per input;
    - ``DEFINE xn_i := x_i·(100 + p_i)``, pre-activations, ReLUs via
      ``max(0, ·)``, output comparison via the argmax tie-break rule;
    - ``INVARSPEC phase = initial | oc = Sx``  (property P2).

    With ``noisy_bias_node=True`` the constant bias input of Fig. 3(a)
    becomes a sixth noisy node (the paper's FSM counts it: 2^6 noise
    assignments give the 65-state machine of Fig. 3(c)); the bias term of
    every first-layer neuron is scaled by ``(100 + p_bias)/100``.

    Returns the module together with the matching :class:`ScaledQuery`
    (the arithmetic engines answer the same question — the test suite
    keeps the two paths in agreement).
    """
    query = build_query(network, x, true_label, noise, weight_scale)

    module = SmvModule(name=module_name)
    module.variables["phase"] = EnumType(("initial", "eval"))
    module.assigns = Assignments(
        init={"phase": Ident("initial")},
        next={"phase": Ident("eval")},
    )

    noise_values = noise.percent_values()
    num_noise_vars = query.num_inputs + (1 if noisy_bias_node else 0)
    for i in range(num_noise_vars):
        name = f"p{i}"
        module.variables[name] = RangeType(noise.low, noise.high)
        module.assigns.init[name] = IntLit(0)
        module.assigns.next[name] = SetExpr(tuple(IntLit(v) for v in noise_values))

    # Noisy scaled inputs.
    previous_names = []
    for i in range(query.num_inputs):
        module.defines[f"xn{i}"] = BinOp(
            "*",
            IntLit(int(query.x[i])),
            BinOp("+", IntLit(100), Ident(f"p{i}")),
        )
        previous_names.append(f"xn{i}")

    # Hidden layers: n / a chains.
    for layer_index in range(query.num_layers - 1):
        weight = query.weights[layer_index]
        bias = query.biases[layer_index]
        next_names = []
        for j in range(weight.shape[0]):
            terms = [
                BinOp("*", IntLit(int(weight[j][i])), Ident(previous_names[i]))
                for i in range(weight.shape[1])
                if int(weight[j][i]) != 0
            ]
            if layer_index == 0 and noisy_bias_node:
                # bias · (100 + p_bias), at the same scale as the clean
                # 100·bias term (query biases carry the extra factor 100).
                scaled_bias = int(bias[j]) // 100
                terms.append(
                    BinOp(
                        "*",
                        IntLit(scaled_bias),
                        BinOp(
                            "+",
                            IntLit(100),
                            Ident(f"p{query.num_inputs}"),
                        ),
                    )
                )
                module.defines[f"n{layer_index}_{j}"] = _sum_expr(terms, 0)
            else:
                module.defines[f"n{layer_index}_{j}"] = _sum_expr(terms, int(bias[j]))
            module.defines[f"a{layer_index}_{j}"] = Call(
                "max", (IntLit(0), Ident(f"n{layer_index}_{j}"))
            )
            next_names.append(f"a{layer_index}_{j}")
        previous_names = next_names

    # Output layer.
    weight = query.weights[-1]
    bias = query.biases[-1]
    output_names = []
    for k in range(query.num_outputs):
        terms = [
            BinOp("*", IntLit(int(weight[k][i])), Ident(previous_names[i]))
            for i in range(weight.shape[1])
            if int(weight[k][i]) != 0
        ]
        module.defines[f"o{k}"] = _sum_expr(terms, int(bias[k]))
        output_names.append(f"o{k}")

    # Classification: argmax with ties to the lower index, written as the
    # paper's ordered conditional ⟨L0 ≥ L1 → L0, L1 ≥ L0 → L1⟩.
    module.defines["oc"] = _argmax_case(output_names)

    # Property P2: after the initial state, the output matches Sx.
    module.invarspecs.append(
        BinOp(
            "|",
            BinOp("=", Ident("phase"), Ident("initial")),
            BinOp("=", Ident("oc"), IntLit(true_label)),
        )
    )
    return module, query


def _argmax_case(output_names: list[str]) -> Expr:
    """``case``-encoded argmax with lower-index tie-break."""
    branches = []
    for k, name in enumerate(output_names):
        conditions: Expr = BoolLit(True)
        for other_index, other in enumerate(output_names):
            if other == name:
                continue
            comparison = BinOp(
                ">=" if other_index > k else ">", Ident(name), Ident(other)
            )
            conditions = BinOp("&", conditions, comparison)
        branches.append((conditions, IntLit(k)))
    branches.append((BoolLit(True), IntLit(0)))  # unreachable safety default
    return CaseExpr(tuple(branches))


def dataset_fsm_module(
    network: QuantizedNetwork,
    inputs,
    module_name: str = "fannet_dataset",
) -> SmvModule:
    """Fig. 3(b): the dataset-non-deterministic, no-noise FSM.

    Each step the FSM visits the output label of a non-deterministically
    chosen sample.  With both labels present in ``inputs`` this is the
    paper's 3-state / 6-transition machine.
    """
    labels = sorted({int(network.predict(x)) for x in inputs})
    if not labels:
        raise VerificationError("dataset_fsm_module needs at least one input")

    module = SmvModule(name=module_name)
    symbols = tuple(["initial"] + [f"l{label}" for label in labels])
    module.variables["state"] = EnumType(symbols)
    module.assigns = Assignments(
        init={"state": Ident("initial")},
        next={"state": SetExpr(tuple(Ident(f"l{label}") for label in labels))},
    )
    return module


def validate_translation(
    module: SmvModule,
    query: ScaledQuery,
    noise_vectors=None,
) -> bool:
    """Property P1: the SMV semantics and the scaled query agree.

    Evaluates the module's ``oc`` DEFINE on concrete noise assignments
    (the zero vector plus any supplied vectors) and compares with the
    exact integer evaluator.  Raises on mismatch, returns True otherwise.
    """
    vectors = [tuple([0] * query.num_inputs)]
    if noise_vectors is not None:
        vectors.extend(tuple(v) for v in noise_vectors)
    for vector in vectors:
        state = {"phase": "eval"}
        for i, value in enumerate(vector):
            state[f"p{i}"] = int(value)
        smv_label = evaluate_expression(Ident("oc"), state, module)
        exact_label = query.predict_single(vector)
        if smv_label != exact_label:
            raise VerificationError(
                f"P1 violation: SMV model predicts {smv_label}, network "
                f"predicts {exact_label} under noise {vector}"
            )
    return True


def noise_model_state_counts(
    network: QuantizedNetwork,
    x,
    true_label: int,
    noise: NoiseConfig,
    max_states: int = 1_000_000,
    noisy_bias_node: bool = False,
) -> tuple[int, int]:
    """(states, transitions) of the noise FSM.

    With ``noisy_bias_node=True`` and noise range ``[0, 1]`` % this
    reproduces Fig. 3(c) exactly: 65 states and 4160 transitions.
    """
    from ..fsm import count_states_and_transitions

    module, _ = network_noise_module(
        network, x, true_label, noise, noisy_bias_node=noisy_bias_node
    )
    system = TransitionSystem(module)
    return count_states_and_transitions(system, max_states=max_states)
