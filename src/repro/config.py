"""Run-wide configuration objects.

Keeping every tunable in one dataclass makes experiment scripts and
benchmarks self-documenting: each records the exact configuration it ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict, fields

from .errors import ConfigError


class _FromMapping:
    """Mixin: build a config dataclass from a manifest/JSON mapping.

    Unknown keys raise :class:`ConfigError` naming the offender — a
    typoed manifest option must fail loudly, not silently fall back to a
    default.  Field validation itself stays in each ``__post_init__``.
    """

    @classmethod
    def from_dict(cls, payload: dict | None):
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            raise ConfigError(
                f"{cls.__name__} section must be a mapping, got {type(payload).__name__}"
            )
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ConfigError(
                f"unknown {cls.__name__} option(s): {', '.join(unknown)} "
                f"(expected a subset of: {', '.join(sorted(allowed))})"
            )
        try:
            return cls(**payload)
        except TypeError as err:
            # e.g. a string where a number belongs: __post_init__ trips
            # on the comparison, or the constructor on the call itself.
            raise ConfigError(f"bad {cls.__name__} section: {err}") from None


@dataclass(frozen=True)
class TrainConfig(_FromMapping):
    """Training recipe.  Defaults mirror the paper (§V-A, footnote 1):

    MATLAB, learning rate 0.5 for the first 40 epochs then 0.2 for the
    remaining 40, reaching 100 % training and 94.12 % testing accuracy.
    """

    hidden_units: int = 20
    epochs_phase1: int = 40
    epochs_phase2: int = 40
    lr_phase1: float = 0.5
    lr_phase2: float = 0.2
    momentum: float = 0.0
    seed: int = 7
    batch_size: int = 0  # 0 means full batch

    def __post_init__(self):
        if self.hidden_units <= 0:
            raise ConfigError("hidden_units must be positive")
        if self.epochs_phase1 < 0 or self.epochs_phase2 < 0:
            raise ConfigError("epoch counts must be non-negative")
        if self.lr_phase1 <= 0 or self.lr_phase2 <= 0:
            raise ConfigError("learning rates must be positive")
        if self.batch_size < 0:
            raise ConfigError("batch_size must be >= 0 (0 = full batch)")

    @property
    def total_epochs(self) -> int:
        return self.epochs_phase1 + self.epochs_phase2


@dataclass(frozen=True)
class NoiseConfig:
    """Noise model parameters for the formal analysis.

    The paper injects *relative* integer-percent noise independently on
    every input node: ``x'_i = x_i (100 + p_i)/100`` with
    ``p_i ∈ [-max_percent, +max_percent] ∩ Z``.
    """

    max_percent: int = 40
    min_percent: int | None = None  # None means symmetric: -max_percent
    step: int = 1

    def __post_init__(self):
        if self.max_percent < 0:
            raise ConfigError("max_percent must be non-negative")
        if self.step <= 0:
            raise ConfigError("step must be positive")
        low = self.low
        if low > self.max_percent:
            raise ConfigError("empty noise range")

    @property
    def low(self) -> int:
        return -self.max_percent if self.min_percent is None else self.min_percent

    @property
    def high(self) -> int:
        return self.max_percent

    def percent_values(self) -> list[int]:
        """All admissible signed noise percentages."""
        return list(range(self.low, self.high + 1, self.step))

    def vector_count(self, num_inputs: int) -> int:
        """Size of the noise-vector space for ``num_inputs`` nodes."""
        return len(self.percent_values()) ** num_inputs


@dataclass(frozen=True)
class VerifierConfig(_FromMapping):
    """Budgets and tolerances shared by the verification engines."""

    node_budget: int = 2_000_000
    time_budget_s: float = 600.0
    lp_feasibility_tol: float = 1e-9
    exact_recheck: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.node_budget <= 0:
            raise ConfigError("node_budget must be positive")
        if self.time_budget_s <= 0:
            raise ConfigError("time_budget_s must be positive")


@dataclass(frozen=True)
class RuntimeConfig(_FromMapping):
    """Execution policy for the analysis runtime (:mod:`repro.runtime`).

    ``workers=1`` runs every query inline; higher counts fan per-input
    tasks out over a process pool.  Results are bit-identical either way:
    stochastic engines seed from ``(VerifierConfig.seed, input index)``,
    never from shared global state.  ``cache=False`` disables the query
    memo (every query reaches a solver), for measurement and debugging.

    ``monotone=True`` (the default) upgrades the memo to a
    :class:`~repro.runtime.cache.MonotoneCache`, which also answers
    queries *implied* by already-proved verdicts along the noise-percent
    axis (ROBUST at ±P covers every smaller range, VULNERABLE every
    larger one); ``monotone=False`` falls back to exact-key reuse only.

    ``cache_dir`` names a directory for cross-run persistence: the memo
    is warm-started from — and spilled back to — one file per (network,
    verifier-config) fingerprint context there (see
    :mod:`repro.runtime.store`).  ``persist=False`` keeps a configured
    ``cache_dir`` untouched (neither read nor written) for this run.
    ``cache_dir=None`` (the default) disables persistence entirely.

    ``frontier=True`` (the default) lets the analyses submit whole probe
    ladders to the frontier-batched verification plane
    (:mod:`repro.verify.batch`): a vectorised bulk prepass resolves the
    cheap mass of every ladder before any complete engine runs, and
    grid-shaped workloads dispatch their boundary-band survivors along a
    monotone bisection.  Reports are bit-identical with the frontier on
    or off; ``batch_size`` caps the rows per concatenated bulk network
    evaluation (a memory knob — it can never move a result).

    ``incremental=True`` (the default) routes SMT-sized complete queries
    through warm per-(input, label) ladder sessions
    (:mod:`repro.verify.incremental`): the network+input encoding, the
    simplex tableau and every learned clause survive from rung to rung of
    a noise ladder and across the frontier's bisection probes.  Sessions
    are verdict-only accelerators — witnesses are re-derived with the
    from-scratch search — so reports are byte-identical with the flag on
    or off, and the flag is deliberately *not* part of the cache-context
    fingerprint (warm disk verdicts keep short-circuiting either way).

    ``max_cache_bytes`` bounds the size of the ``cache_dir`` directory:
    after every flush the oldest-by-mtime store files are evicted until
    the directory fits the budget (see :mod:`repro.runtime.lifecycle`).
    The context the flushing run just wrote is never evicted by its own
    flush.  ``None`` (the default) never evicts — entries are
    mathematical facts about a fixed network and do not expire.
    """

    workers: int = 1
    cache: bool = True
    monotone: bool = True
    cache_dir: str | None = None
    persist: bool = True
    frontier: bool = True
    batch_size: int = 4096
    incremental: bool = True
    max_cache_bytes: int | None = None

    def __post_init__(self):
        if self.workers <= 0:
            raise ConfigError("workers must be positive")
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if self.max_cache_bytes is not None and self.max_cache_bytes < 0:
            raise ConfigError("max_cache_bytes must be >= 0 (or null: unbounded)")

    @property
    def persistence_enabled(self) -> bool:
        """Whether this run reads/writes a disk cache store."""
        return self.cache and self.persist and self.cache_dir is not None


@dataclass(frozen=True)
class FannetConfig:
    """Top-level configuration for the FANNet pipeline."""

    train: TrainConfig = field(default_factory=TrainConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    verifier: VerifierConfig = field(default_factory=VerifierConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    num_features: int = 5
    input_scale: int = 50
    weight_scale: int = 1000

    def __post_init__(self):
        if self.num_features <= 0:
            raise ConfigError("num_features must be positive")
        if self.input_scale <= 0:
            raise ConfigError("input_scale must be positive")
        if self.weight_scale <= 0:
            raise ConfigError("weight_scale must be positive")

    def to_dict(self) -> dict:
        return asdict(self)
