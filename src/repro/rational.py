"""Exact rational arithmetic helpers.

The model-checking side of FANNet needs the *checked* model to agree with
the *deployed* model bit-for-bit.  Floating-point inference cannot offer
that, so the library carries an exact execution mode built on
:class:`fractions.Fraction`.  This module centralises conversions and the
small amount of linear algebra needed over rationals.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

Rational = Fraction

#: Default denominator bound used when snapping floats onto the rationals.
DEFAULT_DENOMINATOR_LIMIT = 10**6


def to_fraction(value, limit: int = DEFAULT_DENOMINATOR_LIMIT) -> Fraction:
    """Convert ``value`` (int, float, str or Fraction) to an exact Fraction.

    Floats are snapped with ``limit_denominator`` so that artifacts of the
    binary representation (e.g. ``0.1`` not being exact) do not leak into
    the formal model.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not rational scalars")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(limit)
    if isinstance(value, str):
        return Fraction(value)
    # numpy scalar types expose item()
    if hasattr(value, "item"):
        return to_fraction(value.item(), limit)
    raise TypeError(f"cannot convert {type(value).__name__} to Fraction")


def to_fraction_vector(values: Iterable, limit: int = DEFAULT_DENOMINATOR_LIMIT) -> list[Fraction]:
    """Convert an iterable of scalars to a list of exact Fractions."""
    return [to_fraction(v, limit) for v in values]


def to_fraction_matrix(rows: Iterable[Iterable], limit: int = DEFAULT_DENOMINATOR_LIMIT) -> list[list[Fraction]]:
    """Convert a 2-D iterable to a matrix (list of rows) of Fractions."""
    return [to_fraction_vector(row, limit) for row in rows]


def dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    """Exact dot product of two equal-length rational vectors."""
    if len(a) != len(b):
        raise ValueError(f"dot: length mismatch {len(a)} != {len(b)}")
    total = Fraction(0)
    for x, y in zip(a, b):
        total += x * y
    return total


def mat_vec(matrix: Sequence[Sequence[Fraction]], vector: Sequence[Fraction]) -> list[Fraction]:
    """Exact matrix-vector product ``matrix @ vector``."""
    return [dot(row, vector) for row in matrix]


def vec_add(a: Sequence[Fraction], b: Sequence[Fraction]) -> list[Fraction]:
    """Elementwise sum of two rational vectors."""
    if len(a) != len(b):
        raise ValueError(f"vec_add: length mismatch {len(a)} != {len(b)}")
    return [x + y for x, y in zip(a, b)]


def vec_scale(a: Sequence[Fraction], k: Fraction) -> list[Fraction]:
    """Multiply every component of ``a`` by scalar ``k``."""
    return [x * k for x in a]


def argmax_with_tiebreak(values: Sequence[Fraction]) -> int:
    """Index of the maximum; ties resolve to the *lowest* index.

    This mirrors the paper's output rule ``⟨L0 ≥ L1 → L0, L1 ≥ L0 → L1⟩``
    read as an ordered conditional: the first clause wins on equality.
    """
    if not values:
        raise ValueError("argmax of empty sequence")
    best_index = 0
    best_value = values[0]
    for index, value in enumerate(values[1:], start=1):
        if value > best_value:
            best_index = index
            best_value = value
    return best_index


def relative_noise(value: Fraction, percent: int | Fraction) -> Fraction:
    """Apply the paper's relative-noise channel ``X ± X·(ΔX/100)``.

    ``percent`` is the signed integer noise percentage; the result is
    exact: ``value * (100 + percent) / 100``.
    """
    return value * (Fraction(100) + Fraction(percent)) / Fraction(100)


def as_float(value: Fraction) -> float:
    """Lossy float view of a rational (for reporting only)."""
    return float(value)


def lcm_of_denominators(values: Iterable[Fraction]) -> int:
    """Least common multiple of all denominators (1 for an empty input).

    Used to rescale a rational constraint row to integers, which keeps the
    exact simplex pivots cheap.
    """
    result = 1
    for v in values:
        d = v.denominator
        g = _gcd(result, d)
        result = result // g * d
    return result


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
