"""The lint engine: walk paths, parse once, run rules, fold the report.

Self-hosting contract: this package lints the repository that ships it
(a tier-1 test asserts ``src``/``tests``/``benchmarks`` are clean), so
the engine itself obeys every rule it enforces — encodings pinned,
no clocks in identity code, and so on.

Baseline: ``--baseline FILE`` names a checked-in JSON audit of known
findings (shape: ``{"accepted": [{"code": ..., "path": ...}, ...]}``).
A finding matching an accepted ``(code, path basename)`` pair is
reported but does not fail the gate — that is what let the gate land
strict on day one while any residual debt was being burned down.  The
repo's checked-in baseline is empty and should stay that way.
"""

from __future__ import annotations

import ast
import json
import os
from pathlib import Path

from ..errors import ConfigError, DataError
from .context import FileContext
from .findings import Finding, LintReport
from .registry import Rule, selected_rules

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis"})

#: Findings about files that do not parse carry this pseudo-code.
PARSE_ERROR_CODE = "FAN000"


def expand_paths(paths: list[str | os.PathLike]) -> list[Path]:
    """Every ``*.py`` file under ``paths``, sorted, each exactly once.

    A named path that does not exist raises :class:`ConfigError` — a
    typoed ``fannet lint srx`` must not report "clean".
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.add(path)
        elif path.is_dir():
            for file in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(file.parts):
                    out.add(file)
        else:
            raise ConfigError(f"lint path {path} does not exist")
    return sorted(out)


def lint_file(path: Path, rules: list[Rule]) -> tuple[list[Finding], int]:
    """``(live findings, suppressed count)`` for one source file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return [
            Finding(
                path=str(path),
                line=err.lineno or 0,
                col=(err.offset or 0),
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {err.msg}",
            )
        ], 0
    ctx = FileContext.build(str(path), source, tree)
    findings: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.suppressed(finding.line, finding.code):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def load_baseline(path: str | os.PathLike) -> set[tuple[str, str]]:
    """Accepted ``(code, path basename)`` pairs from a baseline file.

    Strict: an unreadable or malformed baseline raises
    :class:`DataError` — a gate silently running without its audit
    list would fail open.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as err:
        raise DataError(f"cannot read lint baseline {path}: {err}") from None
    except json.JSONDecodeError as err:
        raise DataError(f"lint baseline {path} is not valid JSON: {err}") from None
    accepted = payload.get("accepted") if isinstance(payload, dict) else None
    if not isinstance(accepted, list):
        raise DataError(
            f"lint baseline {path} must be {{\"accepted\": [...]}}"
        )
    pairs: set[tuple[str, str]] = set()
    for entry in accepted:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("code"), str)
            or not isinstance(entry.get("path"), str)
        ):
            raise DataError(
                f"lint baseline {path}: every entry needs string "
                "'code' and 'path' fields"
            )
        pairs.add((entry["code"], Path(entry["path"]).name))
    return pairs


def lint_paths(
    paths: list[str | os.PathLike],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    baseline: set[tuple[str, str]] | None = None,
) -> LintReport:
    """Run the selected rules over every file under ``paths``."""
    try:
        rules = selected_rules(select, ignore)
    except ValueError as err:
        raise ConfigError(str(err)) from None
    report = LintReport()
    baseline = baseline or set()
    for path in expand_paths(paths):
        findings, suppressed = lint_file(path, rules)
        report.files += 1
        report.suppressed += suppressed
        for finding in findings:
            if (finding.code, Path(finding.path).name) in baseline:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort()
    report.baselined.sort()
    return report
