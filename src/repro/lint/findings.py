"""Finding and report containers of the invariant analyzer.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintReport` is everything one ``fannet lint`` invocation
learned: live findings (these fail the gate), baselined findings
(audited debt that does not), suppressed counts and the file census.
Both render to plain JSON so CI can archive the gate's verdict as an
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: code, location, human-readable message."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The one-line human rendering (``path:line:col: CODE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_payload(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Everything one lint invocation found, gate-relevant first."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings matched by the baseline file: audited, reported, non-fatal.
    baselined: list[Finding] = field(default_factory=list)
    #: Findings silenced by inline ``# lint: ok`` comments (count only).
    suppressed: int = 0
    files: int = 0

    @property
    def clean(self) -> bool:
        """Whether the gate passes (baselined debt does not fail it)."""
        return not self.findings

    def to_payload(self) -> dict:
        return {
            "clean": self.clean,
            "files": self.files,
            "suppressed": self.suppressed,
            "findings": [f.to_payload() for f in self.findings],
            "baselined": [f.to_payload() for f in self.baselined],
        }
