"""The rule-plugin registry.

A rule is a class with a ``code`` (``FANxxx``), a one-line ``summary``,
a ``rationale`` (the bug class that motivated it — every rule in this
repo exists because the bug actually shipped once), and a ``check``
generator yielding :class:`~repro.lint.findings.Finding` objects for
one :class:`~repro.lint.context.FileContext`.  Registration is a
decorator so a rule module is self-contained: importing it is enough
to make the rule selectable.
"""

from __future__ import annotations

from typing import Iterator

from .context import FileContext
from .findings import Finding


class Rule:
    """Base class: subclass, set the class attributes, implement check."""

    code: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node, message: str) -> Finding:
        """A Finding at ``node``'s location, tagged with this rule's code."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


#: code -> rule instance; populated by the @register decorator.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule to the registry (idempotent)."""
    if not cls.code or not cls.code.startswith("FAN"):
        raise ValueError(f"rule {cls.__name__} needs a FANxxx code")
    RULES[cls.code] = cls()
    return cls


def iter_rules() -> list[Rule]:
    """Every registered rule, code order."""
    from . import rules  # noqa: F401 -- importing registers the built-ins

    return [RULES[code] for code in sorted(RULES)]


def selected_rules(
    select: set[str] | None = None, ignore: set[str] | None = None
) -> list[Rule]:
    """The rule set one invocation runs (``--select`` beats ``--ignore``).

    Unknown codes raise ``ValueError`` — a typoed ``--select FAN01``
    must not silently lint with nothing.
    """
    rules = iter_rules()
    known = {rule.code for rule in rules}
    for requested in (select or set()) | (ignore or set()):
        if requested not in known:
            raise ValueError(
                f"unknown rule code {requested!r} (known: {', '.join(sorted(known))})"
            )
    if select:
        rules = [rule for rule in rules if rule.code in select]
    if ignore:
        rules = [rule for rule in rules if rule.code not in ignore]
    return rules
