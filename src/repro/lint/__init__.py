"""``fannet lint`` — the self-hosted invariant analyzer.

Pure-stdlib (``ast`` + ``tokenize``) static analysis encoding the
mechanical invariants this repository's guarantees rest on: pinned
encodings on artifact I/O (FAN001), canonical JSON on digest paths
(FAN002), bool-excluding integer validation (FAN003), event-loop
affinity of serve-plane state (FAN004) and clock/RNG-free identity
code (FAN005).  Each rule exists because the bug it targets actually
shipped in an earlier PR; the CI gate keeps the recurrence count at
three.

Usage::

    fannet lint [paths...] [--select CODES] [--ignore CODES]
                [--json FILE] [--baseline FILE] [--list-rules]

False positives are silenced inline::

    payload = path.read_text()  # lint: ok FAN001 (probing locale default)

and audited in bulk through the checked-in baseline file
(``lint-baseline.json``).  The repository lints itself clean — a
tier-1 test enforces it — so every suppression in the tree documents a
deliberate exception.
"""

from __future__ import annotations

from .engine import expand_paths, lint_file, lint_paths, load_baseline
from .findings import Finding, LintReport
from .registry import RULES, Rule, iter_rules, register, selected_rules

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "RULES",
    "expand_paths",
    "iter_rules",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "register",
    "selected_rules",
]
