"""FAN004 — mutation of loop-owned state from non-coroutine code.

Motivating bug (PR 7): worker threads evicted finished jobs from the
serve daemon's registry dict directly, racing the event-loop thread's
``summaries()`` iteration — a crash that only fires under concurrent
load.  The fix marshals every registry mutation through
``loop.call_soon_threadsafe``; this rule keeps it that way.

The rule is declaration-driven (it fires nowhere until a class opts
in), which is what makes it precise enough to gate CI:

- an attribute assignment carrying ``# lint: loop-owned`` in a class
  body declares that attribute's *structure* as owned by the asyncio
  event loop;
- a ``def`` line carrying ``# lint: loop-owned`` declares the method
  as loop-affine (it is only ever invoked on the loop thread — from a
  coroutine, or via ``call_soon_threadsafe``).

With declarations present, the rule flags, inside the declaring class:

- any mutation of a loop-owned attribute — assignment, augmented
  assignment, ``del``, subscript writes, or calls of known mutating
  container methods (``append``/``pop``/``update``/...) — from a
  plain (non-``async``, unmarked) method;
- any *direct call* of a loop-owned method from a plain unmarked
  method — the exact shape of the PR-7 race.  Passing the method as a
  callback (``loop.call_soon_threadsafe(self._evict, ...)``) is a
  reference, not a call, and is allowed.

``async def`` methods run on the loop by definition; ``__init__`` runs
before any concurrency exists.  Both are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

#: Container methods that mutate their receiver's structure.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "remove", "pop",
        "popleft", "popitem", "clear", "update", "setdefault", "add",
        "discard", "put_nowait", "sort", "reverse",
    }
)


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attr(target: ast.expr) -> str | None:
    """``X`` when ``target`` writes ``self.X`` or ``self.X[...]``."""
    attr = _self_attr(target)
    if attr is not None:
        return attr
    if isinstance(target, ast.Subscript):
        return _self_attr(target.value)
    return None


def _walk_sync(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested ``async def`` bodies
    (those run on the loop and must not inherit the caller's verdict)."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        stack.extend(
            child
            for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.AsyncFunctionDef)
        )
        yield node


@register
class LoopAffinityRule(Rule):
    code = "FAN004"
    name = "loop-affinity"
    summary = "loop-owned state mutated outside the event-loop thread"
    rationale = (
        "worker threads resizing the serve registry dict raced the "
        "loop's iteration (PR 7 bug class); mutations must marshal "
        "through call_soon_threadsafe"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        owned_attrs: set[str] = set()
        declaration_lines: set[int] = set()
        for method in methods:
            for stmt in ast.walk(method):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    if not ctx.marked(stmt.lineno, "loop-owned"):
                        continue
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    )
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            owned_attrs.add(attr)
                            declaration_lines.add(stmt.lineno)
        owned_methods = {
            method.name for method in methods if ctx.marked(method.lineno, "loop-owned")
        }
        if not owned_attrs and not owned_methods:
            return
        for method in methods:
            if isinstance(method, ast.AsyncFunctionDef):
                continue  # coroutines run on the loop by definition
            if method.name in owned_methods or method.name == "__init__":
                continue
            yield from self._check_method(
                ctx, method, owned_attrs, owned_methods, declaration_lines
            )

    def _check_method(
        self,
        ctx: FileContext,
        method: ast.FunctionDef,
        owned_attrs: set[str],
        owned_methods: set[str],
        declaration_lines: set[int],
    ) -> Iterator[Finding]:
        for node in _walk_sync(method):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if node.lineno in declaration_lines:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = _mutated_attr(target)
                    if attr in owned_attrs:
                        yield self._race(ctx, node, attr, method.name, "writes")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _mutated_attr(target)
                    if attr in owned_attrs:
                        yield self._race(ctx, node, attr, method.name, "deletes from")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = _self_attr(node.func.value)
                if receiver in owned_attrs and node.func.attr in _MUTATORS:
                    yield self._race(
                        ctx,
                        node,
                        receiver,
                        method.name,
                        f"calls .{node.func.attr}() on",
                    )
                called = _self_attr(node.func)
                if called in owned_methods:
                    yield self.finding(
                        ctx,
                        node,
                        f"{method.name}() calls loop-owned method "
                        f"self.{called}() directly — marshal through "
                        "loop.call_soon_threadsafe (or mark the caller "
                        "# lint: loop-owned if it only runs on the loop)",
                    )

    def _race(
        self, ctx: FileContext, node, attr: str, method: str, verb: str
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"{method}() {verb} loop-owned self.{attr} from non-coroutine "
            "code — marshal through loop.call_soon_threadsafe (or mark "
            "the method # lint: loop-owned if it only runs on the loop)",
        )
