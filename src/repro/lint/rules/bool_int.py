"""FAN003 — ``isinstance(x, int)`` validation that lets ``bool`` through.

Motivating bug (PR 6): ``bool`` is a subclass of ``int``, so a ledger
shard field of ``[true, true]`` parsed as shard ``(1, 1)`` and silently
vouched for shard 1/1's results.  Any payload validation that means
"integer" must exclude ``bool`` explicitly.

Flags ``isinstance(X, int)`` (or a tuple classinfo containing ``int``
but not ``bool``) when the enclosing function (or module scope) never
tests ``isinstance(X, bool)`` for the same target expression.  The
guard may live anywhere in the same scope — an early ``if
isinstance(value, bool): raise`` a few lines up counts.  Explicitly
accepting bools with ``isinstance(X, (int, bool))`` is not flagged:
that is a decision, not an oversight.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register


def _isinstance_parts(node: ast.Call) -> tuple[ast.expr, list[str]] | None:
    """``(target, class names)`` of a plain isinstance call, else None."""
    if (
        not isinstance(node.func, ast.Name)
        or node.func.id != "isinstance"
        or len(node.args) != 2
    ):
        return None
    target, classinfo = node.args
    names: list[str] = []
    specs = classinfo.elts if isinstance(classinfo, ast.Tuple) else [classinfo]
    for spec in specs:
        if isinstance(spec, ast.Name):
            names.append(spec.id)
        elif isinstance(spec, ast.Attribute):
            names.append(spec.attr)
    return target, names


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Every function scope plus the module scope (nested defs excluded
    from their parent so a guard in an inner closure does not vouch for
    the outer function)."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _calls_in_scope(body: list[ast.stmt]) -> Iterator[ast.Call]:
    scope_breaks = (ast.FunctionDef, ast.AsyncFunctionDef)
    stack = [stmt for stmt in body if not isinstance(stmt, scope_breaks)]
    while stack:
        node = stack.pop()
        stack.extend(
            child
            for child in ast.iter_child_nodes(node)
            if not isinstance(child, scope_breaks)  # nested scope: visited separately
        )
        if isinstance(node, ast.Call):
            yield node


@register
class BoolIntRule(Rule):
    code = "FAN003"
    name = "bool-int"
    summary = "isinstance(x, int) validation must exclude bool"
    rationale = (
        'bool ⊂ int: a ledger shard of [true, true] parsed as shard '
        "(1, 1) and vouched for results it never saw (PR 6 bug class)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for _, body in _scopes(ctx.tree):
            int_checks: list[tuple[ast.Call, ast.expr]] = []
            bool_guarded: set[str] = set()
            for call in _calls_in_scope(body):
                parts = _isinstance_parts(call)
                if parts is None:
                    continue
                target, names = parts
                if "bool" in names:
                    bool_guarded.add(ast.dump(target))
                elif "int" in names:
                    int_checks.append((call, target))
            for call, target in int_checks:
                if ast.dump(target) not in bool_guarded:
                    yield self.finding(
                        ctx,
                        call,
                        f"isinstance({ast.unparse(target)}, int) accepts bool "
                        "(bool ⊂ int) — add `not isinstance(..., bool)` or "
                        "accept bools explicitly with (int, bool)",
                    )
