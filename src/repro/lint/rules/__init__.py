"""Built-in lint rules.

Importing this package registers every built-in rule with
:mod:`repro.lint.registry`.  Each module is one rule targeting one bug
class this repository has actually shipped — see the module docstrings
for the war stories, and ``docs/lint-rules.md`` for the catalog.
"""

from __future__ import annotations

from . import bool_int  # noqa: F401
from . import canonical_json  # noqa: F401
from . import determinism  # noqa: F401
from . import encoding  # noqa: F401
from . import loop_affinity  # noqa: F401
