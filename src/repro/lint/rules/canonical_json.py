"""FAN002 — raw ``json.dumps`` on a digest or canonical-artifact path.

Motivating bug class: the campaign ledger digests the *canonical JSON
rendering* of each task outcome (``sort_keys=True``), and the batch
plane's byte-identical-merge guarantee holds only because every
artifact writer serialises with sorted keys.  One raw ``json.dumps``
reaching a digest flips ledger ``ok`` verdicts to ``corrupt`` the
moment dict insertion order changes — a silent-state-corruption bug,
not a crash.

Flags:

- in modules that declare the invariant with a ``# lint:
  canonical-json`` pragma: every ``json.dumps`` / ``json.dump`` call
  without ``sort_keys=True`` (a non-literal ``sort_keys=expr`` is
  accepted — the module author is computing it deliberately);
- in **every** module: a ``hashlib.<algo>(...)`` call whose argument
  expression contains a ``json.dumps`` without ``sort_keys=True`` —
  digesting unsorted JSON is wrong whether or not the module opted in.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

_DUMPERS = ("json.dumps", "json.dump")


def _is_dumps(ctx: FileContext, call: ast.Call) -> bool:
    return ctx.resolve(call.func) in _DUMPERS


def _sorts_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            if isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
            return True  # computed sort_keys: deliberate, accept
        if keyword.arg is None:
            return True  # **kwargs may carry it: undecidable, accept
    return False


@register
class CanonicalJsonRule(Rule):
    code = "FAN002"
    name = "canonical-json"
    summary = "digest/artifact JSON must serialise with sort_keys=True"
    rationale = (
        "a raw json.dumps feeding a SHA-256 ledger digest flips ok "
        "verdicts to corrupt when dict insertion order changes"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        declaring = ctx.declares("canonical-json")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if declaring and _is_dumps(ctx, node) and not _sorts_keys(node):
                yield self.finding(
                    ctx,
                    node,
                    "json.dumps without sort_keys=True in a module declaring "
                    "# lint: canonical-json — artifacts here promise "
                    "byte-stable serialisation",
                )
            elif not declaring:
                yield from self._check_digest_feed(ctx, node)

    def _check_digest_feed(
        self, ctx: FileContext, call: ast.Call
    ) -> Iterator[Finding]:
        resolved = ctx.resolve(call.func)
        if resolved is None or not resolved.startswith("hashlib."):
            return
        for arg in [*call.args, *[k.value for k in call.keywords]]:
            for inner in ast.walk(arg):
                if (
                    isinstance(inner, ast.Call)
                    and _is_dumps(ctx, inner)
                    and not _sorts_keys(inner)
                ):
                    yield self.finding(
                        ctx,
                        inner,
                        "json.dumps without sort_keys=True feeding a hashlib "
                        "digest — the digest must not depend on dict "
                        "insertion order",
                    )
