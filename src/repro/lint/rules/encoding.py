"""FAN001 — text I/O without a pinned encoding.

Motivating bug (PR 6): campaign ledgers written as UTF-8 were read back
with ``Path.read_text()`` — locale-dependent — so a resume on a machine
with a non-UTF-8 locale silently degraded into full re-execution (or,
worse, mis-decoded artifact bytes feeding digest checks).  Every text
read/write of an artifact must pin ``encoding="utf-8"``.

Flags:

- ``X.read_text()`` / ``X.write_text(data)`` without an encoding
  argument (positional or keyword), or with a literal ``encoding=None``;
- builtin ``open(...)`` / ``io.open(...)`` in text mode (no ``"b"`` in
  a literal mode string, or no mode at all) without an encoding.

A non-literal mode expression is skipped — the rule only claims what it
can prove from the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register


def _has_encoding_kw(call: ast.Call) -> bool | None:
    """True/False when decidable; None when ``encoding=<non-literal None>``
    style dynamism makes the call undecidable (skip, do not guess)."""
    for keyword in call.keywords:
        if keyword.arg == "encoding":
            if isinstance(keyword.value, ast.Constant) and keyword.value.value is None:
                return False  # encoding=None is the locale default, spelled out
            return True
        if keyword.arg is None:
            return None  # **kwargs may carry encoding: undecidable
    return False


def _literal_mode(call: ast.Call) -> str | None:
    """The mode string of an ``open`` call when it is a literal."""
    mode_node: ast.expr | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"  # open() defaults to text read
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None  # dynamic mode: not decidable


@register
class EncodingPinRule(Rule):
    code = "FAN001"
    name = "encoding-pin"
    summary = 'text-mode I/O must pin encoding="utf-8"'
    rationale = (
        "locale-dependent read_text() on a UTF-8 JSON ledger silently "
        "degraded resume into full re-execution (PR 6 bug class)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "read_text",
                "write_text",
            ):
                yield from self._check_text_helper(ctx, node, func.attr)
            elif (isinstance(func, ast.Name) and func.id == "open") or (
                ctx.resolve(func) == "io.open"
            ):
                yield from self._check_open(ctx, node)

    def _check_text_helper(
        self, ctx: FileContext, call: ast.Call, name: str
    ) -> Iterator[Finding]:
        # Path.read_text(encoding=...) / Path.write_text(data, encoding=...):
        # the encoding is also reachable positionally.
        positional_encoding = len(call.args) >= (1 if name == "read_text" else 2)
        if positional_encoding:
            return
        pinned = _has_encoding_kw(call)
        if pinned is False:
            yield self.finding(
                ctx,
                call,
                f'{name}() without encoding= — text artifacts must pin '
                'encoding="utf-8", never the locale default',
            )

    def _check_open(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        mode = _literal_mode(call)
        if mode is None or "b" in mode:
            return  # binary (or undecidable) mode needs no encoding
        if len(call.args) >= 4:  # open(file, mode, buffering, encoding, ...)
            return
        if _has_encoding_kw(call) is False:
            yield self.finding(
                ctx,
                call,
                f'open(..., mode={mode!r}) in text mode without encoding= — '
                'pin encoding="utf-8" or use binary mode',
            )
