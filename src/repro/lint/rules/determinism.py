"""FAN005 — nondeterminism inside fingerprint/digest/identity code.

Motivating invariant: the entire byte-identical-artifact guarantee
rests on fingerprints, digests and canonical payloads being pure
functions of their inputs.  One ``time.time()`` or global-RNG draw
inside that code and every cache context, task identity and ledger
digest silently churns between runs — the reports still *look*
plausible, they just stop being reproducible (silent state corruption,
the failure mode the fault-tolerance literature warns about).

Scope: functions whose name mentions ``fingerprint``, ``digest``,
``identity``, ``canonical`` or ``jsonable`` (the repo's naming
convention for identity-bearing code).  Inside them, flags calls to:

- wall/process clocks — ``time.time``/``time_ns``/``monotonic``/
  ``perf_counter`` (+ ``_ns`` variants), ``datetime.now``/``utcnow``/
  ``today``;
- process-global randomness — any ``random.*`` module call, the legacy
  ``numpy.random.*`` global-state API (``np.random.seed``/``rand``/
  ...), ``uuid.uuid1``/``uuid4``, ``os.urandom``, ``secrets.*``.

Explicitly seeded numpy generators (``default_rng``, ``Generator``,
``SeedSequence``, ``PCG64``, ``Philox``) are *allowed*: deriving a
seed from ``(base_seed, index)`` through ``SeedSequence`` is exactly
how this repo keeps stochastic engines deterministic.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

_SCOPE_RE = re.compile(r"fingerprint|digest|identity|canonical|jsonable")

_CLOCKS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    }
)
_BANNED_EXACT = frozenset({"uuid.uuid1", "uuid.uuid4", "os.urandom"})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
#: Seeded-generator constructors the numpy.random namespace may provide.
_NUMPY_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
     "MT19937", "BitGenerator"}
)


def _violation(resolved: str) -> str | None:
    """Why ``resolved`` (a dotted call target) is nondeterministic."""
    if resolved in _CLOCKS:
        return "reads the clock"
    if resolved in _BANNED_EXACT:
        return "draws entropy from the OS"
    parts = resolved.split(".")
    if parts[-1] in _DATETIME_FNS and "datetime" in parts[:-1] or (
        parts[0] == "datetime" and parts[-1] in _DATETIME_FNS
    ):
        return "reads the clock"
    if parts[0] == "random":
        return "uses the process-global random stream"
    if parts[0] == "secrets":
        return "draws entropy from the OS"
    if (
        parts[0] == "numpy"
        and len(parts) >= 3
        and parts[1] == "random"
        and parts[2] not in _NUMPY_ALLOWED
    ):
        return "uses numpy's process-global random state"
    return None


@register
class DeterminismRule(Rule):
    code = "FAN005"
    name = "determinism"
    summary = "no clocks or global RNG inside identity-bearing code"
    rationale = (
        "a clock read or global-RNG draw inside fingerprint/digest code "
        "churns every cache context and ledger digest between runs"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _SCOPE_RE.search(node.name):
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                resolved = ctx.resolve(call.func)
                if resolved is None:
                    continue
                why = _violation(resolved)
                if why is not None:
                    yield self.finding(
                        ctx,
                        call,
                        f"{resolved}() {why} inside identity-bearing "
                        f"function {node.name}() — fingerprints, digests "
                        "and canonical payloads must be pure functions of "
                        "their inputs",
                    )
