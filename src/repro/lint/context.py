"""Per-file analysis context shared by every lint rule.

One :class:`FileContext` per source file carries the parsed AST plus
the two cross-cutting facts rules keep needing:

- **Directives** — the ``# lint: ...`` comment grammar, extracted with
  :mod:`tokenize` so strings containing lint-like text never count:

  - ``# lint: ok FAN001 FAN003 (reason)`` — suppress the named codes on
    this line (or the directly following line, for statements whose
    flagged node starts one line below the comment).  Codes optional:
    a bare ``# lint: ok`` suppresses every rule.  The parenthesised
    reason is free text, recommended so the suppression audits itself.
  - ``# lint: loop-owned`` — declares the attribute assigned on this
    line (or the function defined on it) as owned by the asyncio event
    loop; rule FAN004 enforces the affinity.
  - ``# lint: canonical-json`` — declares that every ``json.dumps`` in
    this module feeds byte-stable artifacts or digests; rule FAN002
    then requires ``sort_keys=True`` on each of them.

- **Import aliases** — which local names are the ``json`` / ``hashlib``
  / ``random`` / ``numpy`` / ... modules, so rules match ``import json
  as json_module`` and friends instead of pattern-matching on literal
  module names.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_DIRECTIVE_RE = re.compile(r"#\s*lint:\s*(?P<body>.+?)\s*$")
_OK_RE = re.compile(
    r"ok(?P<codes>(?:\s+FAN\d{3})*)\s*(?:\((?P<reason>.*)\))?\s*$"
)


@dataclass(frozen=True)
class Directive:
    """One parsed ``# lint:`` comment."""

    kind: str  # "ok" | "loop-owned" | "canonical-json"
    codes: frozenset[str] = frozenset()  # empty = all codes (kind "ok")
    reason: str = ""


@dataclass
class FileContext:
    """Parsed source plus directives and import aliases, rule-ready."""

    path: str
    source: str
    tree: ast.Module
    directives: dict[int, Directive] = field(default_factory=dict)
    #: local name -> imported module path (e.g. {"json_module": "json",
    #: "np": "numpy", "dumps": "json.dumps"} — from-imports map the
    #: bound name to the full dotted origin).
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "FileContext":
        ctx = cls(path=path, source=source, tree=tree)
        ctx._collect_directives()
        ctx._collect_aliases()
        return ctx

    # -- directives --------------------------------------------------------------

    def _collect_directives(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # unparsable token stream: no directives, rules still run
        for line, text in comments:
            match = _DIRECTIVE_RE.search(text)
            if match is None:
                continue
            directive = self._parse_directive(match.group("body"))
            if directive is not None:
                self.directives[line] = directive

    @staticmethod
    def _parse_directive(body: str) -> Directive | None:
        if body.startswith("ok"):
            match = _OK_RE.match(body)
            if match is None:
                return None
            codes = frozenset(match.group("codes").split())
            return Directive("ok", codes, (match.group("reason") or "").strip())
        # Non-"ok" directives may carry trailing prose ("# lint:
        # loop-owned — see the threading model"): only the first word
        # is the keyword.
        keyword = body.split()[0] if body.split() else ""
        if keyword in ("loop-owned", "canonical-json"):
            return Directive(keyword)
        return None

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is inline-silenced at ``line``.

        A suppression comment counts on its own line and on the line
        directly above the flagged node, so long calls can carry the
        comment on their opening line.
        """
        for at in (line, line - 1):
            directive = self.directives.get(at)
            if (
                directive is not None
                and directive.kind == "ok"
                and (not directive.codes or code in directive.codes)
            ):
                return True
        return False

    def marked(self, line: int, kind: str) -> bool:
        """Whether a non-``ok`` directive of ``kind`` sits on ``line``."""
        directive = self.directives.get(line)
        return directive is not None and directive.kind == kind

    def declares(self, kind: str) -> bool:
        """Whether the module carries a ``kind`` pragma anywhere."""
        return any(d.kind == kind for d in self.directives.values())

    # -- imports -----------------------------------------------------------------

    def _collect_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    self.aliases[name.asname or name.name.split(".")[0]] = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    self.aliases[name.asname or name.name] = (
                        f"{node.module}.{name.name}"
                    )

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted module path of a Name/Attribute chain, alias-resolved.

        ``json_module.dumps`` resolves to ``"json.dumps"`` under
        ``import json as json_module``; ``np.random.default_rng`` to
        ``"numpy.random.default_rng"``.  Returns ``None`` for anything
        that is not a plain dotted chain rooted at an imported name.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))
