"""Series generators for every figure panel in the paper.

Each function returns plain dict/list series — exactly what the paper
plots — so the benchmarks can print them and the tests can assert their
shape.
"""

from __future__ import annotations

from ..core.bias import BiasReport
from ..core.sensitivity import SensitivityReport
from ..core.tolerance import ToleranceReport


def fig3_state_space_series(
    no_noise_counts: tuple[int, int],
    noise_counts: tuple[int, int],
) -> dict:
    """Fig. 3(b,c): FSM growth.  Paper: (3, 6) → (65, 4160)."""
    return {
        "no_noise": {
            "states": no_noise_counts[0],
            "transitions": no_noise_counts[1],
        },
        "noise_0_1_percent": {
            "states": noise_counts[0],
            "transitions": noise_counts[1],
        },
        "growth_factor_states": noise_counts[0] / max(1, no_noise_counts[0]),
        "growth_factor_transitions": noise_counts[1] / max(1, no_noise_counts[1]),
    }


def fig4_tolerance_series(
    report: ToleranceReport, percents: list[int] | None = None
) -> dict:
    """Fig. 4 top/bottom-left: #misclassified inputs per noise range."""
    percents = percents or [5, 10, 15, 20, 25, 30, 35, 40]
    counts = report.misclassification_counts(percents)
    return {
        "noise_percents": percents,
        "misclassified_inputs": [counts[p] for p in percents],
        "tolerance": report.tolerance,
        "monotone": all(
            counts[a] <= counts[b]
            for a, b in zip(percents, percents[1:])
        ),
    }


def fig4_bias_series(report: BiasReport) -> dict:
    """Fig. 4 top-right: flip directions vs the training-set census."""
    return {
        "training_majority_label": report.training_majority_label,
        "training_majority_share": report.training_majority_share,
        "flip_matrix": {
            f"L{true}->L{wrong}": count
            for (true, wrong), count in sorted(report.flip_matrix.items())
        },
        "majority_flip_share": report.majority_flip_share,
        "bias_confirmed": report.bias_confirmed,
    }


def fig4_sensitivity_series(report: SensitivityReport) -> dict:
    """Fig. 4 right column: per-node signed counterexample counts."""
    return {
        "noise_percent": report.noise_percent,
        "nodes": [
            {
                "node": f"i{n.node + 1}",
                "positive": n.positive,
                "negative": n.negative,
                "skew": round(n.skew, 4),
                "insensitive_to_positive": n.insensitive_to_positive,
                "insensitive_to_negative": n.insensitive_to_negative,
            }
            for n in report.nodes
        ],
        "one_sided_nodes": [f"i{n + 1}" for n in report.one_sided_nodes()],
    }


def fig4_boundary_series(profile: dict[int, int | None], ceiling: int) -> dict:
    """Fig. 4 top-middle: per-input minimal flipping noise (None = robust)."""
    finite = [v for v in profile.values() if v is not None]
    return {
        "per_input_min_flip": {str(k): v for k, v in sorted(profile.items())},
        "search_ceiling": ceiling,
        "robust_inputs": sum(1 for v in profile.values() if v is None),
        "susceptible_inputs": len(finite),
        "min": min(finite) if finite else None,
        "max": max(finite) if finite else None,
        "spread_exceeds_50": any(
            v is None or v > 50 for v in profile.values()
        ),
    }
