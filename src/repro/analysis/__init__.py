"""Reporting and figure regeneration (system S11 in DESIGN.md).

Turns analysis reports into the tables and ASCII series matching each
panel of the paper's Fig. 3 and Fig. 4, plus JSON experiment records so
EXPERIMENTS.md numbers are regenerable.
"""

from .tables import format_table
from .charts import horizontal_bar_chart
from .compare import bias_delta_table, comparison_tables, min_tolerance_table
from .records import ExperimentRecord, load_record, save_record
from .figures import (
    fig3_state_space_series,
    fig4_boundary_series,
    fig4_sensitivity_series,
    fig4_tolerance_series,
    fig4_bias_series,
)

__all__ = [
    "format_table",
    "horizontal_bar_chart",
    "bias_delta_table",
    "comparison_tables",
    "min_tolerance_table",
    "ExperimentRecord",
    "save_record",
    "load_record",
    "fig3_state_space_series",
    "fig4_tolerance_series",
    "fig4_bias_series",
    "fig4_sensitivity_series",
    "fig4_boundary_series",
]
