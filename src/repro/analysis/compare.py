"""Cross-network comparison tables for merged batch reports.

Renders the ``comparison`` series a merged batch
:class:`~repro.analysis.records.ExperimentRecord` carries (see
:meth:`repro.service.BatchService.merge`) as the plain-text tables the
``fannet batch merge`` CLI prints: one row per job, so tolerance
profiles and training-bias evidence line up across networks the way the
related cross-model studies (Duddu et al., Jonasson et al.) present
theirs.
"""

from __future__ import annotations

from .tables import format_table


def min_tolerance_table(comparison: dict) -> str:
    """Per-job noise-tolerance distribution table.

    ``tolerance`` is the network-wide guarantee (largest ±Δx with no
    counterexample for any input); min/median/max summarise the
    distribution of per-input minimal flip percentages.
    """
    rows = [
        (
            entry["job"],
            f"±{entry['tolerance']}%",
            entry["min_flip_min"],
            entry["min_flip_median"],
            entry["min_flip_max"],
            f"{entry['robust_at_ceiling']}/{entry['inputs']}",
        )
        for entry in comparison.get("min_tolerance", [])
    ]
    if not rows:
        return "min-tolerance comparison: no tolerance analyses in this batch"
    return format_table(
        ("job", "tolerance", "min", "median", "max", "robust@ceiling"),
        rows,
        title="min-tolerance distribution per network:",
    )


def bias_delta_table(comparison: dict) -> str:
    """Per-job training-bias table: flip share vs training majority share.

    ``delta`` > 0 means noise-induced flips land on the training
    majority class more often than its dataset share alone predicts —
    the paper's training-bias signature, comparable across networks.
    """
    rows = [
        (
            entry["job"],
            f"±{entry['percent']}%",
            entry["vectors"],
            entry["training_majority_share"],
            entry["majority_flip_share"],
            entry["delta"],
            "yes" if entry["confirmed"] else "no",
        )
        for entry in comparison.get("bias_delta", [])
    ]
    if not rows:
        return "bias-delta comparison: no extraction analyses in this batch"
    return format_table(
        ("job", "range", "vectors", "train share", "flip share", "delta", "bias?"),
        rows,
        title="per-class bias delta per network:",
    )


def comparison_tables(comparison: dict) -> str:
    """Both cross-network tables, ready to print."""
    return "\n\n".join(
        (min_tolerance_table(comparison), bias_delta_table(comparison))
    )
