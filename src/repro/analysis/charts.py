"""ASCII bar charts for terminal-rendered figures."""

from __future__ import annotations

from typing import Mapping


def horizontal_bar_chart(
    series: Mapping[object, float],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Render label → value as horizontal bars scaled to ``width``."""
    if width <= 0:
        raise ValueError("width must be positive")
    lines = [title] if title else []
    if not series:
        lines.append("(empty series)")
        return "\n".join(lines)
    peak = max(abs(float(v)) for v in series.values())
    label_width = max(len(str(k)) for k in series)
    for key, value in series.items():
        value = float(value)
        bar_length = 0 if peak == 0 else round(abs(value) / peak * width)
        bar = "#" * bar_length
        lines.append(
            f"{str(key).rjust(label_width)} | {bar} {value:g}{unit}"
        )
    return "\n".join(lines)
