"""JSON experiment records.

Every benchmark writes one of these next to its textual output so the
numbers in EXPERIMENTS.md can be regenerated and diffed mechanically.
"""

# lint: canonical-json — every JSON payload this module emits is
# digest- or artifact-bound and must serialise byte-stably.
from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import DataError

RECORD_VERSION = 1


@dataclass
class ExperimentRecord:
    """One experiment run: identity, parameters, measured series."""

    experiment_id: str  # e.g. "E2-fig4-noise-tolerance"
    description: str = ""
    parameters: dict = field(default_factory=dict)
    measured: dict = field(default_factory=dict)
    expected_shape: str = ""  # the qualitative claim being reproduced
    version: int = RECORD_VERSION

    def matches_shape(self) -> bool | None:
        """Subclass-free convention: benchmarks set measured['shape_holds']."""
        value = self.measured.get("shape_holds")
        return bool(value) if value is not None else None


def save_record(record: ExperimentRecord, path: str | Path) -> None:
    """Write a record as JSON with a byte-stable layout.

    ``sort_keys`` makes the serialisation independent of dict insertion
    order, which is what lets the batch service promise bit-identical
    merged reports for every shard layout (see
    :meth:`repro.service.BatchService.merge`).
    """
    Path(path).write_text(
        json.dumps(asdict(record), indent=2, sort_keys=True, default=str),
        encoding="utf-8",
    )


def load_record(path: str | Path) -> ExperimentRecord:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise DataError(f"not a valid experiment record: {err}") from None
    if payload.get("version") != RECORD_VERSION:
        raise DataError(f"unsupported record version {payload.get('version')}")
    return ExperimentRecord(
        experiment_id=payload["experiment_id"],
        description=payload.get("description", ""),
        parameters=payload.get("parameters", {}),
        measured=payload.get("measured", {}),
        expected_shape=payload.get("expected_shape", ""),
    )
