"""Plain-text table rendering."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Fixed-width table with a header rule; values via ``str``."""
    if not headers:
        raise ValueError("a table needs headers")
    columns = len(headers)
    rendered_rows = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
        rendered_rows.append([_cell(value) for value in row])

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "—"
    return str(value)
