"""Binary Decision Diagram substrate (system S7 in DESIGN.md).

Reduced Ordered BDDs with a unique table and memoised ITE, in the CUDD
tradition (no complement edges — clarity over constant factors).  Used by
the BDD-based symbolic model-checking engine, mirroring the paper's
discussion of BDD vs SAT model checkers (§III-B).
"""

from .manager import BddManager, BddRef

__all__ = ["BddManager", "BddRef"]
