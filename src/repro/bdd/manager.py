"""ROBDD manager.

Nodes are integers; 0 and 1 are the terminals.  Internal nodes live in a
unique table keyed by ``(level, low, high)``, so structural equality is
pointer equality — the invariant every BDD algorithm relies on.
Variables are identified by *level* (an int fixing the global order); the
caller maps names to levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ModelCheckingError

FALSE_NODE = 0
TRUE_NODE = 1


@dataclass(frozen=True)
class BddRef:
    """A handle pairing a node id with its manager (safety in APIs)."""

    manager: "BddManager"
    node: int

    def __and__(self, other: "BddRef") -> "BddRef":
        self._check(other)
        return BddRef(self.manager, self.manager.apply_and(self.node, other.node))

    def __or__(self, other: "BddRef") -> "BddRef":
        self._check(other)
        return BddRef(self.manager, self.manager.apply_or(self.node, other.node))

    def __invert__(self) -> "BddRef":
        return BddRef(self.manager, self.manager.apply_not(self.node))

    def __xor__(self, other: "BddRef") -> "BddRef":
        self._check(other)
        return BddRef(self.manager, self.manager.apply_xor(self.node, other.node))

    def iff(self, other: "BddRef") -> "BddRef":
        self._check(other)
        return BddRef(self.manager, self.manager.apply_iff(self.node, other.node))

    def implies(self, other: "BddRef") -> "BddRef":
        return (~self) | other

    def _check(self, other: "BddRef") -> None:
        if self.manager is not other.manager:
            raise ModelCheckingError("BDD operands belong to different managers")

    @property
    def is_false(self) -> bool:
        return self.node == FALSE_NODE

    @property
    def is_true(self) -> bool:
        return self.node == TRUE_NODE


class BddManager:
    """Unique-table ROBDD manager with memoised ITE."""

    def __init__(self):
        # node id -> (level, low, high); ids 0/1 are terminals.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._quant_cache: dict[tuple[int, frozenset[int], bool], int] = {}
        self._rename_cache: dict[tuple[int, tuple[tuple[int, int], ...]], int] = {}

    # -- construction ---------------------------------------------------------

    def false(self) -> BddRef:
        return BddRef(self, FALSE_NODE)

    def true(self) -> BddRef:
        return BddRef(self, TRUE_NODE)

    def var(self, level: int) -> BddRef:
        """BDD for the single variable at ``level``."""
        return BddRef(self, self._mk(level, FALSE_NODE, TRUE_NODE))

    def nvar(self, level: int) -> BddRef:
        """BDD for the negated variable at ``level``."""
        return BddRef(self, self._mk(level, TRUE_NODE, FALSE_NODE))

    def _mk(self, level: int, low: int, high: int) -> int:
        if level < 0:
            raise ModelCheckingError("variable level must be non-negative")
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _level(self, node: int) -> int:
        if node <= TRUE_NODE:
            return 1 << 60  # terminals sit below every variable
        return self._nodes[node][0]

    # -- core: if-then-else ------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """ITE(f, g, h) = (f ∧ g) ∨ (¬f ∧ h); every boolean op reduces to it."""
        if f == TRUE_NODE:
            return g
        if f == FALSE_NODE:
            return h
        if g == h:
            return g
        if g == TRUE_NODE and h == FALSE_NODE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(f), self._level(g), self._level(h))
        f_low, f_high = self._cofactors(f, level)
        g_low, g_high = self._cofactors(g, level)
        h_low, h_high = self._cofactors(h, level)
        result = self._mk(
            level,
            self.ite(f_low, g_low, h_low),
            self.ite(f_high, g_high, h_high),
        )
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> tuple[int, int]:
        if self._level(node) != level:
            return node, node
        _, low, high = self._nodes[node]
        return low, high

    # -- boolean operations ----------------------------------------------------

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE_NODE, TRUE_NODE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE_NODE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE_NODE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.apply_not(g))

    # -- quantification -----------------------------------------------------------

    def exists(self, levels: Iterable[int], f: int) -> int:
        """∃ levels . f"""
        return self._quantify(f, frozenset(levels), existential=True)

    def forall(self, levels: Iterable[int], f: int) -> int:
        """∀ levels . f"""
        return self._quantify(f, frozenset(levels), existential=False)

    def _quantify(self, f: int, levels: frozenset[int], existential: bool) -> int:
        if f <= TRUE_NODE or not levels:
            return f
        key = (f, levels, existential)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        level, low, high = self._nodes[f]
        low_q = self._quantify(low, levels, existential)
        high_q = self._quantify(high, levels, existential)
        if level in levels:
            result = (
                self.apply_or(low_q, high_q)
                if existential
                else self.apply_and(low_q, high_q)
            )
        else:
            result = self._mk(level, low_q, high_q)
        self._quant_cache[key] = result
        return result

    # -- renaming (for image computation) ------------------------------------------

    def rename(self, f: int, mapping: dict[int, int]) -> int:
        """Substitute variable levels according to ``mapping``.

        Mapping must be order-preserving between the source and target
        levels (true for the interleaved current/next convention used by
        the symbolic checker); this keeps renaming a single traversal.
        """
        items = tuple(sorted(mapping.items()))
        ordered = [target for _, target in items]
        if ordered != sorted(ordered):
            raise ModelCheckingError("rename mapping must preserve variable order")
        return self._rename(f, items)

    def _rename(self, f: int, items: tuple[tuple[int, int], ...]) -> int:
        if f <= TRUE_NODE:
            return f
        key = (f, items)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        level, low, high = self._nodes[f]
        new_level = dict(items).get(level, level)
        result = self._mk(new_level, self._rename(low, items), self._rename(high, items))
        self._rename_cache[key] = result
        return result

    # -- inspection ------------------------------------------------------------------

    def node_count(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE_NODE or node in seen:
                continue
            seen.add(node)
            _, low, high = self._nodes[node]
            stack.extend((low, high))
        return len(seen)

    def evaluate(self, f: int, assignment: dict[int, bool]) -> bool:
        """Evaluate under a level → bool assignment (must cover support)."""
        node = f
        while node > TRUE_NODE:
            level, low, high = self._nodes[node]
            if level not in assignment:
                raise ModelCheckingError(f"assignment missing level {level}")
            node = high if assignment[level] else low
        return node == TRUE_NODE

    def support(self, f: int) -> set[int]:
        """Levels appearing in ``f``."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE_NODE or node in seen:
                continue
            seen.add(node)
            level, low, high = self._nodes[node]
            levels.add(level)
            stack.extend((low, high))
        return levels

    def count_models(self, f: int, num_levels: int) -> int:
        """Number of satisfying assignments over levels ``0..num_levels-1``."""
        support = self.support(f)
        if any(level >= num_levels for level in support):
            raise ModelCheckingError("num_levels does not cover the BDD support")

        def level_of(node: int) -> int:
            return num_levels if node <= TRUE_NODE else self._nodes[node][0]

        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            """Models over levels [level_of(node), num_levels)."""
            if node == FALSE_NODE:
                return 0
            if node == TRUE_NODE:
                return 1
            if node in cache:
                return cache[node]
            level, low, high = self._nodes[node]
            result = walk(low) * (1 << (level_of(low) - level - 1)) + walk(high) * (
                1 << (level_of(high) - level - 1)
            )
            cache[node] = result
            return result

        # Levels above the root are unconstrained.
        return walk(f) * (1 << level_of(f)) if f <= TRUE_NODE else walk(f) * (
            1 << self._nodes[f][0]
        )

    def sat_iter(self, f: int, levels: list[int]) -> Iterator[dict[int, bool]]:
        """Yield all satisfying assignments over exactly ``levels``."""
        order = sorted(levels)

        def walk(node: int, index: int, partial: dict[int, bool]):
            if node == FALSE_NODE:
                return
            if index == len(order):
                if node == TRUE_NODE:
                    yield dict(partial)
                return
            level = order[index]
            node_level = self._level(node)
            if node_level == level:
                _, low, high = self._nodes[node]
                partial[level] = False
                yield from walk(low, index + 1, partial)
                partial[level] = True
                yield from walk(high, index + 1, partial)
                del partial[level]
            else:
                # Node does not test this level: both values allowed.
                partial[level] = False
                yield from walk(node, index + 1, partial)
                partial[level] = True
                yield from walk(node, index + 1, partial)
                del partial[level]

        yield from walk(f, 0, {})

    @property
    def size(self) -> int:
        """Total nodes allocated in the manager (including terminals)."""
        return len(self._nodes)
