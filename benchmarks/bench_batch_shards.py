"""E10 — batch service: shard-invariant merges, balanced partitions.

Hardware-independent claims, asserted (timings printed for context):

1. **Shard invariance** — a two-job campaign run as one shard, as two
   shards and as three shards merges to byte-identical aggregate
   reports (the scale-out contract: a shard is just a CLI invocation,
   so any machine assignment reproduces the single-process run).
2. **Partition sanity** — the SHA-256 identity hash spreads a realistic
   task list over shards with no empty shard and every task owned
   exactly once.
"""

from __future__ import annotations

import time

from repro.analysis import save_record
from repro.service import (
    BatchService,
    BatchSpec,
    DatasetSpec,
    ExtractionSpec,
    JobSpec,
    NetworkSpec,
    ProbeSpec,
    ToleranceSpec,
)

#: A real cross-network campaign: same slice, two training seeds.
SPEC = BatchSpec(
    name="bench-shards",
    jobs=(
        JobSpec(
            name="seed7",
            network=NetworkSpec(train_seed=7),
            dataset=DatasetSpec(indices=(0, 7, 10, 18)),
            tolerance=ToleranceSpec(ceiling=20),
            extraction=ExtractionSpec(percent=9, limit=5),
            probe=ProbeSpec(ceiling=12),
        ),
        JobSpec(
            name="seed11",
            network=NetworkSpec(train_seed=11),
            dataset=DatasetSpec(indices=(0, 7, 10, 18)),
            tolerance=ToleranceSpec(ceiling=20),
            extraction=ExtractionSpec(percent=9, limit=5),
        ),
    ),
)


def _merged_bytes(tmp_path, shard_count: int) -> tuple[bytes, float]:
    out = tmp_path / f"shards-{shard_count}"
    service = BatchService(SPEC)
    start = time.perf_counter()
    for index in range(shard_count):
        service.run_shard(index, shard_count, out)
    record = service.merge(out)
    elapsed = time.perf_counter() - start
    target = out / "merged.json"
    save_record(record, target)
    return target.read_bytes(), elapsed


def test_sharded_merges_are_bit_identical(benchmark, tmp_path):
    baseline, base_time = _merged_bytes(tmp_path, 1)

    def sharded():
        return _merged_bytes(tmp_path, 2)

    two_shards, _ = benchmark.pedantic(sharded, rounds=1, iterations=1)
    three_shards, three_time = _merged_bytes(tmp_path, 3)
    assert two_shards == baseline
    assert three_shards == baseline
    print(
        f"\nmerged report: {len(baseline)} bytes; unsharded {base_time:.2f}s, "
        f"three-shard total {three_time:.2f}s — bit-identical for every layout"
    )


def test_partition_is_total_and_balanced(tmp_path):
    service = BatchService(SPEC)
    jobs = service.plan()
    total = sum(len(job.tasks) for job in jobs)
    for count in (2, 3, 4):
        sizes = [
            sum(len(job.shard_tasks(index, count)) for job in jobs)
            for index in range(count)
        ]
        assert sum(sizes) == total  # every task owned exactly once
        assert all(sizes), f"empty shard in {sizes} for {count} shards"
        print(f"{total} tasks over {count} shards: {sizes}")
