"""Ablation — weight-quantisation scale (DESIGN.md design choice).

The formal model snaps float weights to rationals with denominator
``weight_scale``.  Too coarse and the quantised network disagrees with
the trained one (P1 fails); finer scales cost nothing in exactness but
grow the integers the engines push around.  This bench measures both
sides of that trade-off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NoiseConfig
from repro.nn import quantize_network
from repro.verify import SmtVerifier, build_query


@pytest.mark.parametrize("scale", [10, 100, 1000, 10000])
def test_prediction_agreement_by_scale(benchmark, trained, case_study, scale):
    network = trained.network

    def quantise_and_compare():
        quantized = quantize_network(network, weight_scale=scale)
        disagreements = 0
        for x in case_study.test.features:
            if quantized.predict(x) != int(network.predict(np.asarray(x, float))):
                disagreements += 1
        return disagreements

    disagreements = benchmark(quantise_and_compare)
    print(f"\nscale 1/{scale}: {disagreements}/34 prediction disagreements")
    if scale >= 1000:
        # The library default must preserve every prediction (P1).
        assert disagreements == 0


@pytest.mark.parametrize("scale", [100, 1000])
def test_verification_cost_by_scale(benchmark, trained, case_study, scale):
    quantized = quantize_network(trained.network, weight_scale=scale)
    x = np.asarray(case_study.test.features[0])
    label = quantized.predict(x)
    query = build_query(
        quantized, x, label, NoiseConfig(max_percent=10), weight_scale=scale
    )

    result = benchmark(lambda: SmtVerifier().verify(query))
    assert result.status.value in ("robust", "vulnerable")
