"""E8 — verification-engine ablation on the case-study query.

Runs every engine on the same (input, noise-range) queries:
interval (sound/incomplete), falsifiers (complete for SAT only),
exhaustive enumeration (exact), SMT phase splitting (exact) and MILP
big-M (float).  Complete engines must agree; the bench records their
relative cost — the trade-off the paper's §III-B discusses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NoiseConfig
from repro.verify import (
    CornerFalsifier,
    ExhaustiveEnumerator,
    IntervalVerifier,
    MilpVerifier,
    PortfolioVerifier,
    RandomFalsifier,
    SmtVerifier,
    VerificationStatus,
    build_query,
)

ENGINES = {
    "interval": IntervalVerifier,
    "corner": CornerFalsifier,
    "random": RandomFalsifier,
    "exhaustive": ExhaustiveEnumerator,
    "smt": SmtVerifier,
    "milp": MilpVerifier,
    "portfolio": PortfolioVerifier,
}


@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_robust_query_engines(benchmark, quantized, case_study, engine_name):
    """A clearly-robust query (±2 % on a stable input)."""
    x = np.asarray(case_study.test.features[0])
    label = int(case_study.test.labels[0])
    query = build_query(quantized, x, label, NoiseConfig(max_percent=2))
    engine = ENGINES[engine_name]()

    result = benchmark(lambda: engine.verify(query))
    if engine_name in ("interval", "exhaustive", "smt", "milp", "portfolio"):
        assert result.status is VerificationStatus.ROBUST
    else:
        assert result.status is not VerificationStatus.ROBUST  # falsifiers abstain


@pytest.mark.parametrize("engine_name", ["corner", "random", "smt", "portfolio"])
def test_vulnerable_query_engines(
    benchmark, quantized, case_study, vulnerable_input, engine_name
):
    """A clearly-vulnerable query (min-flip + 6 on the weakest input)."""
    index, x, label, min_flip = vulnerable_input
    query = build_query(quantized, x, label, NoiseConfig(max_percent=min_flip + 6))
    engine = ENGINES[engine_name]()

    result = benchmark(lambda: engine.verify(query))
    assert result.status is VerificationStatus.VULNERABLE
    assert query.misclassified(result.witness)


def test_complete_engines_agree_across_ranges(
    benchmark, quantized, case_study, vulnerable_input
):
    """SMT vs exhaustive across the robust/vulnerable crossover."""
    index, x, label, min_flip = vulnerable_input

    def sweep():
        agreements = []
        for percent in (min_flip - 1, min_flip, min_flip + 2):
            query = build_query(quantized, x, label, NoiseConfig(max_percent=percent))
            smt = SmtVerifier().verify(query)
            truth = ExhaustiveEnumerator().verify(query)
            agreements.append(
                (percent, smt.status.value, truth.status.value)
            )
            assert smt.status == truth.status
        return agreements

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ncrossover agreement (P, smt, exhaustive):", rows)
    # The crossover itself: robust below min_flip, vulnerable at/above.
    assert rows[0][1] == "robust"
    assert rows[1][1] == "vulnerable"
