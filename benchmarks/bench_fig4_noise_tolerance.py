"""E2 — Fig. 4 (left column): noise tolerance of the trained network.

Paper: no misclassification at ±11 % or below; the number of
misclassified inputs grows with the noise range.  Our synthetic
substrate lands the same shape with tolerance ±7 % (EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.analysis import fig4_tolerance_series, horizontal_bar_chart
from repro.core import NoiseToleranceAnalysis


def test_fig4_tolerance_profile(benchmark, quantized, case_study):
    analysis = NoiseToleranceAnalysis(quantized, search_ceiling=60)

    report = benchmark.pedantic(
        lambda: analysis.analyze(case_study.test), rounds=1, iterations=1
    )
    series = fig4_tolerance_series(report)
    print("\nFig. 4 tolerance series:")
    print(
        horizontal_bar_chart(
            dict(zip(series["noise_percents"], series["misclassified_inputs"])),
            title="misclassified inputs per ±P% range",
        )
    )
    print("tolerance:", f"±{series['tolerance']}%  (paper: ±11%)")

    # Shape assertions (the reproduction claims).
    assert series["tolerance"] is not None and series["tolerance"] >= 1
    assert series["monotone"]
    assert series["misclassified_inputs"][-1] > 0


def test_fig4_tolerance_search_schedules(benchmark, quantized, case_study):
    """Ablation: the paper's shrink-by-one loop vs bisection."""
    paper_loop = NoiseToleranceAnalysis(
        quantized, search_ceiling=40, schedule="paper"
    )
    binary = NoiseToleranceAnalysis(
        quantized, search_ceiling=40, schedule="binary"
    )

    paper_report = benchmark.pedantic(
        lambda: paper_loop.analyze(case_study.test), rounds=1, iterations=1
    )
    binary_report = binary.analyze(case_study.test)
    paper_queries = sum(e.queries for e in paper_report.per_input)
    binary_queries = sum(e.queries for e in binary_report.per_input)
    print(
        f"\nqueries: paper-loop {paper_queries}, bisection {binary_queries} "
        f"(same tolerance: ±{paper_report.tolerance}% == ±{binary_report.tolerance}%)"
    )
    assert paper_report.tolerance == binary_report.tolerance
    # Cost profile differs by input mix: the paper loop pays one query per
    # ceiling-robust input but walks down one percent at a time for
    # vulnerable ones; bisection is log-cost everywhere.
    vulnerable = [
        e for e in paper_report.per_input if e.min_flip_percent is not None
    ]
    if vulnerable:
        paper_vulnerable = sum(e.queries for e in vulnerable)
        binary_vulnerable = sum(
            e.queries
            for e in binary_report.per_input
            if e.min_flip_percent is not None
        )
        assert binary_vulnerable <= paper_vulnerable
