"""E2 — Fig. 4 (left column): noise tolerance of the trained network.

Paper: no misclassification at ±11 % or below; the number of
misclassified inputs grows with the noise range.  Our synthetic
substrate lands the same shape with tolerance ±7 % (EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import time

from repro.analysis import fig4_tolerance_series, horizontal_bar_chart
from repro.config import RuntimeConfig
from repro.core import NoiseToleranceAnalysis


def test_fig4_tolerance_profile(benchmark, quantized, case_study):
    analysis = NoiseToleranceAnalysis(quantized, search_ceiling=60)

    report = benchmark.pedantic(
        lambda: analysis.analyze(case_study.test), rounds=1, iterations=1
    )
    series = fig4_tolerance_series(report)
    print("\nFig. 4 tolerance series:")
    print(
        horizontal_bar_chart(
            dict(zip(series["noise_percents"], series["misclassified_inputs"])),
            title="misclassified inputs per ±P% range",
        )
    )
    print("tolerance:", f"±{series['tolerance']}%  (paper: ±11%)")

    # Shape assertions (the reproduction claims).
    assert series["tolerance"] is not None and series["tolerance"] >= 1
    assert series["monotone"]
    assert series["misclassified_inputs"][-1] > 0


def test_fig4_tolerance_search_schedules(benchmark, quantized, case_study):
    """Ablation: the paper's shrink-by-one loop vs bisection."""
    paper_loop = NoiseToleranceAnalysis(
        quantized, search_ceiling=40, schedule="paper"
    )
    binary = NoiseToleranceAnalysis(
        quantized, search_ceiling=40, schedule="binary"
    )

    paper_report = benchmark.pedantic(
        lambda: paper_loop.analyze(case_study.test), rounds=1, iterations=1
    )
    binary_report = binary.analyze(case_study.test)
    paper_queries = sum(e.queries for e in paper_report.per_input)
    binary_queries = sum(e.queries for e in binary_report.per_input)
    print(
        f"\nqueries: paper-loop {paper_queries}, bisection {binary_queries} "
        f"(same tolerance: ±{paper_report.tolerance}% == ±{binary_report.tolerance}%)"
    )
    assert paper_report.tolerance == binary_report.tolerance
    # Cost profile differs by input mix: the paper loop pays one query per
    # ceiling-robust input but walks down one percent at a time for
    # vulnerable ones; bisection is log-cost everywhere.
    vulnerable = [
        e for e in paper_report.per_input if e.min_flip_percent is not None
    ]
    if vulnerable:
        paper_vulnerable = sum(e.queries for e in vulnerable)
        binary_vulnerable = sum(
            e.queries
            for e in binary_report.per_input
            if e.min_flip_percent is not None
        )
        assert binary_vulnerable <= paper_vulnerable


def _flat(report):
    return [
        (e.index, e.min_flip_percent, e.witness, e.flipped_to, e.queries)
        for e in report.per_input
    ]


def test_fig4_tolerance_runtime_variants(benchmark, quantized, case_study):
    """Runtime ablation: serial vs parallel, cold vs warm query cache.

    The warm-cache claim is hardware-independent and asserted always:
    a repeat of the same analysis must issue strictly fewer (here: zero)
    verifier calls.  The parallel speed-up needs real cores, so it is
    asserted only when the machine has >= 4; the timings are printed
    either way.  All variants must agree with the serial report exactly.
    """
    ceiling = 40

    serial = NoiseToleranceAnalysis(quantized, search_ceiling=ceiling)
    start = time.perf_counter()
    serial_report = serial.analyze(case_study.test)
    serial_time = time.perf_counter() - start
    cold_calls = serial.runner.stats.solver_calls

    start = time.perf_counter()
    warm_report = serial.analyze(case_study.test)
    warm_time = time.perf_counter() - start
    warm_calls = serial.runner.stats.solver_calls - cold_calls

    parallel = NoiseToleranceAnalysis(
        quantized, search_ceiling=ceiling, runtime=RuntimeConfig(workers=4)
    )
    start = time.perf_counter()
    parallel_report = benchmark.pedantic(
        lambda: parallel.analyze(case_study.test), rounds=1, iterations=1
    )
    parallel_time = time.perf_counter() - start

    cores = os.cpu_count() or 1
    print(
        f"\nserial cold {serial_time:.2f}s ({cold_calls} solver calls), "
        f"warm {warm_time:.3f}s ({warm_calls} solver calls), "
        f"parallel x4 {parallel_time:.2f}s on {cores} cores"
    )
    print(serial.runner.cache.stats.describe())

    # Identical reports on every path.
    assert _flat(serial_report) == _flat(warm_report) == _flat(parallel_report)
    # Warm cache: strictly fewer solver calls than cold (zero, in fact).
    assert cold_calls > 0
    assert warm_calls < cold_calls
    assert warm_calls == 0
    if cores >= 4:
        assert parallel_time < serial_time, (
            f"parallel ({parallel_time:.2f}s) should beat serial "
            f"({serial_time:.2f}s) on {cores} cores"
        )
    else:
        print(f"(speed-up assertion skipped: only {cores} core(s) available)")
