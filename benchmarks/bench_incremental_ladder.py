"""Incremental ladder sessions — warm vs from-scratch complete engines.

The claim under test (PR 10): on the boundary band of the Fig.-4
tolerance sweep — the probes every incomplete stage passes on — routing
each input's bisection through one warm
:class:`~repro.verify.incremental.LadderSession` (encode once, assume
the rung's noise budget, keep learned clauses and the simplex basis
alive) costs **≤ half the simplex pivots** of re-encoding every probe
from scratch, with **byte-identical verdicts and witnesses**.

Pivots are the gate, not wall-clock: the exact Dutertre–de Moura
simplex counts them deterministically, so the ratio is reproducible on
any machine.  The substrate is the deep 5-12-12-2 case-study variant
from :mod:`bench_frontier_prepass` — the paper's 5-20-2 network has an
empty boundary band, so there would be nothing to measure there.

The measured numbers are written to ``BENCH_incremental.json`` (the CI
workflow uploads it as an artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from bench_frontier_prepass import deep_case_study_network
from repro.config import NoiseConfig, VerifierConfig
from repro.runtime.fingerprint import derive_seed
from repro.verify import (
    FrontierPrepass,
    FrontierProbe,
    PortfolioVerifier,
    build_query,
    resolve_survivors,
)

#: Sweep resolution; matches the frontier benchmark's deep-substrate grid.
CEILING = 100

#: The CI gate: warm sessions must at least halve the pivot bill.
REQUIRED_RATIO = 2.0


def boundary_band(network, dataset):
    """The sweep's boundary band: probes no incomplete stage decides."""
    probes = []
    for index, x in enumerate(dataset.features):
        x = np.asarray(x, dtype=np.int64)
        label = network.predict(x)
        for percent in range(1, CEILING + 1):
            probes.append(
                FrontierProbe(
                    key=(index, percent),
                    query=build_query(network, x, label, NoiseConfig(percent)),
                    percent=percent,
                    group=index,
                    seed=derive_seed(0, index),
                )
            )
    return FrontierPrepass().resolve(probes).unknown


def dispatch(survivors, incremental: bool):
    """Bisect the band through per-input portfolios, SMT path forced."""
    verifiers: dict[int, PortfolioVerifier] = {}

    def complete_fn(probe):
        verifier = verifiers.get(probe.group)
        if verifier is None:
            verifier = verifiers[probe.group] = PortfolioVerifier(
                VerifierConfig(seed=derive_seed(0, probe.group)),
                exhaustive_cutoff=0,  # every probe reaches session/smt
                incremental=incremental,
            )
        return verifier.verify_complete(probe.query)

    start = time.perf_counter()
    exact, derived = resolve_survivors(survivors, complete_fn)
    wall = time.perf_counter() - start
    pivots = sum(v.complete_pivots() for v in verifiers.values())
    calls = sum(v.engine_stats.complete_calls() for v in verifiers.values())
    return exact, derived, pivots, calls, wall


def canonical(results: dict) -> dict:
    return {
        key: (r.status.value, r.witness, r.predicted_label)
        for key, r in results.items()
    }


def test_incremental_ladder_halves_the_pivot_bill(case_study):
    network = deep_case_study_network(case_study)
    survivors = boundary_band(network, case_study.test)
    # The band is real on this substrate — otherwise nothing is measured.
    assert survivors, "deep substrate no longer has a boundary band"

    warm_exact, warm_derived, warm_pivots, warm_calls, warm_wall = dispatch(
        survivors, incremental=True
    )
    cold_exact, cold_derived, cold_pivots, cold_calls, cold_wall = dispatch(
        survivors, incremental=False
    )

    ratio = cold_pivots / max(1, warm_pivots)
    print(
        f"\nboundary band: {len(survivors)} probes, {warm_calls} complete "
        f"calls per arm; simplex pivots {cold_pivots} from-scratch vs "
        f"{warm_pivots} warm sessions = {ratio:.1f}x fewer; "
        f"wall {cold_wall:.1f}s vs {warm_wall:.1f}s"
    )

    # Byte-identical results: same verdicts, same witnesses, same labels.
    assert canonical(warm_exact) == canonical(cold_exact)
    assert canonical(warm_derived) == canonical(cold_derived)
    assert warm_calls == cold_calls  # identical bisection trajectories

    payload = {
        "substrate": "deep-5-12-12-2",
        "ceiling": CEILING,
        "band_probes": len(survivors),
        "complete_calls": warm_calls,
        "pivots_incremental": warm_pivots,
        "pivots_scratch": cold_pivots,
        "pivot_ratio": ratio,
        "wall_incremental_s": warm_wall,
        "wall_scratch_s": cold_wall,
        "required_ratio": REQUIRED_RATIO,
    }
    Path("BENCH_incremental.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # The CI gate: warm sessions at least halve the deterministic pivot bill.
    assert warm_pivots * REQUIRED_RATIO <= cold_pivots, (
        f"incremental sessions saved only {ratio:.2f}x pivots "
        f"(< {REQUIRED_RATIO}x): {warm_pivots} vs {cold_pivots}"
    )
