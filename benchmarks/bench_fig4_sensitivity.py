"""E5 — Fig. 4 (right column): input-node sensitivity.

Paper: no counterexamples with positive noise at node i5; node i2 shows
more positive-noise patterns than negative.  Our census finds the same
i5 signature (zero positive-noise counterexamples) plus a fully
positive-skewed node — the per-node asymmetry the panel plots.
"""

from __future__ import annotations

from repro.analysis import fig4_sensitivity_series
from repro.core import InputSensitivityAnalysis, NoiseVectorExtraction


def test_fig4_sensitivity_census(
    benchmark, quantized, case_study, tolerance_report
):
    percent = (tolerance_report.tolerance or 6) + 1
    extraction = NoiseVectorExtraction(quantized).extract(case_study.test, percent)
    analysis = InputSensitivityAnalysis(quantized)

    report = benchmark(lambda: analysis.census(extraction))
    series = fig4_sensitivity_series(report)
    print("\nFig. 4 sensitivity series:")
    for node in series["nodes"]:
        print(" ", node)
    print("one-sided nodes:", series["one_sided_nodes"], "(paper: i5)")

    assert series["one_sided_nodes"], "expected at least one one-sided node"
    totals = [n["positive"] + n["negative"] for n in series["nodes"]]
    assert max(totals) > 0


def test_fig4_single_node_probes(benchmark, quantized, case_study):
    """Eq. 3 extension: per-node single-node flip thresholds."""
    analysis = InputSensitivityAnalysis(quantized)

    def run():
        return analysis.probe_all_nodes(case_study.test, search_ceiling=60)

    probes = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nsingle-node flip thresholds (positive%, negative%):")
    for node, (pos, neg) in sorted(probes.items()):
        print(f"  i{node + 1}: +{pos} / -{neg}")
    # At least one node must be single-node flippable in some direction —
    # otherwise the counterexamples would all need multi-node noise.
    assert any(pos is not None or neg is not None for pos, neg in probes.values())
