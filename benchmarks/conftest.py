"""Shared fixtures for the benchmark suite.

Everything expensive (data generation, training, quantisation, the
tolerance profile) is computed once per session; the benchmarks then
time the individual analyses and print the regenerated paper series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Fannet
from repro.data import load_leukemia_case_study
from repro.nn import train_paper_network


@pytest.fixture(scope="session")
def case_study():
    return load_leukemia_case_study()


@pytest.fixture(scope="session")
def trained(case_study):
    return train_paper_network(case_study.train.features, case_study.train.labels)


@pytest.fixture(scope="session")
def fannet(case_study, trained):
    return Fannet(trained.network, case_study.train, case_study.test)


@pytest.fixture(scope="session")
def quantized(fannet):
    return fannet.quantized


@pytest.fixture(scope="session")
def tolerance_report(fannet):
    return fannet.noise_tolerance(search_ceiling=60)


@pytest.fixture(scope="session")
def vulnerable_input(case_study, quantized, tolerance_report):
    """The most noise-susceptible correctly-classified test input."""
    entry = min(
        (e for e in tolerance_report.per_input if e.min_flip_percent is not None),
        key=lambda e: e.min_flip_percent,
    )
    x = np.asarray(case_study.test.features[entry.index])
    return entry.index, x, entry.true_label, entry.min_flip_percent
