"""E3 — Fig. 4 (top-middle): classification-boundary estimation.

Paper: inputs near the boundary flip under small noise; others survive
±50 %.  The per-input minimal-flip profile regenerates that panel.
"""

from __future__ import annotations

from repro.analysis import fig4_boundary_series, horizontal_bar_chart
from repro.core import BoundaryEstimation


def test_fig4_boundary_profile(benchmark, tolerance_report):
    estimation = BoundaryEstimation(near_threshold=15, far_threshold=50)

    report = benchmark(lambda: estimation.analyze(tolerance_report))
    series = fig4_boundary_series(report.profile, tolerance_report.search_ceiling)
    print("\nFig. 4 boundary series:")
    chart = {
        f"test[{k}]": (v if v is not None else tolerance_report.search_ceiling)
        for k, v in sorted(report.profile.items(), key=lambda kv: kv[0])
    }
    print(horizontal_bar_chart(chart, title="minimal flipping noise per input (ceiling = robust)"))
    print(report.describe())

    # Paper shape: susceptible inputs exist AND inputs robust beyond ±50%.
    assert series["susceptible_inputs"] > 0
    assert series["spread_exceeds_50"]
    assert series["robust_inputs"] > 0
