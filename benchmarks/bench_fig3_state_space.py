"""E1 — Fig. 3(b,c): FSM state-space growth under noise.

Paper: the NN FSM grows from 3 states / 6 transitions (no noise) to
65 states / 4160 transitions with noise range [0,1] % on the 6 input
nodes (5 genes + bias).  Both counts must match exactly — they are
combinatorial facts about the model, not measurements.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fig3_state_space_series
from repro.config import NoiseConfig
from repro.core import dataset_fsm_module
from repro.core.translate import noise_model_state_counts
from repro.fsm import TransitionSystem, count_states_and_transitions


def test_fig3_no_noise_fsm(benchmark, quantized, case_study):
    module = dataset_fsm_module(quantized, case_study.test.features)

    def build_and_count():
        return count_states_and_transitions(TransitionSystem(module))

    counts = benchmark(build_and_count)
    assert counts == (3, 6)  # paper value, exact


def test_fig3_unit_noise_fsm(benchmark, quantized, case_study):
    x = np.asarray(case_study.test.features[0])
    label = int(case_study.test.labels[0])

    def build_and_count():
        return noise_model_state_counts(
            quantized,
            x,
            label,
            NoiseConfig(min_percent=0, max_percent=1),
            noisy_bias_node=True,
        )

    counts = benchmark(build_and_count)
    assert counts == (65, 4160)  # paper value, exact
    series = fig3_state_space_series((3, 6), counts)
    print("\nFig. 3 series:", series)


def test_fig3_growth_beyond_paper(benchmark, quantized, case_study):
    """Extension: the exponential trend the paper warns about (§V)."""
    x = np.asarray(case_study.test.features[0])
    label = int(case_study.test.labels[0])

    def sweep():
        rows = []
        for high in (1, 2, 3):
            counts = noise_model_state_counts(
                quantized,
                x,
                label,
                NoiseConfig(min_percent=0, max_percent=high),
                noisy_bias_node=True,
                max_states=10_000_000,
            )
            rows.append((high, counts))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nstate-space growth [0..P]%:", rows)
    states = [counts[0] for _, counts in rows]
    assert states == sorted(states)
    # (P+1)^6 noise assignments + initial state.
    for high, (state_count, transition_count) in rows:
        expected = (high + 1) ** 6
        assert state_count == expected + 1
        assert transition_count == expected + expected * expected
