"""E9 — adversarial noise-vector extraction throughput (the P3 loop).

Measures both extraction paths: exact exhaustive collection and the
solver-driven blocking loop (DPLL(T)), which is the literal Fig.-2 P3
realisation.
"""

from __future__ import annotations

import numpy as np

from repro.config import NoiseConfig
from repro.verify import ExhaustiveEnumerator, NoiseVectorCollector, build_query


def test_exhaustive_extraction(benchmark, quantized, case_study, vulnerable_input):
    index, x, label, min_flip = vulnerable_input
    query = build_query(quantized, x, label, NoiseConfig(max_percent=min_flip + 1))

    vectors = benchmark(lambda: ExhaustiveEnumerator().collect_witnesses(query))
    print(f"\n{len(vectors)} unique NVs at ±{min_flip + 1}% for test[{index}]")
    assert vectors
    assert len(set(vectors)) == len(vectors)


def test_blocking_loop_extraction(benchmark, quantized, case_study, vulnerable_input):
    """P3 with blocking clauses, 10 vectors per run."""
    index, x, label, min_flip = vulnerable_input
    query = build_query(quantized, x, label, NoiseConfig(max_percent=min_flip + 1))
    collector = NoiseVectorCollector(exhaustive_cutoff=1)  # force solver path

    def collect_ten():
        return collector.collect(query, limit=10)

    result = benchmark.pedantic(collect_ten, rounds=1, iterations=1)
    print(f"\nblocking loop extracted {len(result)} NVs")
    assert len(result) == 10
    assert len(set(result.vectors)) == 10
    for vector in result:
        assert query.misclassified(vector)
    # Consistency with the exact path: every vector appears in the full set.
    full = set(ExhaustiveEnumerator().collect_witnesses(query))
    assert set(result.vectors) <= full
