"""E9 — adversarial noise-vector extraction throughput (the P3 loop).

Measures both extraction paths: exact exhaustive collection and the
solver-driven blocking loop (DPLL(T)), which is the literal Fig.-2 P3
realisation.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.config import NoiseConfig, RuntimeConfig
from repro.core import NoiseVectorExtraction
from repro.verify import ExhaustiveEnumerator, NoiseVectorCollector, build_query


def test_exhaustive_extraction(benchmark, quantized, case_study, vulnerable_input):
    index, x, label, min_flip = vulnerable_input
    query = build_query(quantized, x, label, NoiseConfig(max_percent=min_flip + 1))

    vectors = benchmark(lambda: ExhaustiveEnumerator().collect_witnesses(query))
    print(f"\n{len(vectors)} unique NVs at ±{min_flip + 1}% for test[{index}]")
    assert vectors
    assert len(set(vectors)) == len(vectors)


def test_blocking_loop_extraction(benchmark, quantized, case_study, vulnerable_input):
    """P3 with blocking clauses, 10 vectors per run."""
    index, x, label, min_flip = vulnerable_input
    query = build_query(quantized, x, label, NoiseConfig(max_percent=min_flip + 1))
    collector = NoiseVectorCollector(exhaustive_cutoff=1)  # force solver path

    def collect_ten():
        return collector.collect(query, limit=10)

    result = benchmark.pedantic(collect_ten, rounds=1, iterations=1)
    print(f"\nblocking loop extracted {len(result)} NVs")
    assert len(result) == 10
    assert len(set(result.vectors)) == 10
    for vector in result:
        assert query.misclassified(vector)
    # Consistency with the exact path: every vector appears in the full set.
    full = set(ExhaustiveEnumerator().collect_witnesses(query))
    assert set(result.vectors) <= full


def _census(report):
    return sorted(report.all_vectors_with_labels())


def test_extraction_runtime_variants(benchmark, quantized, case_study, tolerance_report):
    """Dataset-wide P3 through the runtime: serial/parallel, cold/warm.

    Warm-cache extraction must issue strictly fewer (zero) collector
    runs than cold while reproducing the census exactly; the parallel
    path must reproduce it too, and beat serial when cores allow.
    """
    percent = (tolerance_report.tolerance or 6) + 1

    serial = NoiseVectorExtraction(quantized)
    start = time.perf_counter()
    serial_report = serial.extract(case_study.test, percent)
    serial_time = time.perf_counter() - start
    cold_calls = serial.runner.stats.extract_calls

    start = time.perf_counter()
    warm_report = serial.extract(case_study.test, percent)
    warm_time = time.perf_counter() - start
    warm_calls = serial.runner.stats.extract_calls - cold_calls

    parallel = NoiseVectorExtraction(quantized, runtime=RuntimeConfig(workers=4))
    start = time.perf_counter()
    parallel_report = benchmark.pedantic(
        lambda: parallel.extract(case_study.test, percent), rounds=1, iterations=1
    )
    parallel_time = time.perf_counter() - start

    cores = os.cpu_count() or 1
    print(
        f"\n±{percent}%: serial cold {serial_time:.2f}s ({cold_calls} collector runs), "
        f"warm {warm_time:.3f}s ({warm_calls} runs), "
        f"parallel x4 {parallel_time:.2f}s on {cores} cores"
    )

    assert _census(serial_report) == _census(warm_report) == _census(parallel_report)
    assert serial_report.total_vectors > 0
    assert cold_calls > 0
    assert warm_calls < cold_calls
    assert warm_calls == 0
    if cores >= 4:
        assert parallel_time < serial_time, (
            f"parallel ({parallel_time:.2f}s) should beat serial "
            f"({serial_time:.2f}s) on {cores} cores"
        )
    else:
        print(f"(speed-up assertion skipped: only {cores} core(s) available)")
