"""E7 — model-checking engine comparison (paper §III-B).

The paper motivates its SMT-based checker by contrasting BDD-based
(PSPACE, memory-bound) and SAT-based (NP, scales further) engines.  This
bench runs all three of ours on the same models: the Fig.-3(c) NN noise
FSM and a scaling family of counter models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NoiseConfig
from repro.core import network_noise_module
from repro.mc import BddChecker, BmcChecker, ExplicitChecker, KInduction, Verdict
from repro.smv import parse_module


def _counter_model(width: int) -> str:
    return f"""
MODULE main
VAR
  count : 0..{width};
ASSIGN
  init(count) := 0;
  next(count) := case
      count < {width - 1} : count + 1;
      TRUE : 0;
    esac;
INVARSPEC count < {width};
"""


@pytest.mark.parametrize("engine_name", ["explicit", "bdd", "induction"])
def test_counter_model_engines(benchmark, engine_name):
    module = parse_module(_counter_model(64))
    prop = module.invarspecs[0]
    engines = {
        "explicit": lambda: ExplicitChecker(),
        "bdd": lambda: BddChecker(),
        "induction": lambda: KInduction(max_k=70),
    }
    engine = engines[engine_name]()

    result = benchmark(lambda: engine.check_invariant(module, prop))
    assert result.verdict is Verdict.HOLDS


@pytest.mark.parametrize("engine_name", ["explicit", "bmc"])
def test_violated_counter_engines(benchmark, engine_name):
    module = parse_module(_counter_model(32))
    from repro.smv import parse_expression

    prop = parse_expression("count < 16")
    engines = {
        "explicit": lambda: ExplicitChecker(),
        "bmc": lambda: BmcChecker(max_bound=20),
    }
    engine = engines[engine_name]()

    result = benchmark(lambda: engine.check_invariant(module, prop))
    assert result.verdict is Verdict.VIOLATED
    assert len(result.counterexample) == 17  # shortest trace, both engines


def test_nn_noise_fsm_explicit_p2(benchmark, quantized, case_study, vulnerable_input):
    """P2 on the translated NN model via the explicit engine — the
    paper's literal nuXmv workflow at a small noise range."""
    index, x, label, min_flip = vulnerable_input
    percent = min(3, min_flip)  # keep the state space explicit-friendly
    module, query = network_noise_module(
        quantized, x, label, NoiseConfig(max_percent=percent)
    )
    checker = ExplicitChecker(max_states=2_000_000)

    result = benchmark.pedantic(
        lambda: checker.check_invariant(module, module.invarspecs[0]),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nP2 on test[{index}] at ±{percent}%: {result.verdict.value} "
        f"({result.states_explored} states)"
    )
    # Agreement with the arithmetic ground truth.
    from repro.verify import ExhaustiveEnumerator

    truth = ExhaustiveEnumerator().verify(query)
    assert result.violated == truth.is_vulnerable
