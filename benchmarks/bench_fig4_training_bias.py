"""E4 — Fig. 4 (top-right): training bias.

Paper: ~70 % of training samples belong to L1, and *all* noise-driven
misclassifications flip L0 → L1.  Our training set is 71.1 % L1 and the
flip census is 100 % toward the majority class.
"""

from __future__ import annotations

from repro.analysis import fig4_bias_series
from repro.core import NoiseVectorExtraction, TrainingBiasAnalysis
from repro.data import LABEL_ALL


def test_fig4_training_bias_census(
    benchmark, quantized, case_study, tolerance_report
):
    percent = (tolerance_report.tolerance or 6) + 1
    extraction_analysis = NoiseVectorExtraction(quantized)
    bias_analysis = TrainingBiasAnalysis(case_study.train)

    def run():
        extraction = extraction_analysis.extract(case_study.test, percent)
        return bias_analysis.analyze(extraction)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    series = fig4_bias_series(report)
    print("\nFig. 4 bias series:", series)
    print(report.describe())

    assert series["training_majority_label"] == LABEL_ALL
    assert 0.6 <= series["training_majority_share"] <= 0.8  # paper: ~0.70
    assert series["bias_confirmed"]
    assert series["majority_flip_share"] == 1.0  # paper: all flips L0->L1
