"""E-frontier — bulk prepass + bisected dispatch vs per-query portfolio.

The claim under test: on the Fig.-4 tolerance workload (the live
misclassification sweep over every ``(input, percent)`` grid point), the
frontier-batched plane issues **≥ 5× fewer complete-engine invocations**
than the per-query portfolio — the vectorised incomplete passes decide
the cheap mass in bulk, and each input's boundary band is dispatched
along a monotone bisection (``O(log w)`` complete calls instead of
``w``) — at a measurable wall-clock win, with bit-identical results.

Two substrates:

- the **paper's 5-20-2 network**: its boundary band is *empty* — the
  interval pass and the corner falsifier decide 100 % of the grid, so
  neither path ever invokes a complete engine (asserted; the frontier's
  win here is wall-clock only);
- a **deeper 5-12-12-2 case-study variant** (same data, same trainer,
  seeded) whose compounded interval looseness opens a real boundary
  band: the complete-call ratio is measured there.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import RuntimeConfig
from repro.core import NoiseToleranceAnalysis
from repro.nn import Network, SgdTrainer, quantize_network
from repro.nn.layers import DenseLayer

#: Sweep resolution of the Fig.-4 grid.  The deep substrate's bands must
#: be wide enough to show the log-vs-linear dispatch gap; ±100 % keeps the
#: widest (ceiling-robust) bands in view.
DEEP_CEILING = 100
PAPER_CEILING = 40


def deep_case_study_network(case_study) -> "quantize_network":
    """A 5-12-12-2 variant of the case-study network (seeded, trained)."""
    rng = np.random.default_rng(3)
    network = Network(
        [
            DenseLayer.from_init(rng, 5, 12, activation="relu"),
            DenseLayer.from_init(rng, 12, 12, activation="relu"),
            DenseLayer.from_init(rng, 12, 2, activation="linear"),
        ]
    )
    trainer = SgdTrainer(schedule=[(150, 0.4), (100, 0.15)], seed=3)
    result = trainer.fit(
        network,
        np.asarray(case_study.train.features, dtype=float),
        np.asarray(case_study.train.labels),
    )
    assert result.train_accuracy == 1.0  # fully trained, like the paper's
    return quantize_network(network)


def run_sweep(network, dataset, ceiling, runtime):
    analysis = NoiseToleranceAnalysis(network, search_ceiling=ceiling, runtime=runtime)
    start = time.perf_counter()
    sweep = analysis.sweep(dataset, list(range(1, ceiling + 1)))
    wall = time.perf_counter() - start
    return sweep, analysis.runner.engine_stats, wall


def test_frontier_prepass_vs_per_query_portfolio(benchmark, case_study):
    network = deep_case_study_network(case_study)

    frontier_sweep, frontier_stats, frontier_wall = benchmark.pedantic(
        lambda: run_sweep(
            network, case_study.test, DEEP_CEILING, RuntimeConfig(frontier=True)
        ),
        rounds=1,
        iterations=1,
    )
    perquery_sweep, perquery_stats, perquery_wall = run_sweep(
        network, case_study.test, DEEP_CEILING, RuntimeConfig(frontier=False)
    )

    frontier_complete = frontier_stats.complete_calls()
    perquery_complete = perquery_stats.complete_calls()
    ratio = perquery_complete / max(1, frontier_complete)
    print(
        f"\nFig.-4 sweep, deep substrate (±{DEEP_CEILING}%): "
        f"complete-engine calls {perquery_complete} per-query vs "
        f"{frontier_complete} frontier = {ratio:.1f}x fewer; "
        f"wall {perquery_wall:.1f}s vs {frontier_wall:.1f}s "
        f"({perquery_wall / frontier_wall:.1f}x)"
    )
    print("frontier " + frontier_stats.describe_table())
    print("per-query " + perquery_stats.describe_table())

    # Bit-identical results on both paths.
    assert frontier_sweep == perquery_sweep
    # The band is real on this substrate...
    assert perquery_complete > 0
    # ...and the frontier resolves it with >= 5x fewer complete calls.
    assert frontier_complete < perquery_complete
    assert ratio >= 5.0, f"complete-call reduction {ratio:.2f}x < 5x"
    # Bulk passes beat per-query loops on the wall clock as well.
    assert frontier_wall < perquery_wall, (
        f"frontier ({frontier_wall:.2f}s) should beat per-query "
        f"({perquery_wall:.2f}s) on the grid workload"
    )


def test_paper_substrate_grid_needs_no_complete_engine(quantized, case_study):
    """The stock 5-20-2 network: both paths decide the grid cheaply.

    This is the economics the frontier plane is built on — documented
    here so a future substrate change that opens a band on the paper
    network shows up as a benchmark delta, not a silent slowdown.
    """
    frontier_sweep, frontier_stats, frontier_wall = run_sweep(
        quantized, case_study.test, PAPER_CEILING, RuntimeConfig(frontier=True)
    )
    perquery_sweep, perquery_stats, perquery_wall = run_sweep(
        quantized, case_study.test, PAPER_CEILING, RuntimeConfig(frontier=False)
    )
    print(
        f"\nFig.-4 sweep, paper substrate (±{PAPER_CEILING}%): "
        f"complete calls {perquery_stats.complete_calls()} per-query vs "
        f"{frontier_stats.complete_calls()} frontier; "
        f"wall {perquery_wall:.2f}s vs {frontier_wall:.2f}s"
    )
    assert frontier_sweep == perquery_sweep
    assert frontier_stats.complete_calls() == 0
    assert perquery_stats.complete_calls() == 0
