"""E9 — persistent + monotone query cache: warm-from-disk and implied verdicts.

Two hardware-independent claims, asserted (timings printed for context):

1. **Warm-from-disk** — a fresh process-equivalent runner pointed at a
   populated ``cache_dir`` reproduces the tolerance report bit for bit
   with *zero* solver calls.
2. **Monotone reuse** — on a workload with percent overlap (binary
   search + the literal paper schedule + a Fig.-4 live sweep), the
   monotonicity-aware cache issues strictly fewer solver calls than
   PR 1's exact-key cache, with bit-identical reports.
"""

from __future__ import annotations

import time

from repro.config import RuntimeConfig
from repro.core import NoiseToleranceAnalysis

CEILING = 30
SWEEP = list(range(1, CEILING + 1))


def _flat(report):
    return [
        (e.index, e.min_flip_percent, e.witness, e.flipped_to, e.queries)
        for e in report.per_input
    ]


def _overlap_workload(analysis, dataset):
    """Binary search, then the paper schedule, then a live Fig.-4 sweep —
    three passes over the same percent axis with different query sets."""
    binary = analysis.analyze(dataset)
    analysis.schedule = "paper"
    paper = analysis.analyze(dataset)
    analysis.schedule = "binary"
    sweep = analysis.sweep(dataset, SWEEP)
    return binary, paper, sweep


def test_warm_from_disk_zero_solver_calls(benchmark, quantized, case_study, tmp_path):
    runtime = RuntimeConfig(cache_dir=str(tmp_path / "qcache"))

    cold = NoiseToleranceAnalysis(quantized, search_ceiling=CEILING, runtime=runtime)
    start = time.perf_counter()
    cold_report = cold.analyze(case_study.test)
    cold.runner.close()  # spill to disk
    cold_time = time.perf_counter() - start
    cold_calls = cold.runner.stats.solver_calls

    warm = NoiseToleranceAnalysis(quantized, search_ceiling=CEILING, runtime=runtime)
    warm_report = benchmark.pedantic(
        lambda: warm.analyze(case_study.test), rounds=1, iterations=1
    )

    print(
        f"\ncold-to-disk {cold_time:.2f}s ({cold_calls} solver calls, "
        f"{cold.runner.store.saved_entries} entries persisted); warm-from-disk "
        f"loaded {warm.runner.store.loaded_entries} entries"
    )
    print("warm " + warm.runner.cache.stats.describe())

    assert cold_calls > 0
    assert warm.runner.stats.solver_calls == 0  # everything came from the file
    assert _flat(warm_report) == _flat(cold_report)  # bit-identical


def test_monotone_reuse_beats_exact_key_cache(benchmark, quantized, case_study):
    exact = NoiseToleranceAnalysis(
        quantized, search_ceiling=CEILING, runtime=RuntimeConfig(monotone=False)
    )
    start = time.perf_counter()
    exact_results = _overlap_workload(exact, case_study.test)
    exact_time = time.perf_counter() - start

    monotone = NoiseToleranceAnalysis(quantized, search_ceiling=CEILING)
    start = time.perf_counter()
    monotone_results = benchmark.pedantic(
        lambda: _overlap_workload(monotone, case_study.test), rounds=1, iterations=1
    )
    monotone_time = time.perf_counter() - start

    exact_calls = exact.runner.stats.solver_calls
    monotone_calls = monotone.runner.stats.solver_calls
    print(
        f"\nexact-key cache: {exact_calls} solver calls in {exact_time:.2f}s; "
        f"monotone cache: {monotone_calls} solver calls in {monotone_time:.2f}s "
        f"({1 - monotone_calls / exact_calls:.0%} fewer)"
    )
    print("exact    " + exact.runner.cache.stats.describe())
    print("monotone " + monotone.runner.cache.stats.describe())

    # Bit-identical outcomes on every pass of the workload...
    assert _flat(monotone_results[0]) == _flat(exact_results[0])
    assert _flat(monotone_results[1]) == _flat(exact_results[1])
    assert monotone_results[2] == exact_results[2]
    # ...for strictly fewer solver calls.
    assert monotone_calls < exact_calls
    assert monotone.runner.cache.stats.derived_hits > 0
