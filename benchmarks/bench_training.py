"""E6 — §V-A training recipe: 100 % train / 94.12 % test accuracy.

Times the full paper recipe (80 epochs, two-phase learning rate) and
asserts both headline accuracies exactly.
"""

from __future__ import annotations

import numpy as np

from repro.config import TrainConfig
from repro.nn import accuracy, train_paper_network


def test_training_recipe(benchmark, case_study):
    def train():
        return train_paper_network(
            case_study.train.features, case_study.train.labels, TrainConfig()
        )

    result = benchmark.pedantic(train, rounds=1, iterations=1)
    test_accuracy = accuracy(
        result.network.predict(np.asarray(case_study.test.features, dtype=float)),
        case_study.test.labels,
    )
    print(
        f"\ntrain accuracy {result.train_accuracy:.2%} (paper: 100%), "
        f"test accuracy {test_accuracy:.2%} (paper: 94.12%)"
    )
    assert result.train_accuracy == 1.0
    assert round(test_accuracy * 34) == 32  # 32/34 = 94.12 %


def test_mrmr_feature_selection(benchmark, case_study):
    """Times the mRMR stage on the full 7129-gene matrix."""
    from repro.data import discretize_three_level, mrmr_select

    raw = case_study.raw_split.train

    def select():
        levels = discretize_three_level(raw.features)
        return mrmr_select(levels, raw.labels, k=5)

    selected = benchmark.pedantic(select, rounds=1, iterations=1)
    assert len(selected) == 5
    assert len(set(selected)) == 5
