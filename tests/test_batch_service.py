"""Batch service tests: manifests, sharding determinism, merge, CLI.

The load-bearing property is the shard-invariance contract: any shard
layout — one shard, N shards, a manifest with its jobs listed in a
different order — must merge to a byte-identical aggregate report.
The matrix test enforces it on real (small) campaigns; the rest covers
the manifest round-trip and the loud failure paths (corrupt manifests,
incomplete or foreign shard sets).
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.analysis import save_record
from repro.cli import main
from repro.config import RuntimeConfig, VerifierConfig
from repro.errors import ConfigError, DataError
from repro.service import (
    BatchService,
    BatchSpec,
    DatasetSpec,
    ExtractionSpec,
    JobSpec,
    NetworkSpec,
    ProbeSpec,
    ToleranceSpec,
    shard_of,
)

#: test-split indices with known behaviour under the seed-7 network:
#: 0 is robust, 10 flips at ±8%, 18 at ±19% (7 at ±28%).
ROBUST_INDEX, EARLY_FLIP, LATE_FLIP = 0, 10, 18


def small_spec(name: str = "small", jobs=None) -> BatchSpec:
    """A fast two-job campaign with a real vulnerable input."""
    if jobs is None:
        jobs = [
            JobSpec(
                name="flips",
                dataset=DatasetSpec(indices=(EARLY_FLIP, ROBUST_INDEX)),
                tolerance=ToleranceSpec(ceiling=12),
                extraction=ExtractionSpec(percent=9, limit=3),
            ),
            JobSpec(
                name="probes",
                dataset=DatasetSpec(indices=(ROBUST_INDEX, LATE_FLIP)),
                tolerance=ToleranceSpec(ceiling=10, schedule="paper"),
                probe=ProbeSpec(ceiling=10),
            ),
        ]
    return BatchSpec(name=name, jobs=tuple(jobs))


class TestSpecValidation:
    def test_round_trips_through_dict(self):
        spec = small_spec()
        assert BatchSpec.from_dict(spec.to_dict()) == spec

    def test_round_trips_through_a_json_manifest(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        assert BatchSpec.from_manifest(path) == spec

    def test_loads_a_toml_manifest(self, tmp_path):
        path = tmp_path / "batch.toml"
        path.write_text(
            """
version = 1
name = "toml-batch"

[runtime]
workers = 2

[[jobs]]
name = "a"
[jobs.network]
kind = "case-study"
train_seed = 9
[jobs.dataset]
split = "test"
stop = 3
[jobs.analyses.tolerance]
ceiling = 8
""",
            encoding="utf-8",
        )
        spec = BatchSpec.from_manifest(path)
        assert spec.name == "toml-batch"
        assert spec.runtime.workers == 2
        assert spec.jobs[0].network.train_seed == 9
        assert spec.jobs[0].tolerance.ceiling == 8
        assert spec.jobs[0].extraction is None

    def test_unreadable_and_unparsable_manifests_raise_data_errors(self, tmp_path):
        with pytest.raises(DataError, match="cannot read"):
            BatchSpec.from_manifest(tmp_path / "absent.json")
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json", encoding="utf-8")
        with pytest.raises(DataError, match="not valid JSON"):
            BatchSpec.from_manifest(bad_json)
        bad_toml = tmp_path / "bad.toml"
        bad_toml.write_text("version = = 1", encoding="utf-8")
        with pytest.raises(DataError, match="not valid TOML"):
            BatchSpec.from_manifest(bad_toml)

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.pop("version"), "manifest version"),
            (lambda d: d.update(version=99), "manifest version"),
            (lambda d: d.pop("name"), "needs a 'name'"),
            (lambda d: d.update(jobs="nope"), "'jobs' must be a list"),
            (lambda d: d.update(jobs=[]), "at least one job"),
            (lambda d: d.update(extra=1), "unknown manifest key"),
            (lambda d: d["runtime"].update(worker_count=4), "unknown RuntimeConfig"),
            (lambda d: d["jobs"][0].pop("name"), "every job needs a 'name'"),
            (lambda d: d["jobs"][0].update(name="bad name!"), "job name"),
            (lambda d: d["jobs"][0]["network"].update(kind="hive"), "network kind"),
            (
                lambda d: d["jobs"][0]["analyses"].update(census={}),
                "unknown analyses key",
            ),
            (
                lambda d: d["jobs"][0]["analyses"]["tolerance"].update(ceiling=0),
                "ceiling must be",
            ),
            (
                lambda d: d["jobs"][0]["dataset"].update(start=1),
                "not both",
            ),
            (
                lambda d: d["jobs"].append(dict(d["jobs"][0])),
                "duplicate job name",
            ),
            (
                lambda d: d["jobs"][0]["analyses"]["tolerance"].update(
                    ceiling="high"
                ),
                "bad tolerance section",
            ),
            (
                lambda d: d["jobs"][0]["dataset"].update(indices=["x"]),
                "bad dataset section",
            ),
        ],
    )
    def test_corrupt_manifests_fail_loudly(self, mutate, message):
        payload = small_spec().to_dict()
        mutate(payload)
        with pytest.raises(ConfigError, match=message):
            BatchSpec.from_dict(payload)

    def test_job_without_analyses_is_rejected(self):
        with pytest.raises(ConfigError, match="no analyses"):
            JobSpec(name="idle")

    def test_names_with_trailing_newlines_are_rejected(self):
        """Regression: '$' matched before a trailing newline, letting a
        newline into file names and task identities."""
        with pytest.raises(ConfigError, match="job name"):
            JobSpec(name="seed7\n", tolerance=ToleranceSpec())
        with pytest.raises(ConfigError, match="batch name"):
            small_spec(name="sweep\n")

    def test_file_network_requires_a_path(self):
        with pytest.raises(ConfigError, match="requires a 'path'"):
            NetworkSpec(kind="file")

    def test_dataset_indices_must_be_unique_and_in_range(self):
        with pytest.raises(ConfigError, match="unique"):
            DatasetSpec(indices=(1, 1))
        with pytest.raises(ConfigError, match="out of range"):
            DatasetSpec(indices=(5,)).resolve(3)


class TestSharding:
    def test_shard_of_is_stable_and_in_range(self):
        for count in (1, 2, 3, 7):
            for identity in ("a/tolerance/i0", "b/extract/i3@p9", "b/probe/n2.neg"):
                shard = shard_of(identity, count)
                assert 0 <= shard < count
                assert shard == shard_of(identity, count)  # pure function
        assert shard_of("x", 1) == 0
        with pytest.raises(ConfigError):
            shard_of("x", 0)

    def test_every_task_lands_in_exactly_one_shard(self):
        service = BatchService(small_spec())
        jobs = service.plan()
        total = sum(len(job.tasks) for job in jobs)
        assert total > 0
        for count in (1, 2, 3):
            owned = sum(
                len(job.shard_tasks(index, count))
                for job in jobs
                for index in range(count)
            )
            assert owned == total

    def test_identities_are_globally_unique(self):
        jobs = BatchService(small_spec()).plan()
        identities = [p.identity for job in jobs for p in job.tasks]
        assert len(identities) == len(set(identities))


@pytest.fixture(scope="module")
def merged_baseline(tmp_path_factory):
    """The unsharded single-process run's merged report (bytes + record)."""
    out = tmp_path_factory.mktemp("baseline")
    service = BatchService(small_spec())
    service.run_shard(0, 1, out)
    record = service.merge(out)
    target = out / "merged.json"
    save_record(record, target)
    return target.read_bytes(), record


class TestShardDeterminism:
    """1 shard vs N shards vs shuffled job order: identical merged bytes."""

    @pytest.mark.parametrize("shard_count", [2, 3])
    def test_sharded_runs_merge_bit_identical(
        self, tmp_path, merged_baseline, shard_count
    ):
        baseline_bytes, _ = merged_baseline
        service = BatchService(small_spec())
        for index in range(shard_count):
            service.run_shard(index, shard_count, tmp_path)
        record = service.merge(tmp_path)
        target = tmp_path / "merged.json"
        save_record(record, target)
        assert target.read_bytes() == baseline_bytes

    def test_shuffled_job_order_merges_bit_identical(self, tmp_path, merged_baseline):
        baseline_bytes, _ = merged_baseline
        shuffled = small_spec(jobs=tuple(reversed(small_spec().jobs)))
        service = BatchService(shuffled)
        for index in range(2):
            service.run_shard(index, 2, tmp_path)
        record = service.merge(tmp_path)
        target = tmp_path / "merged.json"
        save_record(record, target)
        assert target.read_bytes() == baseline_bytes

    def test_merged_report_reflects_the_known_flips(self, merged_baseline):
        _, record = merged_baseline
        jobs = {job["name"]: job for job in record.measured["jobs"]}
        flips = jobs["flips"]["tolerance"]
        assert flips["min_flip_percents"] == [8]  # test[10] flips at ±8%
        assert flips["tolerance"] == 7
        extraction = jobs["flips"]["extraction"]
        assert extraction["total_vectors"] > 0
        assert extraction["bias"]["confirmed"]  # L0 -> L1, the paper's signature
        assert jobs["probes"]["probe"]["thresholds"]  # probes actually merged
        comparison = record.measured["comparison"]
        assert [row["job"] for row in comparison["min_tolerance"]] == [
            "flips",
            "probes",
        ]

    def test_parallel_shard_run_matches_serial(self, tmp_path, merged_baseline):
        baseline_bytes, _ = merged_baseline
        spec = replace(small_spec(), runtime=RuntimeConfig(workers=2))
        service = BatchService(spec)
        service.run_shard(0, 1, tmp_path)
        record = service.merge(tmp_path)
        # The runtime knob may not leak into the merged measurements:
        # only the manifest echo differs, so compare the measured payload.
        _, baseline_record = merged_baseline
        assert record.measured == baseline_record.measured


class TestMergeFailurePaths:
    def test_missing_shards_refuse_to_merge(self, tmp_path):
        service = BatchService(small_spec())
        service.run_shard(0, 2, tmp_path)  # second shard never ran
        with pytest.raises(DataError, match="missing"):
            service.merge(tmp_path)

    def test_empty_directory_refuses_to_merge(self, tmp_path):
        with pytest.raises(DataError, match="no shard files"):
            BatchService(small_spec()).merge(tmp_path)

    def test_unreadable_shard_file_refuses_to_merge(self, tmp_path):
        service = BatchService(small_spec())
        service.run_shard(0, 1, tmp_path)
        next(iter(tmp_path.glob("*.json"))).write_text("{broken", encoding="utf-8")
        with pytest.raises(DataError, match="unreadable"):
            service.merge(tmp_path)

    def test_foreign_manifest_results_are_rejected(self, tmp_path):
        wider = BatchSpec(
            name="small",  # same batch name, different extraction percent
            jobs=(
                replace(
                    small_spec().job("flips"), extraction=ExtractionSpec(percent=8)
                ),
                small_spec().job("probes"),
            ),
        )
        BatchService(wider).run_shard(0, 1, tmp_path)
        with pytest.raises(DataError, match="missing|unplanned|header"):
            BatchService(small_spec()).merge(tmp_path)

    def test_zero_task_job_still_merges(self, tmp_path):
        """Regression: a job whose slice plans zero tasks wrote no shard
        file, and merge crashed on its missing header."""
        spec = BatchSpec(
            name="with-empty",
            jobs=(
                JobSpec(
                    name="real",
                    dataset=DatasetSpec(indices=(EARLY_FLIP,)),
                    tolerance=ToleranceSpec(ceiling=10),
                ),
                JobSpec(
                    name="empty",
                    dataset=DatasetSpec(start=0, stop=0),  # empty slice
                    tolerance=ToleranceSpec(ceiling=10),
                ),
            ),
        )
        service = BatchService(spec)
        service.run_shard(0, 1, tmp_path)
        record = service.merge(tmp_path)
        jobs = {job["name"]: job for job in record.measured["jobs"]}
        assert jobs["empty"]["tolerance"]["per_input"] == []
        assert jobs["empty"]["tolerance"]["tolerance"] == 10  # vacuously robust
        assert jobs["real"]["tolerance"]["min_flip_percents"] == [8]

    def test_other_campaigns_in_the_directory_are_ignored(self, tmp_path):
        other = BatchService(small_spec(name="other"))
        other.run_shard(0, 1, tmp_path)
        service = BatchService(small_spec())
        service.run_shard(0, 1, tmp_path)
        record = service.merge(tmp_path)
        assert record.experiment_id == "batch-small"


class TestFileNetworks:
    def test_job_over_a_saved_network_file(self, tmp_path):
        from repro.data import load_leukemia_case_study
        from repro.nn import save_network, train_paper_network

        case_study = load_leukemia_case_study()
        result = train_paper_network(
            case_study.train.features, case_study.train.labels
        )
        net_path = tmp_path / "net.json"
        save_network(result.network, net_path)
        spec = BatchSpec(
            name="from-file",
            jobs=(
                JobSpec(
                    name="loaded",
                    network=NetworkSpec(kind="file", path=str(net_path)),
                    dataset=DatasetSpec(indices=(EARLY_FLIP,)),
                    tolerance=ToleranceSpec(ceiling=10),
                ),
            ),
        )
        service = BatchService(spec)
        service.run_shard(0, 1, tmp_path / "out")
        record = service.merge(tmp_path / "out")
        tolerance = record.measured["jobs"][0]["tolerance"]
        # The saved seed-7 network behaves like the freshly trained one.
        assert tolerance["min_flip_percents"] == [8]


class TestBatchCli:
    def _manifest(self, tmp_path) -> str:
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(small_spec().to_dict()), encoding="utf-8")
        return str(path)

    def test_plan_prints_the_shard_table(self, tmp_path, capsys):
        assert main(["batch", "plan", self._manifest(tmp_path), "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch 'small'" in out
        assert "flips" in out and "probes" in out
        assert "shard totals" in out

    def test_run_then_merge_end_to_end(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path)
        out_dir = str(tmp_path / "out")
        for shard in ("1/2", "2/2"):
            assert main(["batch", "run", manifest, "--out", out_dir, "--shard", shard]) == 0
        assert main(["batch", "merge", manifest, out_dir]) == 0
        printed = capsys.readouterr().out
        assert "min-tolerance distribution" in printed
        assert "per-class bias delta" in printed
        assert (tmp_path / "out" / "merged.json").exists()

    @pytest.mark.parametrize("shard", ["0/2", "3/2", "2", "a/b", "1/0"])
    def test_bad_shard_specs_fail_loudly(self, tmp_path, capsys, shard):
        manifest = self._manifest(tmp_path)
        out_dir = str(tmp_path / "out")
        assert main(["batch", "run", manifest, "--out", out_dir, "--shard", shard]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_manifest_exits_with_an_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["batch", "plan", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestConfigFromDict:
    def test_runtime_config_from_dict(self):
        config = RuntimeConfig.from_dict({"workers": 3, "cache_dir": "x"})
        assert config.workers == 3 and config.cache_dir == "x"
        assert RuntimeConfig.from_dict(None) == RuntimeConfig()

    def test_unknown_keys_are_named(self):
        with pytest.raises(ConfigError, match="cache_dirs"):
            RuntimeConfig.from_dict({"cache_dirs": "x"})
        with pytest.raises(ConfigError, match="unknown VerifierConfig"):
            VerifierConfig.from_dict({"sed": 1})

    def test_field_validation_still_applies(self):
        with pytest.raises(ConfigError, match="workers"):
            RuntimeConfig.from_dict({"workers": 0})


class TestJsonable:
    """Shard-file payloads must serialise whatever the runtime hands back.

    Task outcomes can carry numpy scalars (an ``np.int64`` index, an
    ``np.float64`` median) or small arrays; ``json.dumps`` refuses all
    of them.  ``_jsonable`` converts them to their exact Python
    equivalents, and — load-bearing for resume — the conversion is
    digest-stable: the ledger digest of a converted outcome equals the
    digest of its plain-Python twin, so a resumed shard validates
    results written before the numpy types ever appeared.
    """

    def test_numpy_scalars_and_arrays_convert_exactly(self):
        import numpy as np

        from repro.service.service import _jsonable

        converted = _jsonable(
            {
                "index": np.int64(7),
                "median": np.float64(8.5),
                "flag": np.bool_(True),
                "witness": np.array([3, -1], dtype=np.int32),
                "grid": np.array([[1.5, 2.0]]),
            }
        )
        assert converted == {
            "index": 7,
            "median": 8.5,
            "flag": True,
            "witness": [3, -1],
            "grid": [[1.5, 2.0]],
        }
        # numpy-typed keys become their exact Python twins too
        assert _jsonable({np.int64(4): "np-keyed"}) == {4: "np-keyed"}
        blob = json.dumps(converted, sort_keys=True)  # must not raise
        assert isinstance(converted["index"], int)
        assert not isinstance(converted["index"], bool)
        assert isinstance(converted["median"], float)
        assert isinstance(converted["flag"], bool)
        assert "7" in blob

    def test_conversion_is_digest_stable(self):
        import numpy as np

        from repro.service import outcome_digest
        from repro.service.service import _jsonable

        plain = {"min_flip_percent": 8, "witness": [3, -1], "queries": 4.0}
        numpyish = {
            "min_flip_percent": np.int64(8),
            "witness": np.array([3, -1]),
            "queries": np.float64(4.0),
        }
        assert outcome_digest(_jsonable(numpyish)) == outcome_digest(plain)

    def test_nested_tuples_still_become_lists(self):
        from repro.service.service import _jsonable

        assert _jsonable({"a": (1, (2, 3))}) == {"a": [1, [2, 3]]}
