"""Determinism regression: the runtime must not change any result.

The full case-study pipeline (``run_case_study`` = training +
``Fannet.analyze``; training is runtime-independent, so the analysis is
what is exercised) must produce bit-identical reports for

- ``workers=1`` vs ``workers=4`` (process-pool fan-out), and
- cache-on vs cache-off runs.

This is the contract that makes the parallel path a pure scheduling
change: stochastic engines seed from ``(seed, input index)``, never from
shared global state, so neither worker count nor memoisation can move a
single number in the report.

Runs on a 12-sample slice of the test set with a fixed extraction range
to keep the three full-pipeline passes affordable.
"""

from __future__ import annotations

import pytest

from repro.config import FannetConfig, RuntimeConfig
from repro.core import Fannet
from repro.data import load_leukemia_case_study
from repro.data.dataset import Dataset
from repro.nn import train_paper_network

SEARCH_CEILING = 20
EXTRACTION_PERCENT = 8
PROBE_CEILING = 15


@pytest.fixture(scope="module")
def substrate():
    case_study = load_leukemia_case_study()
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    test_slice = Dataset(
        features=case_study.test.features[:12], labels=case_study.test.labels[:12]
    )
    return case_study, test_slice, result


def run_pipeline(substrate, runtime: RuntimeConfig):
    case_study, test_slice, result = substrate
    fannet = Fannet(
        result.network,
        case_study.train,
        test_slice,
        FannetConfig(runtime=runtime),
    )
    report = fannet.analyze(
        search_ceiling=SEARCH_CEILING, extraction_percent=EXTRACTION_PERCENT
    )
    return fannet, report


def canonical(report) -> dict:
    """Everything the report asserts, as comparable plain data."""
    return {
        "accuracy": (report.train_accuracy, report.test_accuracy),
        "tolerance": report.tolerance.tolerance,
        "per_input": [
            (e.index, e.true_label, e.min_flip_percent, e.witness, e.flipped_to, e.queries)
            for e in report.tolerance.per_input
        ],
        "extraction_percent": report.extraction_percent,
        "extraction": sorted(report.extraction.all_vectors_with_labels()),
        "exhausted": [e.exhausted for e in report.extraction.per_input],
        "bias": report.bias.describe(),
        "sensitivity": report.sensitivity.describe(),
        "boundary": report.boundary.describe(),
    }


@pytest.fixture(scope="module")
def baseline(substrate):
    fannet, report = run_pipeline(substrate, RuntimeConfig(workers=1, cache=True))
    return fannet, canonical(report)


class TestWorkerCountInvariance:
    def test_workers_4_matches_workers_1(self, substrate, baseline):
        _, expected = baseline
        fannet, report = run_pipeline(substrate, RuntimeConfig(workers=4, cache=True))
        assert canonical(report) == expected
        assert fannet.runner.stats.parallel_batches >= 1  # the pool really ran

    def test_probe_thresholds_match_across_worker_counts(self, substrate):
        case_study, test_slice, result = substrate
        serial_fannet, _ = (
            Fannet(result.network, case_study.train, test_slice),
            None,
        )
        serial = serial_fannet._sensitivity_analysis.probe_all_nodes(
            test_slice, search_ceiling=PROBE_CEILING
        )
        parallel_fannet = Fannet(
            result.network,
            case_study.train,
            test_slice,
            FannetConfig(runtime=RuntimeConfig(workers=2)),
        )
        parallel = parallel_fannet._sensitivity_analysis.probe_all_nodes(
            test_slice, search_ceiling=PROBE_CEILING
        )
        assert serial == parallel


class TestCacheInvariance:
    def test_cache_off_matches_cache_on(self, substrate, baseline):
        _, expected = baseline
        fannet, report = run_pipeline(substrate, RuntimeConfig(workers=1, cache=False))
        assert canonical(report) == expected
        assert len(fannet.runner.cache) == 0  # nothing was memoised

    def test_warm_rerun_matches_and_solves_nothing(self, substrate, baseline):
        fannet, expected = baseline
        before = fannet.runner.stats.solver_calls
        report = fannet.analyze(
            search_ceiling=SEARCH_CEILING, extraction_percent=EXTRACTION_PERCENT
        )
        assert canonical(report) == expected
        assert fannet.runner.stats.solver_calls == before
