"""Incremental ladder sessions and their solver satellites (PR 10).

Four layers of coverage:

1. **Session = scratch, verdict for verdict** — hypothesis property
   tests drive one :class:`LadderSession` through random noise ladders
   (ascending and shuffled bisection-like orders) and assert the verdict
   *and witness* match a fresh :class:`SmtVerifier` at every rung.
2. **Portfolio / frontier parity** — ``incremental=True`` vs ``False``
   through :meth:`PortfolioVerifier.verify_complete` and
   :func:`resolve_survivors` must produce identical results, with the
   session stage accounted under its own name.
3. **Runtime plumbing** — the ``RuntimeConfig.incremental`` flag crossed
   with worker counts yields bit-identical tolerance sweeps.
4. **Solver satellites** — ``SatResult.failed_assumptions`` (minimal
   refuted cores, solver reusability), the lazily-pruned learnt-DB
   reduction (watch invariants, brute-force agreement), and the
   DPLL(T) conflict budget (``UNKNOWN``, never a fabricated verdict).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import NoiseConfig, RuntimeConfig, VerifierConfig
from repro.core import NoiseToleranceAnalysis
from repro.data.dataset import Dataset
from repro.nn.quantize import QuantizedLayer, QuantizedNetwork
from repro.sat import CdclSolver, Cnf, SatStatus, brute_force_satisfiable
from repro.smt import DpllTSolver, TheoryResult
from repro.verify import (
    FrontierProbe,
    LadderSession,
    PortfolioVerifier,
    SmtVerifier,
    build_query,
    resolve_survivors,
)

SCALE = 1000

HARNESS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_network(layer_shapes, draw_weight) -> QuantizedNetwork:
    """Random fully-connected net; ``layer_shapes`` like [(3, 4), (4, 2)]."""
    layers = []
    for position, (fan_in, fan_out) in enumerate(layer_shapes):
        weights = tuple(
            tuple(Fraction(draw_weight(), SCALE) for _ in range(fan_in))
            for _ in range(fan_out)
        )
        bias = tuple(Fraction(draw_weight(), SCALE) for _ in range(fan_out))
        layers.append(
            QuantizedLayer(weights, bias, relu=position < len(layer_shapes) - 1)
        )
    return QuantizedNetwork(layers)


@st.composite
def ladder_case(draw):
    """Random network + input + a shuffled ladder of noise rungs."""
    num_inputs = draw(st.integers(2, 3))
    hidden = draw(st.integers(2, 4))
    weight = lambda: draw(st.integers(-2000, 2000))  # noqa: E731
    network = make_network([(num_inputs, hidden), (hidden, 2)], weight)
    x = np.array([draw(st.integers(1, 30)) for _ in range(num_inputs)])
    ceiling = draw(st.integers(2, 7))
    rungs = draw(st.permutations(list(range(1, ceiling + 1))))
    return network, x, network.predict(x), list(rungs)


# -- 1. session vs scratch ---------------------------------------------------------


class TestSessionMatchesScratch:
    @given(ladder_case())
    @HARNESS
    def test_every_rung_matches_a_fresh_smt_verifier(self, case):
        network, x, label, rungs = case
        session = LadderSession(VerifierConfig())
        for percent in rungs:
            query = build_query(network, x, label, NoiseConfig(percent))
            warm = session.verify(query)
            cold = SmtVerifier().verify(query)
            assert warm.status is cold.status, (
                f"rung ±{percent}%: session says {warm.status}, "
                f"scratch says {cold.status}"
            )
            if warm.is_vulnerable:
                assert query.misclassified(warm.witness)
                # Witnesses are re-derived canonically: byte-identical.
                assert warm.witness == cold.witness
                assert warm.predicted_label == cold.predicted_label

    def test_three_layer_ladders_in_random_orders(self):
        rng = np.random.default_rng(11)
        for _ in range(8):
            weight = lambda: int(rng.integers(-2000, 2001))  # noqa: E731
            network = make_network([(3, 3), (3, 3), (3, 2)], weight)
            x = np.array([int(v) for v in rng.integers(1, 31, 3)])
            label = network.predict(x)
            session = LadderSession(VerifierConfig())
            for percent in rng.permutation(range(1, 8)):
                query = build_query(network, x, label, NoiseConfig(int(percent)))
                warm = session.verify(query)
                cold = SmtVerifier().verify(query)
                assert warm.status is cold.status
                if warm.is_vulnerable:
                    assert warm.witness == cold.witness

    def test_session_reports_its_own_engine_name(self):
        rng = np.random.default_rng(5)
        weight = lambda: int(rng.integers(-2000, 2001))  # noqa: E731
        network = make_network([(2, 3), (3, 2)], weight)
        x = np.array([7, 13])
        session = LadderSession(VerifierConfig())
        result = session.verify(
            build_query(network, x, network.predict(x), NoiseConfig(4))
        )
        assert result.engine == "smt-session"


# -- 2. portfolio / frontier parity ------------------------------------------------


def deterministic_ladder(seed: int, rungs):
    rng = np.random.default_rng(seed)
    weight = lambda: int(rng.integers(-2000, 2001))  # noqa: E731
    network = make_network([(3, 4), (4, 2)], weight)
    x = np.array([int(v) for v in rng.integers(1, 31, 3)])
    label = network.predict(x)
    return [build_query(network, x, label, NoiseConfig(p)) for p in rungs]


def canonical(result):
    return (result.status, result.witness, result.predicted_label)


class TestPortfolioParity:
    def test_incremental_flag_never_moves_a_result(self):
        queries = deterministic_ladder(2, range(1, 9))
        warm = PortfolioVerifier(exhaustive_cutoff=0, incremental=True)
        cold = PortfolioVerifier(exhaustive_cutoff=0, incremental=False)
        for query in queries:
            a = warm.verify_complete(query)
            b = cold.verify_complete(query)
            assert canonical(a) == canonical(b)
            assert a.stats["stage"] == "session"
            assert b.stats["stage"] == "smt"
        assert warm.stage_counts["session"] == len(queries)
        assert warm.complete_pivots() > 0

    def test_one_session_per_input_label_with_fifo_eviction(self):
        from repro.verify.portfolio import MAX_SESSIONS

        verifier = PortfolioVerifier(exhaustive_cutoff=0, incremental=True)
        rng = np.random.default_rng(9)
        weight = lambda: int(rng.integers(-2000, 2001))  # noqa: E731
        network = make_network([(2, 3), (3, 2)], weight)
        first_key = None
        for n in range(MAX_SESSIONS + 1):
            x = np.array([1 + n, 5])
            query = build_query(network, x, network.predict(x), NoiseConfig(3))
            verifier.verify_complete(query)
            verifier.verify_complete(query)  # same ladder: same session
            if first_key is None:
                (first_key,) = verifier._sessions
        assert len(verifier._sessions) == MAX_SESSIONS
        assert first_key not in verifier._sessions  # FIFO: oldest evicted

    def test_bisection_through_a_shared_session_matches_scratch(self):
        rungs = list(range(1, 11))
        queries = deterministic_ladder(4, rungs)
        probes = [
            FrontierProbe(key=p, query=q, percent=p, group="ladder")
            for p, q in zip(rungs, queries)
        ]

        def run(incremental):
            verifier = PortfolioVerifier(
                exhaustive_cutoff=0, incremental=incremental
            )
            exact, derived = resolve_survivors(
                probes, lambda probe: verifier.verify_complete(probe.query)
            )
            return (
                {k: canonical(v) for k, v in exact.items()},
                {k: canonical(v) for k, v in derived.items()},
            )

        assert run(True) == run(False)


# -- 3. runtime plumbing -----------------------------------------------------------


class TestRuntimeFlag:
    @pytest.fixture(scope="class")
    def substrate(self):
        rng = np.random.default_rng(21)
        weight = lambda: int(rng.integers(-2000, 2001))  # noqa: E731
        network = make_network([(3, 4), (4, 2)], weight)
        features = [tuple(int(v) for v in rng.integers(1, 31, 3)) for _ in range(4)]
        labels = [network.predict(np.array(x)) for x in features]
        return network, Dataset(features=features, labels=labels)

    def run_sweep(self, substrate, runtime):
        network, dataset = substrate
        analysis = NoiseToleranceAnalysis(
            network, search_ceiling=6, runtime=runtime
        )
        return analysis.sweep(dataset, list(range(1, 7)))

    def test_incremental_off_and_workers_2_match_baseline(self, substrate):
        baseline = self.run_sweep(substrate, RuntimeConfig(incremental=True))
        assert baseline == self.run_sweep(
            substrate, RuntimeConfig(incremental=False)
        )
        assert baseline == self.run_sweep(
            substrate, RuntimeConfig(incremental=True, workers=2)
        )
        assert baseline == self.run_sweep(
            substrate, RuntimeConfig(incremental=True, cache=False)
        )


# -- 4a. failed-assumption cores ---------------------------------------------------


class TestFailedAssumptions:
    def test_formula_unsat_has_no_core_and_poisons_the_solver(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve()
        assert result.status is SatStatus.UNSAT
        assert result.failed_assumptions is None
        # Formula-level UNSAT is permanent: the solver stays UNSAT.
        assert solver.solve().status is SatStatus.UNSAT

    def test_assumption_core_keeps_the_solver_reusable(self):
        solver = CdclSolver()
        solver.ensure_vars(2)
        solver.add_clause([-1, -2])
        result = solver.solve(assumptions=[1, 2])
        assert result.status is SatStatus.UNSAT
        assert result.failed_assumptions == (1, 2)
        # The formula itself is satisfiable — the solver must say so.
        assert solver.solve(assumptions=[1]).status is SatStatus.SAT
        assert solver.solve().status is SatStatus.SAT

    def test_core_excludes_irrelevant_assumptions(self):
        solver = CdclSolver()
        solver.ensure_vars(4)
        solver.add_clause([-2, -3])
        result = solver.solve(assumptions=[1, 2, 3, 4])
        assert result.status is SatStatus.UNSAT
        assert result.failed_assumptions == (2, 3)

    def test_core_follows_propagation_chains(self):
        solver = CdclSolver()
        solver.ensure_vars(4)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, -4])
        result = solver.solve(assumptions=[1, 4])
        assert result.status is SatStatus.UNSAT
        assert result.failed_assumptions == (1, 4)

    @given(st.data())
    @HARNESS
    def test_cores_are_refuted_subsets_on_random_cnfs(self, data):
        num_vars = data.draw(st.integers(2, 6))
        literal = st.integers(1, num_vars).flatmap(
            lambda v: st.sampled_from([v, -v])
        )
        cnf = Cnf(num_vars=num_vars)
        for _ in range(data.draw(st.integers(1, 15))):
            cnf.add_clause(data.draw(st.lists(literal, min_size=1, max_size=3)))
        assumptions = data.draw(
            st.lists(literal, min_size=1, max_size=4, unique_by=abs)
        )
        solver = CdclSolver()
        solver.ensure_vars(num_vars)
        for clause in cnf.clauses:
            if not solver.add_clause(list(clause)):
                # Trivially contradictory at load time: the clause is not
                # recorded and the formula is UNSAT by contract — the
                # assumption machinery never comes into play.
                assert not brute_force_satisfiable(cnf)
                return
        result = solver.solve(assumptions=assumptions)
        if result.status is not SatStatus.UNSAT or result.failed_assumptions is None:
            return
        core = result.failed_assumptions
        assert set(core) <= set(assumptions)
        # The core really is refuted: formula + core units is brute-UNSAT.
        refuted = Cnf(num_vars=num_vars)
        refuted.add_clauses([list(c) for c in cnf.clauses])
        for lit in core:
            refuted.add_clause([lit])
        assert not brute_force_satisfiable(refuted)
        # And the solver is still usable: formula verdict matches brute force.
        assert (solver.solve().status is SatStatus.SAT) == brute_force_satisfiable(
            cnf
        )


# -- 4b. lazy learnt-DB reduction --------------------------------------------------


def pigeonhole_cnf(holes: int) -> Cnf:
    """PHP(holes+1, holes): UNSAT, and famously conflict-heavy for CDCL."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    cnf = Cnf(num_vars=pigeons * holes)
    for p in range(pigeons):
        cnf.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p in range(pigeons):
            for q in range(p + 1, pigeons):
                cnf.add_clause([-var(p, h), -var(q, h)])
    return cnf


class TestLazyReduceDb:
    def solve_with_tiny_db(self, cnf, assumptions=()):
        solver = CdclSolver()
        solver.ensure_vars(cnf.num_vars)
        # Force frequent reductions so the lazy pruning path really runs.
        solver.MAX_LEARNTS_START = 4
        for clause in cnf.clauses:
            solver.add_clause(list(clause))
        return solver, solver.solve(assumptions=list(assumptions))

    def test_reduction_marks_clauses_instead_of_rebuilding_watches(self):
        solver, result = self.solve_with_tiny_db(pigeonhole_cnf(4))
        assert result.status is SatStatus.UNSAT
        assert solver.removed_clauses > 0  # reductions actually fired
        # The learnt list holds only survivors...
        assert all(not clause.removed for clause in solver._learnts)
        # ...and every survivor obeys the two-watch invariant: it sits in
        # exactly the watch lists of its first two literals' negations.
        for clause in solver._learnts:
            assert any(c is clause for c in solver._watches[-clause[0]])
            assert any(c is clause for c in solver._watches[-clause[1]])

    def test_live_clauses_are_watched_exactly_twice(self):
        solver, result = self.solve_with_tiny_db(pigeonhole_cnf(3))
        assert result.status is SatStatus.UNSAT
        counts: dict[int, int] = {}
        for watchers in solver._watches.values():
            for clause in watchers:
                if not clause.removed:
                    counts[id(clause)] = counts.get(id(clause), 0) + 1
        live = {id(c) for c in solver._learnts} | {
            id(c) for c in solver._clauses if len(c) > 1
        }
        for clause_id in live:
            assert counts.get(clause_id) == 2

    @given(st.data())
    @HARNESS
    def test_verdicts_match_brute_force_under_constant_reduction(self, data):
        num_vars = data.draw(st.integers(2, 7))
        literal = st.integers(1, num_vars).flatmap(
            lambda v: st.sampled_from([v, -v])
        )
        cnf = Cnf(num_vars=num_vars)
        for _ in range(data.draw(st.integers(1, 20))):
            cnf.add_clause(data.draw(st.lists(literal, min_size=1, max_size=3)))
        solver = CdclSolver()
        solver.ensure_vars(num_vars)
        solver.MAX_LEARNTS_START = 1
        for clause in cnf.clauses:
            if not solver.add_clause(list(clause)):
                assert not brute_force_satisfiable(cnf)  # UNSAT by contract
                return
        result = solver.solve()
        assert (result.status is SatStatus.SAT) == brute_force_satisfiable(cnf)
        if result.status is SatStatus.SAT:
            assert cnf.evaluate(result.model)


# -- 4c. DPLL(T) conflict budget ---------------------------------------------------


def unsat_xor_square(solver: DpllTSolver) -> None:
    a, b = solver.new_bool(), solver.new_bool()
    solver.add_clause([a, b])
    solver.add_clause([a, -b])
    solver.add_clause([-a, b])
    solver.add_clause([-a, -b])


class TestDpllTBudget:
    def test_exhausted_budget_is_unknown_not_unsat(self):
        solver = DpllTSolver(max_conflicts=1)
        unsat_xor_square(solver)
        verdict, model = solver.solve()
        assert verdict is TheoryResult.UNKNOWN
        assert model is None

    def test_generous_budget_still_refutes(self):
        solver = DpllTSolver(max_conflicts=10_000)
        unsat_xor_square(solver)
        verdict, _ = solver.solve()
        assert verdict is TheoryResult.UNSAT

    def test_unbounded_default_is_unchanged(self):
        solver = DpllTSolver()
        unsat_xor_square(solver)
        assert solver.solve()[0] is TheoryResult.UNSAT
