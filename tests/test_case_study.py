"""Integration test: the paper's §V case study end to end.

Asserts the reproduction targets recorded in EXPERIMENTS.md:

- E6: 100 % training accuracy, 94.12 % (32/34) test accuracy;
- E2: noise tolerance in the single-digit-to-low-teens band (paper ±11 %,
  ours ±7 % — the shape claim is "a tolerance exists and is small");
- E4: every counterexample flips minority → majority (paper: all L0→L1);
- E5: at least one node is one-sided (paper: i5 has no positive-noise
  counterexamples);
- E3: several inputs robust beyond ±50 % (boundary spread);
- E1: Fig.-3 state counts through the real SMV/FSM path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NoiseConfig
from repro.core import (
    Fannet,
    NoiseVectorExtraction,
    TrainingBiasAnalysis,
    InputSensitivityAnalysis,
    dataset_fsm_module,
)
from repro.core.translate import noise_model_state_counts
from repro.data import LABEL_ALL, LABEL_AML, load_leukemia_case_study
from repro.fsm import TransitionSystem, count_states_and_transitions
from repro.nn import quantize_network, train_paper_network


@pytest.fixture(scope="module")
def trained():
    case_study = load_leukemia_case_study()
    result = train_paper_network(case_study.train.features, case_study.train.labels)
    return case_study, result


@pytest.fixture(scope="module")
def fannet(trained):
    case_study, result = trained
    return Fannet(result.network, case_study.train, case_study.test)


@pytest.fixture(scope="module")
def tolerance_report(fannet):
    return fannet.noise_tolerance(search_ceiling=60)


class TestE6Accuracies:
    def test_train_accuracy_is_perfect(self, trained):
        _, result = trained
        assert result.train_accuracy == 1.0

    def test_test_accuracy_matches_paper(self, trained):
        case_study, result = trained
        predictions = result.network.predict(
            np.asarray(case_study.test.features, dtype=float)
        )
        correct = int((predictions == case_study.test.labels).sum())
        assert correct == 32  # 32/34 = 94.12 %, the paper's number

    def test_quantization_preserves_every_prediction(self, trained, fannet):
        case_study, result = trained
        for x in case_study.test.features:
            assert fannet.quantized.predict(x) == int(
                result.network.predict(np.asarray(x, dtype=float))
            )


class TestP1Validation:
    def test_translation_validates(self, fannet):
        assert fannet.validate() is True


class TestE2NoiseTolerance:
    def test_tolerance_in_paper_band(self, tolerance_report):
        # Paper: ±11 %.  Substrate differences (synthetic data) shift the
        # constant; the claim is a small single-to-low-double-digit band.
        assert tolerance_report.tolerance is not None
        assert 3 <= tolerance_report.tolerance <= 20

    def test_no_counterexample_at_tolerance(self, fannet, tolerance_report):
        from repro.verify import ExhaustiveEnumerator, build_query

        case_study_features = fannet.test_set.features
        tolerance = tolerance_report.tolerance
        enumerator = ExhaustiveEnumerator()
        for entry in tolerance_report.per_input[:6]:  # spot-check subset
            query = build_query(
                fannet.quantized,
                np.asarray(case_study_features[entry.index]),
                entry.true_label,
                NoiseConfig(max_percent=tolerance),
            )
            assert enumerator.verify(query).is_robust

    def test_misclassification_count_grows_with_range(self, tolerance_report):
        counts = tolerance_report.misclassification_counts([10, 20, 30, 40])
        values = [counts[p] for p in (10, 20, 30, 40)]
        assert values == sorted(values)
        assert values[-1] > 0


class TestE4TrainingBias:
    @pytest.fixture(scope="class")
    def extraction(self, fannet, tolerance_report):
        percent = (tolerance_report.tolerance or 6) + 1
        return NoiseVectorExtraction(fannet.quantized).extract(
            fannet.test_set, percent
        )

    def test_all_flips_go_to_majority_class(self, fannet, extraction):
        report = TrainingBiasAnalysis(fannet.train_set).analyze(extraction)
        assert report.training_majority_label == LABEL_ALL
        assert report.training_majority_share == pytest.approx(27 / 38)
        assert report.total_flips > 0
        # The paper's headline: *all* misclassifications are L0 -> L1.
        assert report.majority_flip_share == 1.0
        assert report.bias_confirmed

    def test_flip_sources_are_minority_class(self, extraction):
        for entry in extraction.vulnerable_inputs():
            assert entry.true_label == LABEL_AML


class TestE5InputSensitivity:
    def test_at_least_one_one_sided_node(self, fannet, tolerance_report):
        percent = (tolerance_report.tolerance or 6) + 1
        extraction = NoiseVectorExtraction(fannet.quantized).extract(
            fannet.test_set, percent
        )
        report = InputSensitivityAnalysis(fannet.quantized).census(extraction)
        assert report.one_sided_nodes()  # paper: i5 is one-sided


class TestE3Boundary:
    def test_wide_spread_with_robust_inputs(self, fannet, tolerance_report):
        boundary = fannet.boundary(tolerance_report)
        # Paper: some inputs flip easily, others survive ±50 %.
        assert boundary.far_from_boundary
        assert boundary.near_boundary or boundary.interior
        profile_values = [
            v for v in boundary.profile.values() if v is not None
        ]
        assert max(profile_values) - min(profile_values) >= 10


class TestE1StateSpace:
    def test_fig3b_counts(self, fannet):
        module = dataset_fsm_module(fannet.quantized, fannet.test_set.features)
        assert count_states_and_transitions(TransitionSystem(module)) == (3, 6)

    def test_fig3c_counts(self, fannet):
        x = np.asarray(fannet.test_set.features[0])
        label = int(fannet.test_set.labels[0])
        counts = noise_model_state_counts(
            fannet.quantized,
            x,
            label,
            NoiseConfig(min_percent=0, max_percent=1),
            noisy_bias_node=True,
        )
        assert counts == (65, 4160)
