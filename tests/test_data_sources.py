"""Dataset-source tests: CSV/NPZ round trips, digests, typed failures.

Property-based round trips (hypothesis): any generated integer feature
matrix written as CSV or NPZ loads back exactly, with a content digest
that is stable across loads, independent of file location, and
sensitive to every byte of content *and* every parse parameter.

Malformed files — ragged rows, non-integer cells, missing labels or
archive members, dtype overflows — must raise the library's typed
validation errors (:class:`DataError` / :class:`ConfigError`), never a
bare numpy/csv internal.

The service-level tests close the loop: a manifest naming a CSV source
plans tasks whose identities embed the digest, runs end to end, hits
the persistent cache across re-runs, and invalidates everything when
the file changes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import CsvSource, NpzSource, build_source, source_kinds
from repro.errors import ConfigError, DataError
from repro.service import (
    BatchService,
    BatchSpec,
    DataSourceSpec,
    DatasetSpec,
    JobSpec,
    ToleranceSpec,
)

# -- generators -----------------------------------------------------------------

dims = st.tuples(st.integers(1, 6), st.integers(1, 4))


@st.composite
def int_datasets(draw):
    rows, cols = draw(dims)
    features = draw(
        st.lists(
            st.lists(st.integers(-999, 999), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    labels = draw(st.lists(st.integers(0, 3), min_size=rows, max_size=rows))
    return np.asarray(features, dtype=np.int64), np.asarray(labels, dtype=np.int64)


def write_csv(path, features, labels, header=None, label_at=None):
    rows = []
    if header is not None:
        rows.append(",".join(header))
    for x, y in zip(features.tolist(), labels.tolist()):
        cells = [str(v) for v in x]
        cells.insert(label_at if label_at is not None else len(cells), str(y))
        rows.append(",".join(cells))
    path.write_text("\n".join(rows) + "\n", encoding="utf-8")


# -- property-based round trips -------------------------------------------------


class TestRoundTrips:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=int_datasets())
    def test_csv_round_trip_and_stable_digest(self, tmp_path, data):
        features, labels = data
        path = tmp_path / "data.csv"
        write_csv(path, features, labels)
        source = CsvSource(str(path))
        loaded = source.load()
        assert loaded.features.tolist() == features.tolist()
        assert loaded.labels.tolist() == labels.tolist()
        # Digest: stable across loads and across identical re-writes.
        digest = source.digest()
        assert digest == CsvSource(str(path)).digest()
        write_csv(path, features, labels)
        assert digest == CsvSource(str(path)).digest()
        # ... location-independent for the same bytes ...
        moved = tmp_path / "elsewhere.csv"
        moved.write_bytes(path.read_bytes())
        assert CsvSource(str(moved)).digest() == digest
        # ... and sensitive to content and parse parameters.
        write_csv(path, features, (labels + 1))
        assert CsvSource(str(path)).digest() != digest
        if features.shape[1] > 1:
            write_csv(path, features, labels)
            assert CsvSource(str(path), label_column=0).digest() != digest

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=int_datasets())
    def test_csv_header_and_named_label_column(self, tmp_path, data):
        features, labels = data
        path = tmp_path / "data.csv"
        header = [f"g{i}" for i in range(features.shape[1])] + ["label"]
        # Label written first, named by header: order must not matter.
        write_csv(path, features, labels, header=["label"] + header[:-1], label_at=0)
        loaded = CsvSource(str(path), label_column="label").load()
        assert loaded.features.tolist() == features.tolist()
        assert loaded.labels.tolist() == labels.tolist()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=int_datasets())
    def test_npz_round_trip_and_stable_digest(self, tmp_path, data):
        features, labels = data
        path = tmp_path / "data.npz"
        np.savez(path, features=features, labels=labels)
        source = NpzSource(str(path))
        loaded = source.load()
        assert loaded.features.tolist() == features.tolist()
        assert loaded.labels.tolist() == labels.tolist()
        assert source.digest() == NpzSource(str(path)).digest()
        # Custom member names parse and change the digest.
        np.savez(path, x=features, y=labels)
        renamed = NpzSource(str(path), features_key="x", labels_key="y")
        assert renamed.load().features.tolist() == features.tolist()
        assert renamed.digest() != source.digest()

    def test_csv_and_npz_of_same_data_have_distinct_digests(self, tmp_path):
        features = np.array([[1, 2], [3, 4]], dtype=np.int64)
        labels = np.array([0, 1], dtype=np.int64)
        csv_path = tmp_path / "d.csv"
        npz_path = tmp_path / "d.npz"
        write_csv(csv_path, features, labels)
        np.savez(npz_path, features=features, labels=labels)
        assert CsvSource(str(csv_path)).digest() != NpzSource(str(npz_path)).digest()


# -- malformed files fail with typed errors -------------------------------------


class TestMalformedCsv:
    def _source(self, tmp_path, text, **kwargs) -> CsvSource:
        path = tmp_path / "bad.csv"
        path.write_text(text, encoding="utf-8")
        return CsvSource(str(path), **kwargs)

    def test_ragged_rows(self, tmp_path):
        with pytest.raises(DataError, match="ragged"):
            self._source(tmp_path, "1,2,0\n1,2,3,0\n").load()

    def test_non_integer_cell_names_row_and_column(self, tmp_path):
        with pytest.raises(DataError, match="row 2, column 1"):
            self._source(tmp_path, "1,2,0\n1,x,0\n").load()

    def test_float_cell_violates_declared_dtype(self, tmp_path):
        # Row 1 is integral, so it is not mistaken for a header; the
        # fractional cell in row 2 then violates the declared dtype.
        with pytest.raises(DataError, match="not an integer"):
            self._source(tmp_path, "1,2,0\n1,2.5,0\n").load()

    def test_empty_file(self, tmp_path):
        with pytest.raises(DataError, match="empty"):
            self._source(tmp_path, "").load()

    def test_header_only(self, tmp_path):
        with pytest.raises(DataError, match="no rows"):
            self._source(tmp_path, "a,b,label\n").load()

    def test_single_column_has_no_features(self, tmp_path):
        with pytest.raises(DataError, match="at least one feature"):
            self._source(tmp_path, "1\n2\n").load()

    def test_missing_named_label_column(self, tmp_path):
        with pytest.raises(DataError, match="no column 'label'"):
            self._source(tmp_path, "a,b\n1,2\n", label_column="label").load()

    def test_named_label_without_header(self, tmp_path):
        with pytest.raises(DataError, match="no header row"):
            self._source(tmp_path, "1,2\n3,4\n", label_column="label").load()

    def test_label_index_out_of_range(self, tmp_path):
        with pytest.raises(DataError, match="out of range"):
            self._source(tmp_path, "1,2,0\n", label_column=7).load()

    def test_negative_labels(self, tmp_path):
        with pytest.raises(DataError, match="non-negative"):
            self._source(tmp_path, "1,2,-1\n").load()

    def test_int16_overflow(self, tmp_path):
        with pytest.raises(DataError, match="exceed the declared dtype"):
            self._source(tmp_path, "1,70000,0\n", dtype="int16").load()

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="cannot read"):
            CsvSource(str(tmp_path / "absent.csv")).load()

    def test_non_utf8_bytes(self, tmp_path):
        path = tmp_path / "latin1.csv"
        path.write_bytes(b"1,2,0\n1,\xff,0\n")
        with pytest.raises(DataError, match="not valid UTF-8"):
            CsvSource(str(path)).load()


class TestMalformedNpz:
    def test_missing_member_names_the_alternatives(self, tmp_path):
        path = tmp_path / "d.npz"
        np.savez(path, feats=np.eye(2, dtype=np.int64), labels=np.zeros(2, np.int64))
        with pytest.raises(DataError, match="no array 'features'.*feats"):
            NpzSource(str(path)).load()

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "d.npz"
        path.write_bytes(b"certainly not a zip")
        with pytest.raises(DataError, match="not a readable .npz"):
            NpzSource(str(path)).load()

    def test_float_features_violate_declared_dtype(self, tmp_path):
        path = tmp_path / "d.npz"
        np.savez(
            path,
            features=np.array([[1.5, 2.0]]),
            labels=np.array([0], dtype=np.int64),
        )
        with pytest.raises(DataError, match="dtype float64"):
            NpzSource(str(path)).load()

    def test_shape_mismatch(self, tmp_path):
        path = tmp_path / "d.npz"
        np.savez(
            path,
            features=np.ones((3, 2), dtype=np.int64),
            labels=np.zeros(2, dtype=np.int64),
        )
        with pytest.raises(DataError, match="label"):
            NpzSource(str(path)).load()

    def test_one_dimensional_features(self, tmp_path):
        path = tmp_path / "d.npz"
        np.savez(
            path,
            features=np.ones(3, dtype=np.int64),
            labels=np.zeros(3, dtype=np.int64),
        )
        with pytest.raises(DataError, match="2-D"):
            NpzSource(str(path)).load()


class TestRegistryAndSpec:
    def test_registry_knows_the_builtins(self):
        assert source_kinds() == ("csv", "npz")
        with pytest.raises(ConfigError, match="not one of"):
            build_source("parquet", path="x")
        with pytest.raises(ConfigError, match="parameters"):
            build_source("csv", path="x", nonsense=1)

    def test_spec_round_trips_through_manifest_dict(self, tmp_path):
        source = DataSourceSpec(kind="csv", path="d.csv", label_column="y")
        spec = BatchSpec(
            name="ext",
            jobs=(
                JobSpec(
                    name="j",
                    dataset=DatasetSpec(source=source, stop=4),
                    tolerance=ToleranceSpec(ceiling=5),
                ),
            ),
        )
        assert BatchSpec.from_dict(spec.to_dict()) == spec

    def test_split_and_source_are_mutually_exclusive(self):
        source = DataSourceSpec(kind="csv", path="d.csv")
        with pytest.raises(ConfigError, match="not both"):
            DatasetSpec(split="test", source=source)

    def test_manifest_rejects_split_plus_source(self):
        with pytest.raises(ConfigError, match="not both"):
            DatasetSpec.from_dict(
                {"split": "test", "source": {"kind": "csv", "path": "d.csv"}}
            )

    def test_kind_specific_keys_are_enforced(self):
        with pytest.raises(ConfigError, match="does not take"):
            DataSourceSpec(kind="csv", path="d.csv", features_key="x")
        with pytest.raises(ConfigError, match="does not take"):
            DataSourceSpec(kind="npz", path="d.npz", delimiter=";")
        with pytest.raises(ConfigError, match="unknown csv dataset source"):
            DataSourceSpec.from_dict({"kind": "csv", "path": "d", "labels_key": "y"})

    def test_bad_dtype_is_rejected(self):
        with pytest.raises(ConfigError, match="dtype"):
            DataSourceSpec(kind="csv", path="d.csv", dtype="float64")
        with pytest.raises(ConfigError, match="dtype"):
            DataSourceSpec.from_dict({"kind": "csv", "path": "d", "dtype": "f8"})

    def test_unknown_kind_in_manifest(self):
        with pytest.raises(ConfigError, match="not one of"):
            DataSourceSpec.from_dict({"kind": "hdf5", "path": "d.h5"})


# -- service integration --------------------------------------------------------


def case_study_csv(tmp_path, indices):
    """A CSV holding real case-study test rows (so predictions hold)."""
    from repro.data import load_leukemia_case_study

    case_study = load_leukemia_case_study()
    features = np.asarray(case_study.test.features)[list(indices)]
    labels = np.asarray(case_study.test.labels)[list(indices)]
    path = tmp_path / "slice.csv"
    write_csv(path, features, labels)
    return path


def csv_campaign(path, cache_dir=None) -> BatchSpec:
    from repro.config import RuntimeConfig

    runtime = RuntimeConfig(cache_dir=str(cache_dir)) if cache_dir else RuntimeConfig()
    return BatchSpec(
        name="csv-camp",
        runtime=runtime,
        jobs=(
            JobSpec(
                name="ext",
                dataset=DatasetSpec(
                    source=DataSourceSpec(kind="csv", path=str(path))
                ),
                tolerance=ToleranceSpec(ceiling=10),
            ),
        ),
    )


class TestServiceIntegration:
    def test_identities_embed_the_content_digest(self, tmp_path):
        path = case_study_csv(tmp_path, (10, 0))
        service = BatchService(csv_campaign(path))
        (job,) = service.plan()
        digest = CsvSource(str(path)).digest()
        assert job.data_digest == digest
        prefix = f"ext@d{digest[:12]}"
        assert all(p.identity.startswith(prefix + "/") for p in job.tasks)
        # Identity stability: an independent replan agrees exactly.
        (again,) = BatchService(csv_campaign(path)).plan()
        assert [p.identity for p in again.tasks] == [p.identity for p in job.tasks]
        # The digest also salts the cache context.
        assert job.meta["context"].endswith(digest[:20])
        assert job.meta["dataset_source"]["kind"] == "csv"

    def test_csv_campaign_runs_and_merges(self, tmp_path):
        path = case_study_csv(tmp_path, (10, 0))
        service = BatchService(csv_campaign(path))
        service.run_shard(0, 1, tmp_path / "out")
        record = service.merge(tmp_path / "out")
        tolerance = record.measured["jobs"][0]["tolerance"]
        # Row 0 of the CSV is test[10]: flips at ±8% (a fact about the
        # network and the input values, not about their provenance).
        assert tolerance["min_flip_percents"] == [8]
        assert record.measured["jobs"][0]["dataset_source"]["kind"] == "csv"

    def test_rerun_hits_the_persistent_cache(self, tmp_path):
        path = case_study_csv(tmp_path, (10,))
        cache_dir = tmp_path / "qcache"
        out_one = tmp_path / "one"
        out_two = tmp_path / "two"
        BatchService(csv_campaign(path, cache_dir)).run_shard(0, 1, out_one)
        digest = CsvSource(str(path)).digest()
        stores = list(cache_dir.glob("*.qcache"))
        assert len(stores) == 1
        assert digest[:20] in stores[0].name  # digest-salted context
        stamp = stores[0].stat().st_mtime_ns
        # A fresh service re-running the same file answers everything
        # from the store: a pure warm replay rewrites nothing.
        BatchService(csv_campaign(path, cache_dir)).run_shard(0, 1, out_two)
        assert stores[0].stat().st_mtime_ns == stamp
        one = (out_one / "ext.shard-1-of-1.json").read_bytes()
        two = (out_two / "ext.shard-1-of-1.json").read_bytes()
        assert one == two

    def test_edited_file_changes_identities_and_context(self, tmp_path):
        path = case_study_csv(tmp_path, (10, 0))
        service = BatchService(csv_campaign(path))
        service.run_shard(0, 1, tmp_path / "out")
        (job,) = service.plan()
        # Edit the file: drop a row.
        case_study_csv(tmp_path, (10,))
        after = BatchService(csv_campaign(path))
        (job_after,) = after.plan()
        assert job_after.data_digest != job.data_digest
        assert job_after.identity_prefix != job.identity_prefix
        # The old results no longer satisfy the new plan.
        status = after.status(tmp_path / "out")
        assert not status.complete
        assert status.stray  # the old digest-prefixed identities
        with pytest.raises(DataError):
            after.merge(tmp_path / "out")

    def test_manifest_file_round_trip_via_cli_plan(self, tmp_path, capsys):
        from repro.cli import main

        path = case_study_csv(tmp_path, (10, 0))
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps(csv_campaign(path).to_dict()), encoding="utf-8")
        assert main(["batch", "plan", str(manifest)]) == 0
        assert "csv-camp" in capsys.readouterr().out
