"""Tests for the SMV model simulator."""

from __future__ import annotations

import pytest

from repro.errors import ModelCheckingError
from repro.mc import ExplicitChecker
from repro.mc.simulate import Simulator
from repro.smv import parse_expression, parse_module

COUNTER = """
MODULE main
VAR
  count : 0..5;
ASSIGN
  init(count) := 0;
  next(count) := case
      count < 5 : count + 1;
      TRUE : 0;
    esac;
"""

NONDET = """
MODULE main
VAR
  coin : 0..1;
ASSIGN
  init(coin) := 0;
  next(coin) := {0, 1};
"""

DEADLOCK = """
MODULE main
VAR
  n : 0..3;
ASSIGN
  init(n) := 3;
  next(n) := n + 1;
"""


class TestSimulator:
    def test_deterministic_model_trace(self):
        trace = Simulator(parse_module(COUNTER)).random_trace(steps=7)
        values = [s["count"] for s in trace.states]
        assert values == [0, 1, 2, 3, 4, 5, 0, 1]

    def test_nondeterministic_traces_vary(self):
        simulator = Simulator(parse_module(NONDET), seed=3)
        traces = simulator.random_traces(count=10, steps=6)
        flattened = {tuple(s["coin"] for s in t.states) for t in traces}
        assert len(flattened) > 1  # different random outcomes

    def test_deadlock_detected(self):
        simulator = Simulator(parse_module(DEADLOCK))
        with pytest.raises(ModelCheckingError):
            simulator.random_trace(steps=1)

    def test_holds_on_trace(self):
        simulator = Simulator(parse_module(COUNTER))
        trace = simulator.random_trace(steps=4)
        assert simulator.holds_on_trace(parse_expression("count <= 5"), trace)
        assert not simulator.holds_on_trace(parse_expression("count < 3"), trace)

    def test_violation_rate_agrees_with_checker(self):
        module = parse_module(COUNTER)
        simulator = Simulator(module, seed=1)
        safe = parse_expression("count <= 5")
        unsafe = parse_expression("count < 5")
        assert simulator.estimate_violation_rate(safe, traces=20, steps=6) == 0.0
        rate = simulator.estimate_violation_rate(unsafe, traces=20, steps=6)
        assert rate > 0.0
        # The real checker confirms both verdicts.
        checker = ExplicitChecker()
        assert checker.check_invariant(module, safe).holds
        assert checker.check_invariant(module, unsafe).violated

    def test_invalid_trace_count(self):
        simulator = Simulator(parse_module(COUNTER))
        with pytest.raises(ModelCheckingError):
            simulator.estimate_violation_rate(parse_expression("count <= 5"), traces=0)

    def test_nn_noise_model_simulation(self):
        """Simulate the translated NN model: noise is re-drawn each step."""
        import numpy as np

        from repro.config import NoiseConfig
        from repro.core import network_noise_module
        from repro.nn.quantize import QuantizedLayer, QuantizedNetwork
        from fractions import Fraction

        network = QuantizedNetwork(
            [
                QuantizedLayer(
                    ((Fraction(1), Fraction(-1)),), (Fraction(0),), relu=True
                ),
                QuantizedLayer(
                    ((Fraction(1),), (Fraction(-1),)), (Fraction(0), Fraction(1)), relu=False
                ),
            ]
        )
        module, query = network_noise_module(
            network, np.array([10, 9]), 0, NoiseConfig(2)
        )
        simulator = Simulator(module, seed=0)
        trace = simulator.random_trace(steps=5)
        assert trace.states[0]["phase"] == "initial"
        assert all(s["phase"] == "eval" for s in trace.states[1:])
        # Each visited noise vector's oc matches the exact evaluator.
        from repro.fsm import evaluate_expression
        from repro.smv.ast import Ident

        for state in trace.states[1:]:
            vector = tuple(state[f"p{i}"] for i in range(2))
            assert (
                evaluate_expression(Ident("oc"), state, module)
                == query.predict_single(vector)
            )
