"""Unit and property tests for the CDCL SAT solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SatError
from repro.sat import (
    CdclSolver,
    Cnf,
    SatStatus,
    brute_force_satisfiable,
    parse_dimacs,
    solve_cnf,
    to_dimacs,
)
from repro.sat.solver import luby


class TestBasics:
    def test_empty_cnf_is_sat(self):
        assert solve_cnf(Cnf()).status is SatStatus.SAT

    def test_single_unit_clause(self):
        cnf = Cnf()
        cnf.add_clause([1])
        result = solve_cnf(cnf)
        assert result.status is SatStatus.SAT
        assert result.model[1] is True

    def test_contradictory_units(self):
        cnf = Cnf()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert solve_cnf(cnf).status is SatStatus.UNSAT

    def test_empty_clause_is_unsat(self):
        solver = CdclSolver()
        assert solver.add_clause([]) is False
        assert solver.solve().status is SatStatus.UNSAT

    def test_simple_implication_chain(self):
        cnf = Cnf()
        cnf.add_clauses([[1], [-1, 2], [-2, 3], [-3, 4]])
        result = solve_cnf(cnf)
        assert result.status is SatStatus.SAT
        assert all(result.model[v] for v in (1, 2, 3, 4))

    def test_model_satisfies_formula(self):
        cnf = Cnf()
        cnf.add_clauses([[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]])
        result = solve_cnf(cnf)
        assert result.status is SatStatus.SAT
        assert cnf.evaluate(result.model)

    def test_pigeonhole_3_into_2_unsat(self):
        # Pigeon p in hole h encoded as var 2*p + h + 1 (p in 0..2, h in 0..1).
        cnf = Cnf()
        def var(p, h):
            return 2 * p + h + 1
        for p in range(3):
            cnf.add_clause([var(p, 0), var(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-var(p1, h), -var(p2, h)])
        assert solve_cnf(cnf).status is SatStatus.UNSAT

    def test_invalid_literal_rejected(self):
        solver = CdclSolver()
        with pytest.raises(SatError):
            solver.add_clause([0])

    def test_tautology_ignored(self):
        cnf = Cnf()
        cnf.add_clause([1, -1])
        assert cnf.num_clauses == 0


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.status is SatStatus.SAT
        assert result.model[1] is False
        assert result.model[2] is True

    def test_unsat_under_assumptions_but_sat_without(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[-2]).status is SatStatus.UNSAT
        assert solver.solve().status is SatStatus.SAT

    def test_incremental_clause_addition(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve().status is SatStatus.SAT
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().status is SatStatus.UNSAT

    def test_blocking_model_enumeration(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        models = []
        while True:
            result = solver.solve()
            if result.status is not SatStatus.SAT:
                break
            model = tuple(result.model[v] for v in (1, 2))
            models.append(model)
            if not solver.add_clause(
                [-v if result.model[v] else v for v in (1, 2)]
            ):
                break
        assert len(models) == 3
        assert len(set(models)) == 3

    def test_conflicting_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1]).status is SatStatus.UNSAT


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestDimacs:
    def test_round_trip(self):
        cnf = Cnf()
        cnf.add_clauses([[1, -2, 3], [-1, 2], [3]])
        parsed = parse_dimacs(to_dimacs(cnf, comment="test"))
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses

    def test_parse_rejects_garbage(self):
        with pytest.raises(SatError):
            parse_dimacs("p cnf x y\n1 0\n")

    def test_parse_rejects_unterminated(self):
        with pytest.raises(SatError):
            parse_dimacs("p cnf 2 1\n1 2\n")


def _random_cnf(draw, max_vars=6, max_clauses=12):
    num_vars = draw(st.integers(1, max_vars))
    num_clauses = draw(st.integers(0, max_clauses))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(1, 3))
        clause = [
            draw(st.integers(1, num_vars)) * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    cnf = Cnf(num_vars=num_vars)
    cnf.add_clauses(clauses)
    return cnf


@st.composite
def random_cnf(draw):
    return _random_cnf(draw)


class TestAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=300, deadline=None)
    def test_sat_decision_matches_brute_force(self, cnf):
        expected = brute_force_satisfiable(cnf)
        result = solve_cnf(cnf)
        assert (result.status is SatStatus.SAT) == expected
        if result.status is SatStatus.SAT:
            assert cnf.evaluate(result.model)

    @given(random_cnf(), st.lists(st.integers(1, 6), max_size=3, unique=True))
    @settings(max_examples=150, deadline=None)
    def test_assumptions_match_clause_addition(self, cnf, assumed_vars):
        assumptions = [v for v in assumed_vars if v <= cnf.num_vars]
        solver = CdclSolver()
        solver.add_cnf(cnf)
        with_assumptions = solver.solve(assumptions=assumptions)

        strengthened = cnf.copy()
        for literal in assumptions:
            strengthened.add_clause([literal])
        expected = brute_force_satisfiable(strengthened)
        assert (with_assumptions.status is SatStatus.SAT) == expected
