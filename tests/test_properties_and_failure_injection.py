"""Cross-cutting property tests and failure injection.

These target the invariants DESIGN.md §7 commits to: interval soundness,
Tseitin equisatisfiability, scaled-query/network agreement on deep nets,
and graceful behaviour on degenerate inputs.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NoiseConfig
from repro.errors import VerificationError
from repro.nn.quantize import QuantizedLayer, QuantizedNetwork
from repro.sat import CdclSolver, SatStatus, tseitin
from repro.sat.formula import And, FALSE, Iff, Implies, Not, Or, TRUE, Var, Xor
from repro.verify import (
    ExhaustiveEnumerator,
    IntervalVerifier,
    SmtVerifier,
    build_query,
)

SCALE = 1000


def quantized_from_ints(layer_specs):
    """Build a QuantizedNetwork from integer-thousandth layer specs."""
    layers = []
    for rows, bias, relu in layer_specs:
        layers.append(
            QuantizedLayer(
                tuple(tuple(Fraction(v, SCALE) for v in row) for row in rows),
                tuple(Fraction(v, SCALE) for v in bias),
                relu=relu,
            )
        )
    return QuantizedNetwork(layers)


@st.composite
def deep_network_query(draw):
    """Random THREE-layer network (2 hidden ReLU layers) + small query."""
    n_in = draw(st.integers(2, 3))
    h1 = draw(st.integers(2, 3))
    h2 = draw(st.integers(2, 3))
    weight = st.integers(-1500, 1500)

    def matrix(rows, cols):
        return [[draw(weight) for _ in range(cols)] for _ in range(rows)]

    def vector(size):
        return [draw(weight) for _ in range(size)]

    network = quantized_from_ints(
        [
            (matrix(h1, n_in), vector(h1), True),
            (matrix(h2, h1), vector(h2), True),
            (matrix(2, h2), vector(2), False),
        ]
    )
    x = np.array([draw(st.integers(1, 20)) for _ in range(n_in)])
    percent = draw(st.integers(1, 4))
    return network, x, NoiseConfig(percent)


class TestDeepNetworks:
    @given(deep_network_query())
    @settings(max_examples=30, deadline=None)
    def test_query_encoding_matches_network_on_deep_nets(self, problem):
        network, x, noise = problem
        label = network.predict(x)
        query = build_query(network, x, label, noise)
        rng = np.random.default_rng(0)
        for _ in range(10):
            vector = tuple(
                int(rng.integers(noise.low, noise.high + 1))
                for _ in range(len(x))
            )
            assert query.predict_single(vector) == network.predict_noisy(x, vector)

    @given(deep_network_query())
    @settings(max_examples=20, deadline=None)
    def test_smt_complete_on_deep_nets(self, problem):
        network, x, noise = problem
        label = network.predict(x)
        query = build_query(network, x, label, noise)
        truth = ExhaustiveEnumerator().verify(query)
        result = SmtVerifier().verify(query)
        assert result.status == truth.status

    @given(deep_network_query())
    @settings(max_examples=30, deadline=None)
    def test_interval_sound_on_deep_nets(self, problem):
        network, x, noise = problem
        label = network.predict(x)
        query = build_query(network, x, label, noise)
        if IntervalVerifier().verify(query).is_robust:
            assert ExhaustiveEnumerator().verify(query).is_robust


@st.composite
def random_formula(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        choice = draw(st.integers(0, 4))
        if choice == 0:
            return TRUE
        if choice == 1:
            return FALSE
        return Var(f"v{draw(st.integers(0, 3))}")
    kind = draw(st.sampled_from(["not", "and", "or", "implies", "iff", "xor"]))
    if kind == "not":
        return Not(draw(random_formula(depth + 1)))
    left = draw(random_formula(depth + 1))
    right = draw(random_formula(depth + 1))
    return {
        "and": And,
        "or": Or,
        "implies": Implies,
        "iff": Iff,
        "xor": Xor,
    }[kind](left, right)


class TestTseitin:
    @given(random_formula())
    @settings(max_examples=200, deadline=None)
    def test_equisatisfiable_with_semantics(self, formula):
        """tseitin(F) SAT  <=>  F has a satisfying assignment."""
        cnf, var_map = tseitin(formula)
        solver = CdclSolver()
        solver.add_cnf(cnf)
        solver_says = solver.solve().status is SatStatus.SAT

        names = sorted(formula.variables())
        semantic = False
        for mask in range(2 ** len(names)):
            assignment = {
                name: bool((mask >> i) & 1) for i, name in enumerate(names)
            }
            if formula.evaluate(assignment):
                semantic = True
                break
        assert solver_says == semantic

    @given(random_formula())
    @settings(max_examples=100, deadline=None)
    def test_model_projects_to_satisfying_assignment(self, formula):
        cnf, var_map = tseitin(formula)
        solver = CdclSolver()
        solver.add_cnf(cnf)
        result = solver.solve()
        if result.status is not SatStatus.SAT:
            return
        assignment = {
            name: result.model[index] for name, index in var_map.items()
        }
        # Variables absent from the map (formula had none) default False.
        for name in formula.variables():
            assignment.setdefault(name, False)
        assert formula.evaluate(assignment)


class TestFailureInjection:
    def test_zero_weight_network_is_fully_robust(self):
        """All-zero weights: constant output, no noise can flip it."""
        network = quantized_from_ints(
            [
                ([[0, 0], [0, 0]], [0, 0], True),
                ([[0, 0], [0, 0]], [500, 0], False),
            ]
        )
        x = np.array([10, 10])
        label = network.predict(x)  # logits (0.5, 0): always label 0
        assert label == 0
        query = build_query(network, x, label, NoiseConfig(40))
        assert IntervalVerifier().verify(query).is_robust
        assert SmtVerifier().verify(query).is_robust

    def test_zero_noise_range_behaves(self):
        network = quantized_from_ints(
            [
                ([[1000, -1000]], [0], True),
                ([[1000], [-1000]], [0, 100], False),
            ]
        )
        x = np.array([5, 3])
        label = network.predict(x)
        query = build_query(network, x, label, NoiseConfig(0))
        assert query.noise_space_size() == 1
        assert ExhaustiveEnumerator().verify(query).is_robust

    def test_tie_exactly_on_boundary_resolves_to_lower_index(self):
        """Logits exactly equal: argmax must pick label 0; a query with
        true label 1 must therefore be 'vulnerable' at zero noise —
        exercised through every engine's threshold handling."""
        network = quantized_from_ints(
            [
                ([[1000]], [0], True),
                ([[1000], [1000]], [0, 0], False),  # o0 == o1 always
            ]
        )
        x = np.array([7])
        assert network.predict(x) == 0
        query = build_query(network, x, 1, NoiseConfig(0))
        truth = ExhaustiveEnumerator().verify(query)
        smt = SmtVerifier().verify(query)
        assert truth.is_vulnerable and smt.is_vulnerable

    def test_input_containing_zero_is_rejected_upstream(self):
        """The preprocessing maps inputs to [1, scale]; zeros would make a
        node invisible to relative noise.  The scaler guarantees >= 1."""
        from repro.data import scale_to_integers

        train = np.array([[0.0, 5.0], [1.0, 9.0]])
        _, scaled = scale_to_integers(train, scale=50)
        assert scaled.min() >= 1

    def test_build_query_rejects_unscaled_weights(self):
        layer = QuantizedLayer(
            ((Fraction(1, 7),),), (Fraction(0),), relu=False
        )
        network = QuantizedNetwork([layer])
        with pytest.raises(VerificationError):
            build_query(network, np.array([3]), 0, NoiseConfig(1))

    def test_single_class_dataset_bias_census(self):
        from repro.core.bias import TrainingBiasAnalysis
        from repro.core.noise_vectors import ExtractionReport
        from repro.data.dataset import Dataset

        data = Dataset(np.ones((4, 2)), np.array([1, 1, 1, 1]))
        report = TrainingBiasAnalysis(data).analyze(
            ExtractionReport(noise_percent=5)
        )
        assert report.training_majority_label == 1
        assert report.total_flips == 0
        assert not report.bias_confirmed  # no evidence without flips
