"""Tests for the SMV lexer, parser, printer and type checker."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SmvSyntaxError, SmvTypeError
from repro.smv import (
    BinOp,
    BoolLit,
    BoolType,
    CaseExpr,
    EnumType,
    Ident,
    IntLit,
    LtlBin,
    LtlProp,
    LtlUnary,
    RangeType,
    SetExpr,
    check_module,
    parse_expression,
    parse_module,
    print_expression,
    print_module,
    tokenize,
)

COUNTER = """
MODULE main
VAR
  count : 0..7;      -- a counter
  running : boolean;
ASSIGN
  init(count) := 0;
  next(count) := case
      running & count < 7 : count + 1;
      TRUE : count;
    esac;
INVARSPEC count <= 7;
LTLSPEC G (count >= 0);
"""


class TestLexer:
    def test_comments_stripped(self):
        tokens = tokenize("a -- comment\nb")
        values = [t.value for t in tokens]
        assert values == ["a", "b", ""]

    def test_range_dots_not_in_identifier(self):
        tokens = tokenize("0..7")
        assert [t.value for t in tokens][:3] == ["0", "..", "7"]

    def test_multi_char_operators(self):
        tokens = tokenize("a <-> b -> c := d <= e")
        operators = [t.value for t in tokens if t.value in ("<->", "->", ":=", "<=")]
        assert operators == ["<->", "->", ":=", "<="]

    def test_bad_character(self):
        with pytest.raises(SmvSyntaxError):
            tokenize("a ? b")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestParserExpressions:
    def test_precedence_arith_over_comparison(self):
        expr = parse_expression("a + 1 < b * 2")
        assert isinstance(expr, BinOp) and expr.op == "<"
        assert expr.left == BinOp("+", Ident("a"), IntLit(1))

    def test_implication_right_assoc(self):
        expr = parse_expression("a -> b -> c")
        assert expr == BinOp("->", Ident("a"), BinOp("->", Ident("b"), Ident("c")))

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a | b & c")
        assert expr.op == "|"
        assert expr.right == BinOp("&", Ident("b"), Ident("c"))

    def test_case_expression(self):
        expr = parse_expression("case a : 1; TRUE : 0; esac")
        assert isinstance(expr, CaseExpr)
        assert len(expr.branches) == 2
        assert expr.branches[1][0] == BoolLit(True)

    def test_set_expression(self):
        expr = parse_expression("{1, 2, 3}")
        assert isinstance(expr, SetExpr)
        assert expr.items == (IntLit(1), IntLit(2), IntLit(3))

    def test_max_call(self):
        expr = parse_expression("max(0, a + b)")
        assert expr.func == "max"

    def test_unary_minus(self):
        expr = parse_expression("-a + 3")
        assert expr.op == "+"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SmvSyntaxError):
            parse_expression("a + 1 )")

    def test_empty_case_rejected(self):
        with pytest.raises(SmvSyntaxError):
            parse_expression("case esac")


class TestParserModule:
    def test_counter_module(self):
        module = parse_module(COUNTER)
        assert module.name == "main"
        assert module.variables["count"] == RangeType(0, 7)
        assert module.variables["running"] == BoolType()
        assert "count" in module.assigns.init
        assert "count" in module.assigns.next
        assert len(module.invarspecs) == 1
        assert len(module.ltlspecs) == 1

    def test_enum_variable(self):
        module = parse_module(
            "MODULE main VAR state : {idle, busy, done};"
        )
        assert module.variables["state"] == EnumType(("idle", "busy", "done"))

    def test_negative_range(self):
        module = parse_module("MODULE main VAR p : -40..40;")
        assert module.variables["p"] == RangeType(-40, 40)

    def test_duplicate_variable_rejected(self):
        with pytest.raises(SmvSyntaxError):
            parse_module("MODULE main VAR x : boolean; x : boolean;")

    def test_duplicate_assign_rejected(self):
        with pytest.raises(SmvSyntaxError):
            parse_module(
                "MODULE main VAR x : boolean; ASSIGN init(x) := TRUE; init(x) := FALSE;"
            )

    def test_empty_range_rejected(self):
        with pytest.raises(SmvSyntaxError):
            parse_module("MODULE main VAR x : 5..2;")

    def test_ltl_nested_operators(self):
        module = parse_module(
            "MODULE main VAR x : boolean; LTLSPEC G (x -> F x);"
        )
        formula = module.ltlspecs[0]
        assert isinstance(formula, LtlUnary) and formula.op == "G"
        inner = formula.operand
        assert isinstance(inner, LtlBin) and inner.op == "->"
        assert isinstance(inner.left, LtlProp)
        assert isinstance(inner.right, LtlUnary) and inner.right.op == "F"

    def test_ltl_parenthesised_arithmetic_atom(self):
        module = parse_module(
            "MODULE main VAR n : 0..9; LTLSPEC G ((n + 1) > 0);"
        )
        formula = module.ltlspecs[0]
        assert isinstance(formula.operand, LtlProp)


class TestPrinterRoundTrip:
    def test_counter_round_trip(self):
        module = parse_module(COUNTER)
        printed = print_module(module)
        reparsed = parse_module(printed)
        assert reparsed.variables == module.variables
        assert reparsed.assigns.init == module.assigns.init
        assert reparsed.assigns.next == module.assigns.next
        assert reparsed.invarspecs == module.invarspecs

    def test_expression_round_trip_preserves_structure(self):
        for text in (
            "a + b * c",
            "(a + b) * c",
            "a -> b -> c",
            "(a -> b) -> c",
            "a & (b | c)",
            "-(a + 1) < 3 & x",
            "max(a, b, 3) - abs(c)",
            "{0, 1, 2}",
        ):
            expr = parse_expression(text)
            assert parse_expression(print_expression(expr)) == expr


@st.composite
def random_int_expression(draw, depth=0):
    """Random integer-valued expression over variables a, b."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.sampled_from(["lit", "a", "b"]))
        if choice == "lit":
            return IntLit(draw(st.integers(-9, 9)))
        return Ident(choice)
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinOp(
        op,
        draw(random_int_expression(depth + 1)),
        draw(random_int_expression(depth + 1)),
    )


class TestPrinterProperty:
    @given(random_int_expression())
    @settings(max_examples=200, deadline=None)
    def test_parse_print_fixpoint(self, expr):
        assert parse_expression(print_expression(expr)) == expr


class TestTypeChecker:
    def _module(self, body: str):
        return parse_module("MODULE main\n" + body)

    def test_valid_counter(self):
        check_module(parse_module(COUNTER))

    def test_undeclared_symbol(self):
        module = self._module("VAR x : boolean; INVARSPEC y;")
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_arith_on_boolean_rejected(self):
        module = self._module("VAR x : boolean; INVARSPEC x + 1 > 0;")
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_integer_invarspec_rejected(self):
        module = self._module("VAR n : 0..3; INVARSPEC n + 1;")
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_enum_vs_int_equality_rejected(self):
        module = self._module("VAR s : {a, b}; INVARSPEC s = 1;")
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_assign_to_define_rejected(self):
        module = self._module(
            "VAR n : 0..3; DEFINE d := n + 1; ASSIGN init(d) := 0;"
        )
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_assignment_type_mismatch(self):
        module = self._module("VAR n : 0..3; ASSIGN init(n) := TRUE;")
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_circular_define(self):
        module = self._module("VAR n : 0..3; DEFINE a := b + 1; b := a + 1; INVARSPEC a > 0;")
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_case_branch_type_mismatch(self):
        module = self._module(
            "VAR n : 0..3; INVARSPEC (case n > 0 : TRUE; TRUE : 1; esac) = TRUE;"
        )
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_set_expression_outside_assignment_rejected(self):
        module = self._module("VAR n : 0..3; INVARSPEC {1, 2} = 1;")
        with pytest.raises(SmvTypeError):
            check_module(module)

    def test_nondeterministic_assignment_ok(self):
        module = self._module(
            "VAR n : 0..3; ASSIGN init(n) := {0, 1}; next(n) := {n, 0};"
        )
        check_module(module)
